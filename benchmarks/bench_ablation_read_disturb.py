"""Ablation A2: read-disturb probability vs read current.

Quantifies why the paper caps the read current at 40% of the switching
current: the thermal-activation flip probability of a 15 ns read pulse
versus the read-current fraction of I_c0.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.device.switching import SwitchingModel


def disturb_sweep(params, fractions, read_time=15e-9):
    model = SwitchingModel(params)
    return [
        (f, model.read_disturb_probability(f * params.i_c0, read_time),
         model.mean_time_to_disturb(f * params.i_c0))
        for f in fractions
    ]


def test_ablation_read_disturb(benchmark, calibration, report):
    fractions = np.array([0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1.0])
    results = benchmark(disturb_sweep, calibration.params, fractions)

    report("Ablation A2 — read disturb vs read current (15 ns pulse, Δ = 60)")
    rows = []
    for fraction, probability, mean_time in results:
        rows.append(
            [
                f"{fraction:.0%} I_c0",
                f"{fraction * calibration.params.i_c0 * 1e6:.0f} µA",
                f"{probability:.2e}",
                f"{mean_time:.2e} s" if np.isfinite(mean_time) else "inf",
            ]
        )
    report(format_table(
        ["current", "absolute", "P(flip per read)", "mean time to flip"], rows
    ))
    report()
    report("At the paper's 40% operating point a read pulse is ~1e-15 likely")
    report("to disturb the bit; beyond ~90% of I_c0 reads become destructive.")

    probabilities = [p for _, p, _ in results]
    assert all(b >= a for a, b in zip(probabilities, probabilities[1:]))
    paper_point = dict(zip([f for f, _, _ in results], probabilities))[0.4]
    assert paper_point < 1e-12
    assert probabilities[-1] > 1e-3  # at I_c0 the read is no longer safe
