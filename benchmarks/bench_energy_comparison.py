"""Paper §V power claim: removing the erase and write-back pulses
"dramatically" reduces per-read energy."""

from repro.analysis.report import format_table
from repro.timing.energy import read_energy_comparison
from repro.units import format_si


def test_energy_comparison(benchmark, paper_cell, calibration, report):
    destructive, nondestructive, ratio = benchmark(
        read_energy_comparison,
        paper_cell,
        200e-6,
        calibration.beta_destructive,
        calibration.beta_nondestructive,
    )

    report("Paper §V — read-energy comparison")
    rows = []
    for breakdown in (destructive, nondestructive):
        for name, energy in breakdown.per_phase.items():
            if energy > 0:
                rows.append([breakdown.scheme, name, format_si(energy, "J")])
        rows.append([breakdown.scheme, "TOTAL", format_si(breakdown.total, "J")])
    report(format_table(["scheme", "phase", "energy"], rows))
    report()
    report(f"write pulses account for "
           f"{destructive.write_energy / destructive.total:.0%} of the "
           f"destructive read energy")
    report(f"energy ratio destructive / nondestructive: {ratio:.1f}x")

    assert ratio > 5.0
    assert destructive.write_energy > 0.8 * destructive.total
    assert nondestructive.write_energy == 0.0
