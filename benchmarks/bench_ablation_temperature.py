"""Ablation A9: temperature corners.

The paper measures at room temperature.  TMR collapses with temperature
(magnon-assisted tunneling), shrinking the roll-off the nondestructive
scheme lives on — map both schemes' re-optimized margins over the
industrial range and check the hot corner still clears the 8 mV window.
"""

from repro.analysis.corners import temperature_corner_sweep
from repro.analysis.report import format_table


def test_ablation_temperature(benchmark, calibration, report):
    corners = benchmark(
        temperature_corner_sweep,
        calibration.params,
        calibration.rolloff_high(),
        calibration.rolloff_low(),
        (250.0, 300.0, 330.0, 360.0, 390.0),
    )

    report("Ablation A9 — temperature corner map (margins re-optimized per corner)")
    rows = []
    for corner in corners:
        rows.append(
            [
                f"{corner.temperature:.0f} K",
                f"{corner.tmr:.0%}",
                f"{corner.destructive.beta:.3f}",
                f"{corner.destructive.max_sense_margin * 1e3:6.1f} mV",
                f"{corner.nondestructive.beta:.3f}",
                f"{corner.nondestructive.max_sense_margin * 1e3:6.1f} mV",
                f"±{corner.rtr_window_nondestructive:.0f} Ω",
            ]
        )
    report(format_table(
        ["T", "TMR", "β* destr", "SM destr", "β* nondes", "SM nondes", "ΔR_TR win"],
        rows,
    ))
    report()
    report("Both margins derate roughly with the TMR; the nondestructive")
    report("scheme keeps > 8 mV across the whole industrial range (with per-")
    report("corner re-trim of β — another use of the paper's test knob).")

    margins = [c.nondestructive.max_sense_margin for c in corners]
    assert all(b < a for a, b in zip(margins, margins[1:]))  # monotone derating
    assert all(c.nondestructive_margin_ok for c in corners)
    hot = corners[-1]
    assert hot.temperature == 390.0
    assert hot.nondestructive.max_sense_margin > 8e-3
