"""Paper Fig. 9: the control-signal timing diagram of the nondestructive
read (SLT1 / SLT2 / SenEn / Data_latch)."""

from repro.analysis.report import format_table
from repro.timing.latency import nondestructive_read_latency


def test_fig9_timing(benchmark, paper_cell, calibration, report):
    breakdown = benchmark(
        nondestructive_read_latency, paper_cell, 200e-6,
        calibration.beta_nondestructive,
    )
    schedule = breakdown.schedule

    report("Paper Fig. 9 — nondestructive read timing diagram")
    rows = []
    for phase in schedule.phases:
        asserted = [name for name, level in phase.signals.items() if level]
        rows.append(
            [
                phase.name,
                f"{schedule.start_of(phase.name) * 1e9:5.2f}",
                f"{schedule.end_of(phase.name) * 1e9:5.2f}",
                f"{phase.read_current * 1e6:.1f}" if phase.read_current else "-",
                ", ".join(asserted) or "-",
            ]
        )
    report(format_table(
        ["phase", "start [ns]", "end [ns]", "I_read [µA]", "signals"], rows
    ))
    report()
    for signal in ("WL", "SLT1", "SLT2", "SenEn", "Data_latch"):
        intervals = schedule.signal_intervals(signal)
        pretty = ", ".join(f"{a * 1e9:.2f}–{b * 1e9:.2f} ns" for a, b in intervals)
        report(f"  {signal:<11}: {pretty}")
    report()
    report(f"total read latency: {breakdown.total * 1e9:.1f} ns "
           f"(paper: 'about 15ns')")

    # Fig. 9 structure: SLT1 strictly precedes SLT2; SenEn inside SLT2;
    # latch last; no write phases at all.
    slt1 = schedule.signal_intervals("SLT1")
    slt2 = schedule.signal_intervals("SLT2")
    assert slt1[0][1] <= slt2[0][0]
    sen = schedule.signal_intervals("SenEn")[0]
    assert slt2[0][0] <= sen[0] and sen[1] <= slt2[0][1]
    assert all(phase.write_current == 0.0 for phase in schedule.phases)
    assert breakdown.total < 20e-9
