"""Paper §V latency claim: the nondestructive read eliminates two write
pulses and its second read does not charge a bit-line capacitor, so the
total read is much faster than the destructive scheme's."""

from repro.analysis.report import format_table
from repro.timing.latency import latency_comparison


def test_latency_comparison(benchmark, paper_cell, calibration, report):
    destructive, nondestructive, speedup = benchmark(
        latency_comparison,
        paper_cell,
        200e-6,
        calibration.beta_destructive,
        calibration.beta_nondestructive,
    )

    report("Paper §V — read-latency comparison")
    rows = []
    for breakdown in (destructive, nondestructive):
        for phase in breakdown.schedule.phases:
            rows.append(
                [breakdown.scheme, phase.name, f"{phase.duration * 1e9:6.2f}"]
            )
        rows.append([breakdown.scheme, "TOTAL", f"{breakdown.total * 1e9:6.2f}"])
    report(format_table(["scheme", "phase", "duration [ns]"], rows))
    report()
    report(f"nondestructive total: {nondestructive.total * 1e9:.1f} ns "
           f"(paper: 'about 15ns')")
    report(f"speedup over destructive self-reference: {speedup:.2f}x")

    assert nondestructive.total < 20e-9
    assert speedup > 1.5
    # The §V mechanism checks: the nondestructive second read settles
    # faster than its first (divider vs capacitor), and faster than the
    # destructive scheme's second read.
    assert nondestructive.phase_duration("second_read") < nondestructive.phase_duration(
        "first_read"
    )
    assert nondestructive.phase_duration("second_read") < destructive.phase_duration(
        "second_read"
    )
