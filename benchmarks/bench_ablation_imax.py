"""Ablation A1: sense margin and robustness vs the maximum read current.

The paper's future-work lever: "The sense margin and the robustness of
nondestructive self-reference scheme can be improved by increasing the
maximum allowable read current I_max."
"""

import numpy as np

from repro.analysis.report import format_table
from repro.core.cell import Cell1T1J
from repro.core.optimize import optimize_beta_nondestructive
from repro.core.robustness import rtr_shift_window_nondestructive
from repro.device.mtj import MTJDevice
from repro.device.switching import SwitchingModel
from repro.device.transistor import FixedResistanceTransistor


def imax_sweep(calibration, currents):
    """Optimize the nondestructive scheme at each I_max and collect the
    margin/robustness trajectory."""
    params = calibration.params
    switching = SwitchingModel(params)
    results = []
    for i_max in currents:
        scale = i_max / params.i_read_max
        resized = params.replace(
            i_read_max=float(i_max),
            dr_high_max=min(params.dr_high_max * scale, 0.9 * params.r_high),
            dr_low_max=min(params.dr_low_max * scale, 0.9 * params.r_low),
        )
        cell = Cell1T1J(
            MTJDevice(resized, calibration.rolloff_high(), calibration.rolloff_low()),
            FixedResistanceTransistor(917.0),
        )
        optimum = optimize_beta_nondestructive(cell, float(i_max), alpha=0.5)
        window = rtr_shift_window_nondestructive(cell, float(i_max), optimum.beta, 0.5)
        disturb = switching.read_disturb_probability(float(i_max), 15e-9)
        results.append((float(i_max), optimum, window, disturb))
    return results


def test_ablation_imax(benchmark, calibration, report):
    currents = np.array([100e-6, 150e-6, 200e-6, 250e-6, 300e-6])
    results = benchmark(imax_sweep, calibration, currents)

    report("Ablation A1 — nondestructive margin & robustness vs I_max")
    rows = []
    for i_max, optimum, window, disturb in results:
        rows.append(
            [
                f"{i_max * 1e6:.0f} µA",
                f"{i_max / calibration.params.i_c0:.0%}",
                f"{optimum.beta:.3f}",
                f"{optimum.max_sense_margin * 1e3:6.2f} mV",
                f"±{window[1]:.0f} Ω",
                f"{disturb:.1e}",
            ]
        )
    report(format_table(
        ["I_max", "of I_c0", "β*", "max margin", "ΔR_TR window", "P(disturb/read)"],
        rows,
    ))
    report()
    report("Margin and ΔR_TR window grow monotonically with I_max; the read")
    report("disturb probability stays negligible up to the paper's 40% of I_c0.")

    margins = [optimum.max_sense_margin for _, optimum, _, _ in results]
    windows = [window[1] for _, _, window, _ in results]
    assert all(b > a for a, b in zip(margins, margins[1:]))
    assert all(b > a for a, b in zip(windows, windows[1:]))
    # At the paper's operating point (200 µA = 40% I_c0), disturb is nil.
    paper_point = results[2]
    assert paper_point[3] < 1e-9
