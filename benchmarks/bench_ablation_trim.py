"""Ablation A7: test-stage β trimming (the paper's §V compensation).

"the current ratio β of read current driver can be adjusted in testing
stage to compensate the voltage ratio α variation" — quantify how much
margin the trim recovers on parts whose divider ratio came out skewed.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.prodtest import trim_skew_experiment


def test_ablation_trim(benchmark, calibration, report):
    skews = np.array([-0.06, -0.03, 0.0, +0.03, +0.06])
    results = benchmark(trim_skew_experiment, calibration, skews)

    report("Ablation A7 — β trim vs systematic divider skew (2048-bit lots)")
    rows = []
    for skew, untrimmed, trim in results:
        rows.append(
            [
                f"{skew:+.0%}",
                f"{untrimmed * 1e3:+7.2f} mV",
                f"{trim.beta:.3f}",
                f"{trim.worst_margin * 1e3:7.2f} mV",
                f"{trim.yield_fraction:.1%}",
            ]
        )
    report(format_table(
        ["α skew", "worst margin untrimmed", "trimmed β", "worst margin trimmed", "yield"],
        rows,
    ))
    report()
    report("A ±6% divider skew (outside the untrimmed Fig. 8 window) kills")
    report("the margin; re-trimming β recovers it almost completely — the")
    report("paper's test-stage compensation, quantified.")

    for skew, untrimmed, trim in results:
        assert trim.worst_margin >= untrimmed - 1e-9
        # Every lot recovers to ~the 8 mV window (worst bit of 2048).
        assert trim.worst_margin > 7e-3
        assert trim.yield_fraction > 0.995
    worst_skew = results[0]
    assert worst_skew[1] < 0.0       # untrimmed -6% lot was dead...
    assert worst_skew[2].worst_margin > 7e-3  # ...and the trim revived it
