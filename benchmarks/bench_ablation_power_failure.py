"""Ablation A4: non-volatility under power failure.

The paper argues qualitatively that the destructive scheme "raises the
concerns about the chip reliability from non-volatility point of view";
this bench quantifies the per-read loss probability and demonstrates actual
data loss with injected failures.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.calibration import calibrated_cell
from repro.core.destructive import DestructiveSelfReference
from repro.timing.latency import destructive_read_latency, nondestructive_read_latency
from repro.timing.reliability import (
    PowerFailureModel,
    data_loss_probability_per_read,
    vulnerability_window,
)


def loss_model(cell, beta_destructive, beta_nondestructive):
    destructive = destructive_read_latency(cell, beta=beta_destructive)
    nondestructive = nondestructive_read_latency(cell, beta=beta_nondestructive)
    model = PowerFailureModel(failure_rate=1.0 / 86400.0)  # one brown-out/day
    return {
        "window_destructive": vulnerability_window(destructive),
        "window_nondestructive": vulnerability_window(nondestructive),
        "p_destructive": data_loss_probability_per_read(destructive, model),
        "p_nondestructive": data_loss_probability_per_read(nondestructive, model),
    }


def test_ablation_power_failure(benchmark, paper_cell, calibration, report):
    analytic = benchmark(
        loss_model,
        paper_cell,
        calibration.beta_destructive,
        calibration.beta_nondestructive,
    )

    report("Ablation A4 — non-volatility under power failure")
    report(format_table(
        ["scheme", "vulnerability window", "P(loss)/read @1 failure/day"],
        [
            [
                "destructive",
                f"{analytic['window_destructive'] * 1e9:.1f} ns",
                f"{analytic['p_destructive']:.2e}",
            ],
            [
                "nondestructive",
                f"{analytic['window_nondestructive'] * 1e9:.1f} ns",
                f"{analytic['p_nondestructive']:.0e}",
            ],
        ],
    ))

    # Injected-failure experiment: every interrupted destructive read of a
    # stored '1' loses the bit; the nondestructive scheme never does.
    rng = np.random.default_rng(3)
    scheme = DestructiveSelfReference(beta=calibration.beta_destructive)
    lost = 0
    trials = 64
    for _ in range(trials):
        cell = calibrated_cell()
        cell.write(1)
        result = scheme.read(cell, rng, power_failure_at="after_erase")
        lost += int(result.data_destroyed)
    report("")
    report(f"injected failures after erase, stored '1': {lost}/{trials} bits lost")
    report("nondestructive scheme: structurally zero loss (no write phases)")

    assert analytic["window_nondestructive"] == 0.0
    assert analytic["p_nondestructive"] == 0.0
    assert analytic["window_destructive"] > 10e-9
    assert lost == trials
