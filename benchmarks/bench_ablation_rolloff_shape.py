"""Ablation A5: sensitivity of the nondestructive scheme to the roll-off
curve shape.

The scheme's whole margin comes from the high-state roll-off between the
two read currents, so the curve's *shape* (not just its endpoint) sets the
achievable margin.  Sweep the power-law exponent and report the optimum.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.core.cell import Cell1T1J
from repro.core.optimize import optimize_beta_destructive, optimize_beta_nondestructive
from repro.device.mtj import MTJDevice, MTJParams
from repro.device.rolloff import PowerLawRollOff
from repro.device.transistor import FixedResistanceTransistor


def shape_sweep(exponents):
    results = []
    for exponent in exponents:
        params = MTJParams(dr_low_max=10.0)
        cell = Cell1T1J(
            MTJDevice(params, PowerLawRollOff(float(exponent)), PowerLawRollOff(1.0)),
            FixedResistanceTransistor(917.0),
        )
        nondes = optimize_beta_nondestructive(cell, 200e-6, alpha=0.5)
        dest = optimize_beta_destructive(cell, 200e-6)
        results.append((float(exponent), nondes, dest))
    return results


def test_ablation_rolloff_shape(benchmark, report):
    exponents = np.array([0.5, 0.75, 1.0, 1.5, 2.0, 3.0])
    results = benchmark(shape_sweep, exponents)

    report("Ablation A5 — margin vs high-state roll-off shape (ΔR_Hmax fixed at 600 Ω)")
    rows = []
    for exponent, nondes, dest in results:
        rows.append(
            [
                f"{exponent:.2f}",
                f"{nondes.beta:.3f}",
                f"{nondes.max_sense_margin * 1e3:6.2f} mV",
                f"{dest.beta:.3f}",
                f"{dest.max_sense_margin * 1e3:6.2f} mV",
            ]
        )
    report(format_table(
        ["exponent p", "β* nondes", "margin nondes", "β* destr", "margin destr"],
        rows,
    ))
    report()
    report("Concave (p<1) roll-off front-loads the resistance drop and")
    report("*reduces* the roll-off difference between the two reads, hurting")
    report("the nondestructive margin; convex (p>1) shapes help it.  The")
    report("destructive margin, referenced to an erased cell, barely cares.")

    nondes_margins = [n.max_sense_margin for _, n, _ in results]
    dest_margins = [d.max_sense_margin for _, _, d in results]
    # Nondestructive margin grows with the exponent...
    assert all(b > a for a, b in zip(nondes_margins, nondes_margins[1:]))
    # ...while the destructive one moves far less (relative spread).
    nondes_spread = (max(nondes_margins) - min(nondes_margins)) / np.mean(nondes_margins)
    dest_spread = (max(dest_margins) - min(dest_margins)) / np.mean(dest_margins)
    assert nondes_spread > 2 * dest_spread
