"""Ablation A10: write-error rate of the destructive scheme's pulses.

Every destructive read issues two write pulses (erase + write-back); each
carries a nonzero failure probability that depends on the write-driver
overdrive.  The nondestructive scheme is structurally immune — its error
budget contains no write term at all.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.device.switching import SwitchingModel


def wer_sweep(params, overdrives, pulse_width=4e-9):
    model = SwitchingModel(params)
    return [
        (float(od), model.write_error_rate(float(od) * params.i_c0, pulse_width))
        for od in overdrives
    ]


def test_ablation_wer(benchmark, calibration, report):
    overdrives = np.array([1.0, 1.1, 1.2, 1.3, 1.5, 2.0])
    results = benchmark(wer_sweep, calibration.params, overdrives)

    report("Ablation A10 — write-error rate vs write overdrive (4 ns pulse)")
    rows = []
    for overdrive, wer in results:
        per_read = 1.0 - (1.0 - wer) ** 2  # two pulses per destructive read
        rows.append(
            [
                f"{overdrive:.1f}x I_c0",
                f"{overdrive * calibration.params.i_c0 * 1e6:.0f} µA",
                f"{wer:.2e}",
                f"{per_read:.2e}",
            ]
        )
    report(format_table(
        ["overdrive", "write current", "WER per pulse", "per destructive read"],
        rows,
    ))
    report()
    report("Below ~1.2x overdrive the destructive read silently corrupts")
    report("storage at rates far above any sensing error; the nondestructive")
    report("scheme has no write term in its error budget at all.")

    wers = [wer for _, wer in results]
    assert all(b <= a for a, b in zip(wers, wers[1:]))  # monotone in drive
    marginal = dict(results)[1.0]
    solid = dict(results)[1.5]
    assert marginal > 1e-3      # at I_c0: ~2% WER, unusable for storage
    assert solid < 1e-8         # at 1.5x it is reliable
