"""Array-level consequence of the §V latency/energy numbers: sustained
read bandwidth and power of a multi-bank macro built on each scheme."""

from repro.analysis.report import format_table
from repro.array.organization import ArrayOrganization, throughput_comparison
from repro.units import format_si


def test_array_throughput(benchmark, paper_cell, calibration, report):
    organization = ArrayOrganization(banks=4, rows=128, columns=128)
    destructive, nondestructive = benchmark(
        throughput_comparison,
        paper_cell,
        organization,
        200e-6,
        calibration.beta_destructive,
        calibration.beta_nondestructive,
    )

    report("Array-level read characteristics (4 banks x 128 x 128)")
    rows = []
    for result in (destructive, nondestructive):
        rows.append(
            [
                result.scheme,
                f"{result.page_latency * 1e9:.1f} ns",
                format_si(result.read_bandwidth, "bit/s"),
                format_si(result.read_power, "W"),
                format_si(result.energy_per_bit, "J/bit"),
            ]
        )
    report(format_table(
        ["scheme", "page latency", "read bandwidth", "read power", "energy/bit"],
        rows,
    ))
    report()
    bandwidth_gain = nondestructive.read_bandwidth / destructive.read_bandwidth
    power_gain = destructive.read_power / nondestructive.read_power
    report(f"the nondestructive macro streams {bandwidth_gain:.2f}x more read")
    report(f"bandwidth at {power_gain:.1f}x lower array power — the paper's")
    report("per-read latency/energy wins compound at the array level.")

    assert bandwidth_gain > 1.5
    assert power_gain > 5.0
    assert nondestructive.page_bits == 128
