"""Ablation A3: why α = 0.5.

The paper: "Usually we choose α = 0.5 (a symmetric structure of voltage
divider) to minimize the impact of process variation on our design."
This bench shows the achievable margin is nearly α-independent (β absorbs
the choice), so the symmetric, best-matched divider wins.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.core.optimize import optimize_beta_nondestructive
from repro.core.robustness import alpha_deviation_window


def alpha_sweep(cell, alphas):
    results = []
    for alpha in alphas:
        optimum = optimize_beta_nondestructive(cell, 200e-6, alpha=float(alpha))
        window = alpha_deviation_window(cell, 200e-6, optimum.beta, float(alpha))
        results.append((float(alpha), optimum, window))
    return results


def test_ablation_alpha_choice(benchmark, paper_cell, report):
    alphas = np.array([0.30, 0.40, 0.50, 0.60, 0.70])
    results = benchmark(alpha_sweep, paper_cell, alphas)

    report("Ablation A3 — divider-ratio (α) design choice")
    rows = []
    for alpha, optimum, window in results:
        rows.append(
            [
                f"{alpha:.2f}",
                f"{optimum.beta:.3f}",
                f"{optimum.beta * alpha:.3f}",
                f"{optimum.max_sense_margin * 1e3:6.2f} mV",
                f"{window[0]:+.2%} / {window[1]:+.2%}",
            ]
        )
    report(format_table(
        ["α", "β*", "α·β*", "max margin", "Δα window"], rows
    ))
    report()
    report("The achievable margin PEAKS near α = 0.5 (β absorbs the ratio,")
    report("and α·β* stays ≈1.07 across the sweep), so the paper's symmetric")
    report("divider is both the margin-optimal and the best-matched choice.")

    margins = np.array([optimum.max_sense_margin for _, optimum, _ in results])
    products = np.array([alpha * optimum.beta for alpha, optimum, _ in results])
    # Margin maximized at (or adjacent to) the paper's α = 0.5.
    best_alpha = alphas[int(np.argmax(margins))]
    assert abs(best_alpha - 0.5) <= 0.1
    # α·β* is nearly invariant (the electrical constraint αβ ≳ 1).
    assert np.ptp(products) / products.mean() < 0.06
    assert np.all(products > 1.0)
