"""Ablation A12: generic margin-sensitivity ranking.

The paper hand-picks three robustness knobs (β, ΔR_TR, Δα).  A systematic
first-order sensitivity scan over *every* model parameter recovers the same
ranking — α and β mismatch dominate the nondestructive scheme's risk, and
``I_max`` is its strongest improvement lever — and quantifies the rest.
"""

from repro.analysis.report import format_table
from repro.analysis.sensitivity import margin_sensitivities


def test_ablation_sensitivity(benchmark, paper_cell, calibration, report):
    entries = benchmark(
        margin_sensitivities,
        paper_cell,
        calibration.beta_destructive,
        calibration.beta_nondestructive,
    )

    report("Ablation A12 — normalized margin sensitivities "
           "(% margin per % parameter)")
    rows = [
        [entry.parameter, entry.scheme, f"{entry.sensitivity:+7.2f}"]
        for entry in entries
    ]
    report(format_table(["parameter", "scheme", "sensitivity"], rows))
    report()
    report("The top risks are the nondestructive scheme's α and β mismatch —")
    report("exactly the knobs the paper's §IV robustness analysis singles")
    report("out — while its strongest positive lever is the read current")
    report("(the paper's 'increase I_max' future work).")

    top_two = {(entry.parameter, entry.scheme) for entry in entries[:2]}
    assert top_two == {("alpha", "nondestructive"), ("beta", "nondestructive")}
    imax = next(
        e for e in entries
        if e.parameter == "i_read2" and e.scheme == "nondestructive"
    )
    assert imax.sensitivity > 1.0
