"""Topology scaling: saturation throughput vs channel count.

One controller over 4 banks saturates when its hottest bank does; the
sharded :mod:`repro.service.topology` layer scales that ceiling by
fanning the same Zipfian stream across independent channels.  Driving
``Cx1x4`` topologies (channel-striped interleave, nondestructive read
times) through :func:`find_saturation_rate` shows:

* **cacheless**, scaling flattens near 2x regardless of channel count —
  the single hottest word (~17 % of Zipf-1.1 traffic) serializes on one
  bank, a ceiling no interleaving can move;
* with each channel's own small read cache absorbing that hot set (the
  deployment configuration — cache hardware scales with channels), 4
  channels sustain well over the issue's **>= 2x** floor vs 1 channel;
* the multiprocess executor reproduces the sequential merged report
  **bit for bit** at the knee (the ``docs/TOPOLOGY.md`` contract).

``TOPOLOGY_BENCH_SMOKE=1`` (the CI smoke job) shrinks the workload and
relaxes the scaling floor; the full run pins the >= 2x gate.
"""

import json
import os
import pathlib

import numpy as np

from repro.service import (
    CHANNEL_STRIPED,
    Topology,
    build_workload,
    find_saturation_rate,
    scheme_service_times,
    simulate_topology,
)

ADDRESSES = 2048     # shared logical address space (Zipf skew identical)
SEED = 2010
ROWS = 512           # 1x1x4 capacity == ADDRESSES: the flat baseline
CHANNEL_COUNTS = (1, 2, 4)
CACHE_CONFIGS = (0, 16)      # words of read cache per channel
GATED_CACHE = 16             # the deployment config the >= 2x floor gates
INTERLEAVE = CHANNEL_STRIPED
SCHEME = "nondestructive"

_SMOKE = bool(os.environ.get("TOPOLOGY_BENCH_SMOKE"))
REQUESTS = 400 if _SMOKE else 1200
SCALING_FLOOR = 1.2 if _SMOKE else 2.0

BENCH_JSON = pathlib.Path(__file__).parent / "results" / "BENCH_topology.json"


def _update_bench_json(section, payload):
    """Merge one section into the machine-readable BENCH_topology.json."""
    BENCH_JSON.parent.mkdir(exist_ok=True)
    data = {}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text())
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _workload(rate):
    stream = build_workload(
        rate=rate, addressing="zipfian", addresses=ADDRESSES
    )
    return stream.generate(REQUESTS, np.random.default_rng((SEED, 3)))


def _simulate(topology, rate, read_time, write_time, cache, processes=1):
    return simulate_topology(
        _workload(rate), topology,
        read_time=read_time, write_time=write_time,
        interleave=INTERLEAVE, scheme=SCHEME,
        offered_rate=rate, cache_capacity=cache, processes=processes,
    )


def test_topology_channel_scaling(report):
    """Saturation rate vs channel count, plus the mp bit-identity gate."""
    read_time, write_time = scheme_service_times(SCHEME)
    results = {}
    for cache in CACHE_CONFIGS:
        for channels in CHANNEL_COUNTS:
            topology = Topology(
                channels=channels, ranks=1, banks=4, rows=ROWS
            )
            saturation = find_saturation_rate(
                lambda rate: _simulate(
                    topology, rate, read_time, write_time, cache
                ).merged,
                low=1e7, high=2e8, read_time=read_time,
            )
            knee = _simulate(
                topology, saturation, read_time, write_time, cache
            )
            results[cache, channels] = {
                "topology": topology,
                "saturation": saturation,
                "knee": knee,
            }

    # Executor gate: the multiprocess driver must reproduce the
    # sequential merged report bit for bit at the widest topology's knee.
    widest = max(CHANNEL_COUNTS)
    topology = results[GATED_CACHE, widest]["topology"]
    rate = results[GATED_CACHE, widest]["saturation"]
    sequential = _simulate(
        topology, rate, read_time, write_time, GATED_CACHE
    )
    multiprocess = _simulate(
        topology, rate, read_time, write_time, GATED_CACHE, processes=2
    )
    mp_identical = multiprocess == sequential

    report("Topology scaling — Zipfian traffic, channel-striped "
           f"interleave, {SCHEME} scheme, Cx1x4 "
           f"({'smoke scale' if _SMOKE else 'full scale'})")
    for cache in CACHE_CONFIGS:
        report()
        report(f"  read cache: {cache} words per channel"
               + ("  (gated deployment config)" if cache == GATED_CACHE
                  else "  (hot-word ceiling baseline)"))
        for channels in CHANNEL_COUNTS:
            entry = results[cache, channels]
            knee = entry["knee"].merged
            loads = "/".join(
                str(count) for count in entry["knee"].channel_served
            )
            report(f"    {entry['topology'].describe():<6} "
                   f"sat {entry['saturation'] / 1e6:7.0f} Mreq/s   "
                   f"p99 {knee.read_latency.p99 * 1e9:6.1f} ns   "
                   f"hit rate {knee.cache_hit_rate:.2f}   "
                   f"channel loads {loads}")

    advantages = {
        cache: results[cache, 4]["saturation"] / results[cache, 1]["saturation"]
        for cache in CACHE_CONFIGS
    }
    report()
    report(f"saturation advantage 4 vs 1 channels: "
           f"{advantages[GATED_CACHE]:.2f}x cached "
           f"(floor {SCALING_FLOOR:.1f}x), "
           f"{advantages[0]:.2f}x cacheless (hot-word-bound)")
    report(f"multiprocess merged report bit-identical: {mp_identical}")

    _update_bench_json("scaling_smoke" if _SMOKE else "scaling", {
        "smoke": _SMOKE,
        "requests": REQUESTS,
        "addresses": ADDRESSES,
        "interleave": INTERLEAVE,
        "scheme": SCHEME,
        "rows": ROWS,
        "gated_cache_per_channel": GATED_CACHE,
        "saturation_req_per_s": {
            f"cache{cache}_ch{channels}": results[cache, channels]["saturation"]
            for cache in CACHE_CONFIGS
            for channels in CHANNEL_COUNTS
        },
        "advantage_4_vs_1": advantages[GATED_CACHE],
        "advantage_4_vs_1_cacheless": advantages[0],
        "advantage_floor": SCALING_FLOOR,
        "mp_bit_identical": mp_identical,
    })

    # The issue's acceptance gates: channel scaling and executor parity.
    assert advantages[GATED_CACHE] >= SCALING_FLOOR
    assert mp_identical
    # Sharding must not lose requests: every knee run drained completely.
    for entry in results.values():
        merged = entry["knee"].merged
        assert merged.completed == merged.requests == REQUESTS
