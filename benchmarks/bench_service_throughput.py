"""Serving-level saturation gap: the paper's §V claim end to end.

The destructive self-reference read occupies a bank for ~27 ns versus
~12.6 ns nondestructive.  Driving both through the full
:mod:`repro.service` stack — Poisson traffic, 4-bank controller, FCFS —
and bisecting for the saturation knee (mean read latency > 4× the
unloaded read) shows the nondestructive macro sustaining well over 1.5×
the request rate of the destructive one, with the p99 latency curves
captured through ``repro.obs`` metrics.
"""

import json
import os
import pathlib
import time

import numpy as np

from repro import obs
from repro.analysis.report import format_table
from repro.service import (
    BACKEND_BATCHED,
    BACKEND_SCALAR,
    ControllerConfig,
    build_backend,
    build_workload,
    find_saturation_rate,
    publish_report,
    scheme_service_times,
    simulate_service,
)

BANKS = 4
ADDRESSES = 2048     # logical words of the 16kb macro's address space
REQUESTS = 1500
SEED = 2010
SCHEMES = ("destructive", "nondestructive")

# Backed-serving operating point: batch-policy controller over the real
# 16kb recovery ladder, offered far past the knee so every bank is always
# backlogged and wall clock measures pure service throughput.
BACKED_SEED = 2011
BACKED_RATE = 2e9
BACKED_BATCH_LIMIT = 32
BACKED_FAULT_RATE = 1e-4
BACKED_WRITE_FRACTION = 0.15
# SERVICE_BENCH_SMOKE=1 (the CI smoke job) shrinks the workload and only
# requires the batched path to not be slower than the scalar one; the full
# run pins the issue's >= 5x gate.
_SMOKE = bool(os.environ.get("SERVICE_BENCH_SMOKE"))
BACKED_REQUESTS = 300 if _SMOKE else REQUESTS
BACKED_SPEEDUP_FLOOR = 1.0 if _SMOKE else 5.0

BENCH_JSON = pathlib.Path(__file__).parent / "results" / "BENCH_service.json"


def _update_bench_json(section, payload):
    """Merge one section into the machine-readable BENCH_service.json."""
    BENCH_JSON.parent.mkdir(exist_ok=True)
    data = {}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text())
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _simulate(scheme, config, rate, requests=REQUESTS):
    stream = build_workload(rate=rate, addresses=ADDRESSES)
    workload = stream.generate(requests, np.random.default_rng((SEED, 3)))
    return simulate_service(
        workload, config, policy="fcfs", scheme=scheme, offered_rate=rate
    )


def service_saturation_sweep():
    """Per-scheme saturation rate plus a latency curve below the knee."""
    results = {}
    for scheme in SCHEMES:
        read_time, write_time = scheme_service_times(scheme)
        config = ControllerConfig(
            read_time=read_time, write_time=write_time, banks=BANKS
        )
        saturation = find_saturation_rate(
            lambda rate: _simulate(scheme, config, rate),
            low=1e7, high=2e8, read_time=read_time,
        )
        curve = []
        for fraction in (0.25, 0.5, 0.75, 0.9, 1.0):
            rate = fraction * saturation
            report = _simulate(scheme, config, rate)
            publish_report(report)
            curve.append((fraction, report))
        results[scheme] = {
            "read_time": read_time,
            "saturation": saturation,
            "curve": curve,
        }
    return results


def test_service_saturation_gap(benchmark, report):
    with obs.capture() as (registry, _):
        results = benchmark(service_saturation_sweep)
        snapshot = registry.snapshot(profile=False)

    report("Service saturation — trace-driven 4-bank controller, Poisson "
           "reads, FCFS")
    rows = []
    for scheme in SCHEMES:
        entry = results[scheme]
        rows.append([
            scheme,
            f"{entry['read_time'] * 1e9:.1f} ns",
            f"{entry['saturation'] / 1e6:.0f} Mreq/s",
        ])
    report(format_table(["scheme", "bank occupancy", "saturation rate"], rows))
    report()
    report("p99 read latency approaching each scheme's own knee "
           "(repro.obs service.* gauges):")
    curve_rows = []
    for scheme in SCHEMES:
        for fraction, point in results[scheme]["curve"]:
            curve_rows.append([
                scheme,
                f"{fraction:.0%} of knee",
                f"{point.offered_rate / 1e6:.0f} Mreq/s",
                f"{point.read_latency.mean * 1e9:6.1f} ns",
                f"{point.read_latency.p99 * 1e9:6.1f} ns",
                f"{point.queue_depth.mean_depth:.2f}",
            ])
    report(format_table(
        ["scheme", "load", "rate", "mean", "p99", "queue depth"], curve_rows
    ))

    destructive = results["destructive"]["saturation"]
    nondestructive = results["nondestructive"]["saturation"]
    ratio = nondestructive / destructive
    report()
    report(f"saturation-rate advantage: {ratio:.2f}x "
           f"({nondestructive / 1e6:.0f} vs {destructive / 1e6:.0f} Mreq/s)")

    # The paper's §V gap: >= 1.5x the sustained request rate on 4 banks.
    assert ratio >= 1.5
    # The per-rate p99 gauges made it into the obs snapshot for both schemes.
    for scheme in SCHEMES:
        key = f"service.read_latency_p99_ns{{policy=fcfs,scheme={scheme}}}"
        assert key in snapshot["gauges"]
        assert snapshot["gauges"][key] > 0.0
    # The controller's live histograms recorded every read.
    assert "service.latency_ns{op=read}" in snapshot["histograms"]

    _update_bench_json("saturation", {
        scheme: {
            "read_time_ns": results[scheme]["read_time"] * 1e9,
            "rate_req_per_s": results[scheme]["saturation"],
        }
        for scheme in SCHEMES
    } | {"advantage": ratio, "banks": BANKS, "requests": REQUESTS})


def _backed_workload():
    stream = build_workload(
        rate=BACKED_RATE, addresses=ADDRESSES,
        write_fraction=BACKED_WRITE_FRACTION,
    )
    return stream.generate(BACKED_REQUESTS, np.random.default_rng((SEED, 3)))


def _backed_simulation(workload, mode):
    """One backed batch-policy run over a freshly seeded 16kb ladder.

    A new backend per run keeps repeated runs bit-identical (the array,
    cache, and RNG states all start from the same seed); only the
    :func:`simulate_service` call itself is timed by the caller, so
    backend setup cost does not dilute the serving-throughput ratio.
    """
    # transients=False so both modes draw identical fault perturbations and
    # the reports can be compared bit for bit (see docs/SERVICE.md).
    backend, retry = build_backend(
        "nondestructive", BACKED_SEED,
        fault_rate=BACKED_FAULT_RATE, transients=False,
    )
    read_time, write_time = scheme_service_times("nondestructive")
    config = ControllerConfig(
        read_time=read_time, write_time=write_time, banks=BANKS,
        batch_limit=BACKED_BATCH_LIMIT,
    )
    return lambda: simulate_service(
        workload, config, policy="batch", backend=backend,
        retry_policy=retry, scheme="nondestructive",
        offered_rate=BACKED_RATE, backend_mode=mode,
    )


def _best_of(runs, setup):
    """Min wall clock over ``runs`` fresh simulations (setup untimed)."""
    best, result = float("inf"), None
    for _ in range(runs):
        simulate = setup()
        start = time.perf_counter()
        result = simulate()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_backed_batched_speedup(report):
    """Vectorized ladder vs word-by-word: same report, >= 5x the throughput.

    Both modes serve the identical saturating workload through the same
    seeded 16kb backend; the batched path must reproduce the scalar
    path's ``ServiceReport`` exactly while finishing the wall-clock run
    at least :data:`BACKED_SPEEDUP_FLOOR` times faster.
    """
    runs = 2 if _SMOKE else 5
    workload = _backed_workload()
    # Timed runs happen outside obs.capture so neither mode pays metering
    # overhead; the histogram comes from one extra untimed batched run.
    scalar_s, scalar_report = _best_of(
        runs, lambda: _backed_simulation(workload, BACKEND_SCALAR)
    )
    batched_s, batched_report = _best_of(
        runs, lambda: _backed_simulation(workload, BACKEND_BATCHED)
    )
    with obs.capture() as (registry, _):
        _backed_simulation(workload, BACKEND_BATCHED)()
        histogram = registry.histogram("service.backend.batch_size")

    # Bit-exactness first: the speedup is meaningless if the vectorized
    # ladder drifted from the scalar reference.
    assert batched_report == scalar_report
    assert batched_report.retried_words > 0

    speedup = scalar_s / batched_s
    mean_group = histogram["sum"] / histogram["count"]

    report("Backed serving — batched vs scalar recovery ladder "
           f"({'smoke scale' if _SMOKE else 'full scale'})")
    report(format_table(
        ["mode", "wall clock", "requests", "throughput"],
        [
            [BACKEND_SCALAR, f"{scalar_s * 1e3:7.1f} ms",
             str(BACKED_REQUESTS),
             f"{BACKED_REQUESTS / scalar_s / 1e3:.1f} kreq/s"],
            [BACKEND_BATCHED, f"{batched_s * 1e3:7.1f} ms",
             str(BACKED_REQUESTS),
             f"{BACKED_REQUESTS / batched_s / 1e3:.1f} kreq/s"],
        ],
    ))
    report()
    report(f"speedup: {speedup:.2f}x (floor {BACKED_SPEEDUP_FLOOR:.1f}x); "
           f"groups: {histogram['count']}, mean size {mean_group:.1f}, "
           f"max {histogram['max']:.0f}")

    _update_bench_json("backed_smoke" if _SMOKE else "backed", {
        "smoke": _SMOKE,
        "requests": BACKED_REQUESTS,
        "banks": BANKS,
        "batch_limit": BACKED_BATCH_LIMIT,
        "fault_rate": BACKED_FAULT_RATE,
        "offered_rate": BACKED_RATE,
        "scalar_seconds": scalar_s,
        "batched_seconds": batched_s,
        "speedup": speedup,
        "speedup_floor": BACKED_SPEEDUP_FLOOR,
        "reports_bit_identical": batched_report == scalar_report,
        "batch_size_histogram": {
            "count": histogram["count"],
            "mean": mean_group,
            "max": histogram["max"],
            "edges": histogram["edges"],
            "counts": histogram["counts"],
        },
    })

    # The tentpole gate: batch-first serving must beat the word-by-word
    # baseline by 5x at full scale (and never regress below it in smoke).
    assert speedup >= BACKED_SPEEDUP_FLOOR
    # Saturated batch policy on 4 banks actually coalesced large groups.
    assert histogram["max"] >= (4 if _SMOKE else 16)
