"""Serving-level saturation gap: the paper's §V claim end to end.

The destructive self-reference read occupies a bank for ~27 ns versus
~12.6 ns nondestructive.  Driving both through the full
:mod:`repro.service` stack — Poisson traffic, 4-bank controller, FCFS —
and bisecting for the saturation knee (mean read latency > 4× the
unloaded read) shows the nondestructive macro sustaining well over 1.5×
the request rate of the destructive one, with the p99 latency curves
captured through ``repro.obs`` metrics.
"""

import numpy as np

from repro import obs
from repro.analysis.report import format_table
from repro.service import (
    ControllerConfig,
    build_workload,
    find_saturation_rate,
    publish_report,
    scheme_service_times,
    simulate_service,
)

BANKS = 4
ADDRESSES = 2048     # logical words of the 16kb macro's address space
REQUESTS = 1500
SEED = 2010
SCHEMES = ("destructive", "nondestructive")


def _simulate(scheme, config, rate, requests=REQUESTS):
    stream = build_workload(rate=rate, addresses=ADDRESSES)
    workload = stream.generate(requests, np.random.default_rng((SEED, 3)))
    return simulate_service(
        workload, config, policy="fcfs", scheme=scheme, offered_rate=rate
    )


def service_saturation_sweep():
    """Per-scheme saturation rate plus a latency curve below the knee."""
    results = {}
    for scheme in SCHEMES:
        read_time, write_time = scheme_service_times(scheme)
        config = ControllerConfig(
            read_time=read_time, write_time=write_time, banks=BANKS
        )
        saturation = find_saturation_rate(
            lambda rate: _simulate(scheme, config, rate),
            low=1e7, high=2e8, read_time=read_time,
        )
        curve = []
        for fraction in (0.25, 0.5, 0.75, 0.9, 1.0):
            rate = fraction * saturation
            report = _simulate(scheme, config, rate)
            publish_report(report)
            curve.append((fraction, report))
        results[scheme] = {
            "read_time": read_time,
            "saturation": saturation,
            "curve": curve,
        }
    return results


def test_service_saturation_gap(benchmark, report):
    with obs.capture() as (registry, _):
        results = benchmark(service_saturation_sweep)
        snapshot = registry.snapshot(profile=False)

    report("Service saturation — trace-driven 4-bank controller, Poisson "
           "reads, FCFS")
    rows = []
    for scheme in SCHEMES:
        entry = results[scheme]
        rows.append([
            scheme,
            f"{entry['read_time'] * 1e9:.1f} ns",
            f"{entry['saturation'] / 1e6:.0f} Mreq/s",
        ])
    report(format_table(["scheme", "bank occupancy", "saturation rate"], rows))
    report()
    report("p99 read latency approaching each scheme's own knee "
           "(repro.obs service.* gauges):")
    curve_rows = []
    for scheme in SCHEMES:
        for fraction, point in results[scheme]["curve"]:
            curve_rows.append([
                scheme,
                f"{fraction:.0%} of knee",
                f"{point.offered_rate / 1e6:.0f} Mreq/s",
                f"{point.read_latency.mean * 1e9:6.1f} ns",
                f"{point.read_latency.p99 * 1e9:6.1f} ns",
                f"{point.queue_depth.mean_depth:.2f}",
            ])
    report(format_table(
        ["scheme", "load", "rate", "mean", "p99", "queue depth"], curve_rows
    ))

    destructive = results["destructive"]["saturation"]
    nondestructive = results["nondestructive"]["saturation"]
    ratio = nondestructive / destructive
    report()
    report(f"saturation-rate advantage: {ratio:.2f}x "
           f"({nondestructive / 1e6:.0f} vs {destructive / 1e6:.0f} Mreq/s)")

    # The paper's §V gap: >= 1.5x the sustained request rate on 4 banks.
    assert ratio >= 1.5
    # The per-rate p99 gauges made it into the obs snapshot for both schemes.
    for scheme in SCHEMES:
        key = f"service.read_latency_p99_ns{{policy=fcfs,scheme={scheme}}}"
        assert key in snapshot["gauges"]
        assert snapshot["gauges"][key] > 0.0
    # The controller's live histograms recorded every read.
    assert "service.latency_ns{op=read}" in snapshot["histograms"]
