"""Ablation A6: fail rate of every scheme vs process-variation scale.

Extends the paper's single-point 16kb measurement into a scaling curve:
how much more variation can each scheme absorb before yield collapses?
"""

import numpy as np

from repro.analysis.report import format_table
from repro.array.testchip import TESTCHIP_VARIATION, TestChip, run_testchip_experiment


def variation_sweep(scales, rows=64, columns=64):
    results = []
    for scale in scales:
        chip = TestChip(
            rows=rows, columns=columns,
            variation=TESTCHIP_VARIATION.scaled(float(scale)),
        )
        outcome = run_testchip_experiment(chip, rng=np.random.default_rng(11))
        results.append((float(scale), outcome))
    return results


def test_ablation_variation_scaling(benchmark, report):
    scales = np.array([0.5, 1.0, 1.5, 2.0, 3.0, 4.0])
    results = benchmark(variation_sweep, scales)

    report("Ablation A6 — fail rate vs variation scale (4k-bit chips, 8 mV window)")
    rows = []
    for scale, outcome in results:
        rows.append(
            [
                f"{scale:.1f}x",
                f"{outcome.report['conventional'].fail_fraction:7.2%}",
                f"{outcome.report['destructive'].fail_fraction:7.2%}",
                f"{outcome.report['nondestructive'].fail_fraction:7.2%}",
            ]
        )
    report(format_table(
        ["variation", "conventional", "destructive", "nondestructive"], rows
    ))
    report()
    report("Conventional yield collapses first (shared reference + additive")
    report("offset); the destructive scheme holds longest (its 76 mV margin")
    report("scales with the bit); the nondestructive scheme sits between,")
    report("limited by its 12 mV design margin against the fixed 8 mV window.")

    conventional = [o.report["conventional"].fail_fraction for _, o in results]
    destructive = [o.report["destructive"].fail_fraction for _, o in results]
    nondestructive = [o.report["nondestructive"].fail_fraction for _, o in results]
    # Monotone degradation for conventional; destructive stays best.
    assert conventional[-1] > conventional[1] > conventional[0]
    assert all(d <= c for d, c in zip(destructive, conventional))
    assert all(d <= n for d, n in zip(destructive, nondestructive))
    # At the paper's nominal point the ordering of Fig. 11 holds.
    nominal = results[1][1]
    assert nominal.report["destructive"].fail_fraction == 0.0
    assert nominal.report["nondestructive"].fail_fraction <= 0.001
