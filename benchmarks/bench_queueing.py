"""Array-level queueing: the §V latency gap compounds under load.

Poisson read traffic over a 4-bank macro: the destructive scheme's 27 ns
bank occupancy saturates at less than half the request rate the
nondestructive scheme's 12.6 ns sustains, and its queueing delay explodes
first.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.array.scheduler import simulate_read_queue
from repro.timing.latency import latency_comparison


def queue_sweep(cell, beta_destructive, beta_nondestructive, rates):
    destructive, nondestructive, _ = latency_comparison(
        cell,
        beta_destructive=beta_destructive,
        beta_nondestructive=beta_nondestructive,
    )
    results = []
    for rate in rates:
        row = {"rate": float(rate)}
        for label, breakdown in (
            ("destructive", destructive),
            ("nondestructive", nondestructive),
        ):
            offered = rate * breakdown.total / 4
            if offered >= 0.95:
                row[label] = None  # saturated
            else:
                row[label] = simulate_read_queue(
                    breakdown.total, float(rate), banks=4, requests=4096,
                    rng=np.random.default_rng(31),
                )
        results.append(row)
    return results


def test_queueing(benchmark, paper_cell, calibration, report):
    rates = np.array([0.2e8, 0.6e8, 1.0e8, 1.4e8, 2.0e8, 2.8e8])
    results = benchmark(
        queue_sweep,
        paper_cell,
        calibration.beta_destructive,
        calibration.beta_nondestructive,
        rates,
    )

    report("Array queueing — mean request latency vs read-request rate "
           "(4 banks, Poisson arrivals)")
    rows = []
    for row in results:
        def fmt(entry):
            if entry is None:
                return "SATURATED"
            return f"{entry.mean_latency * 1e9:6.1f} ns (p99 {entry.p99_latency * 1e9:5.1f})"

        rows.append(
            [
                f"{row['rate'] / 1e6:.0f} Mreq/s",
                fmt(row["destructive"]),
                fmt(row["nondestructive"]),
            ]
        )
    report(format_table(["request rate", "destructive", "nondestructive"], rows))
    report()
    report("The destructive macro saturates below ~150 Mreq/s while the")
    report("nondestructive one still serves 280 Mreq/s with bounded queues —")
    report("the paper's 2.15x latency advantage compounds to a >2x capacity")
    report("advantage at the memory-controller level.")

    # At the highest common stable rate the destructive queue is far worse.
    stable = [r for r in results if r["destructive"] is not None][-1]
    assert stable["destructive"].mean_latency > 1.5 * stable["nondestructive"].mean_latency
    # The nondestructive macro survives rates that saturate the destructive.
    top = results[-1]
    assert top["destructive"] is None
    assert top["nondestructive"] is not None