"""Wafer-scale production test: equivalence, throughput, and yield/cost.

The prodtest subsystem's claims are quantitative, so they get hard gates:

* **Vectorized ≡ reference** — the chunked wafer engine must match the
  per-die reference loop bit for bit on a small wafer (every per-die and
  per-cell array, floats compared exactly), and a same-seed rebuild must
  reproduce the run.
* **Throughput** — at the 10⁵-die operating point (10⁴ in the smoke job)
  the vectorized engine must test dies at ≥10× the per-die reference
  loop's rate (the reference is timed on a subset and compared per die).
* **Yield / cost curves** — the three sensing schemes swept across
  variation scales must reproduce the paper's production story: march
  coverage ≥99% of injected faults at the calibrated defect rate,
  conventional sensing's yield collapsing first under variation while
  the self-referenced schemes hold, and the destructive scheme paying
  the longest tester time per die.

``PRODTEST_BENCH_SMOKE=1`` (the CI smoke job) shrinks the wafers; both
scales write their machine-readable sections to
``results/BENCH_prodtest.json``.
"""

import dataclasses
import json
import os
import pathlib
import time

from repro.prodtest import (
    WaferConfig,
    build_wafer,
    compare_schemes,
    run_wafer,
    summarize,
)

SEED = 2010
#: Injected defect rate the coverage gate is scored at.
FAULT_RATE = 2.0e-3
COVERAGE_FLOOR = 0.99
SPEEDUP_FLOOR = 10.0

_SMOKE = bool(os.environ.get("PRODTEST_BENCH_SMOKE"))
#: The throughput operating point: 10⁵ dies full-scale.
SPEEDUP_DIES = 10_000 if _SMOKE else 100_000
#: Reference-loop timing subset (the loop is ~100× slower per die).
REFERENCE_DIES = 100 if _SMOKE else 200
EXACT_DIES = 128 if _SMOKE else 512
CURVE_DIES = 96 if _SMOKE else 384
CURVE_SCALES = (1.0, 1.5, 2.0, 2.5)

BENCH_JSON = pathlib.Path(__file__).parent / "results" / "BENCH_prodtest.json"


def _update_bench_json(section, payload):
    """Merge one section into the machine-readable BENCH_prodtest.json."""
    BENCH_JSON.parent.mkdir(exist_ok=True)
    data = {}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text())
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _section(name):
    return f"{name}_smoke" if _SMOKE else name


def test_vectorized_matches_reference(report):
    """Chunked wafer engine ≡ per-die loop, bit for bit; rebuild is too."""
    config = WaferConfig(
        dies=EXACT_DIES, seed=SEED, fault_rate=FAULT_RATE, chunk_dies=64
    )
    wafer = build_wafer(config)
    vectorized = run_wafer(wafer, engine="vectorized")
    reference = run_wafer(wafer, engine="reference")
    rebuilt = run_wafer(build_wafer(config), engine="vectorized")

    report(f"Vectorized-vs-reference equivalence — {config.dies} dies, "
           f"{config.cells} cells/die, {config.scheme} scheme "
           f"({'smoke scale' if _SMOKE else 'full scale'})")
    report(f"  vectorized == reference: {vectorized.equals(reference)}")
    report(f"  same-seed rebuild == run: {vectorized.equals(rebuilt)}")
    report(f"  yield {vectorized.ship_rate:.1%}, "
           f"coverage {vectorized.coverage['overall']:.1%}")

    _update_bench_json(_section("equivalence"), {
        "smoke": _SMOKE,
        "dies": config.dies,
        "scheme": config.scheme,
        "bit_exact": vectorized.equals(reference),
        "rebuild_bit_exact": vectorized.equals(rebuilt),
        "yield": vectorized.ship_rate,
        "coverage": vectorized.coverage["overall"],
    })

    assert vectorized.equals(reference)
    assert vectorized.equals(rebuilt)


def test_vectorized_speedup(report):
    """≥10× per-die throughput over the reference loop at scale."""
    config = WaferConfig(dies=SPEEDUP_DIES, seed=SEED, fault_rate=FAULT_RATE)
    wafer = build_wafer(config)

    start = time.perf_counter()
    vectorized = run_wafer(wafer, engine="vectorized")
    vectorized_seconds = time.perf_counter() - start

    # The reference loop is timed on a leading subset — at the full
    # operating point it would take minutes — and compared per die.
    reference_config = dataclasses.replace(config, dies=REFERENCE_DIES)
    reference_wafer = build_wafer(reference_config)
    start = time.perf_counter()
    run_wafer(reference_wafer, engine="reference")
    reference_seconds = time.perf_counter() - start

    vectorized_per_die = vectorized_seconds / config.dies
    reference_per_die = reference_seconds / REFERENCE_DIES
    speedup = reference_per_die / vectorized_per_die

    report(f"Vectorized wafer throughput — {config.dies} dies "
           f"({'smoke scale' if _SMOKE else 'full scale'})")
    report(f"  vectorized: {vectorized_seconds:6.2f} s  "
           f"({vectorized_per_die * 1e6:8.1f} µs/die)")
    report(f"  reference:  {reference_seconds:6.2f} s for "
           f"{REFERENCE_DIES} dies ({reference_per_die * 1e6:8.1f} µs/die)")
    report(f"  speedup: {speedup:.1f}x (floor {SPEEDUP_FLOOR:.0f}x)")
    report(f"  yield {vectorized.ship_rate:.1%} over {config.dies} dies, "
           f"{vectorized.total_test_seconds:.1f} tester-seconds simulated")

    _update_bench_json(_section("speedup"), {
        "smoke": _SMOKE,
        "dies": config.dies,
        "reference_dies": REFERENCE_DIES,
        "vectorized_seconds": vectorized_seconds,
        "reference_seconds": reference_seconds,
        "speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "yield": vectorized.ship_rate,
    })

    assert speedup >= SPEEDUP_FLOOR


def test_yield_cost_curves(report):
    """Per-scheme yield/cost curves with the coverage gate at rate 2e-3."""
    records = compare_schemes(
        dies=CURVE_DIES, variation_scales=CURVE_SCALES, seed=SEED,
        config=WaferConfig(fault_rate=FAULT_RATE),
    )

    report(f"Yield / test-time / cost per scheme — {CURVE_DIES} dies/point, "
           f"fault rate {FAULT_RATE:g} "
           f"({'smoke scale' if _SMOKE else 'full scale'})")
    report(f"  {'scheme':<15} {'scale':>5} {'yield':>7} {'coverage':>9} "
           f"{'ms/die':>7} {'$/bit':>7}")
    for record in records:
        report(f"  {record['scheme']:<15} {record['scale']:>5.1f} "
               f"{record['yield']:>7.1%} {record['coverage']:>9.1%} "
               f"{record['test_seconds_per_die'] * 1e3:>7.3f} "
               f"{record['cost_per_good_bit']:>7.3f}")

    _update_bench_json(_section("curves"), {
        "smoke": _SMOKE,
        "dies": CURVE_DIES,
        "fault_rate": FAULT_RATE,
        "coverage_floor": COVERAGE_FLOOR,
        "records": records,
    })

    by_scheme = {}
    for record in records:
        by_scheme.setdefault(record["scheme"], []).append(record)
    assert set(by_scheme) == {"conventional", "destructive", "nondestructive"}

    # Coverage gate: ≥99% of injected faults detected at every point.
    for record in records:
        assert record["coverage"] >= COVERAGE_FLOOR

    # Nominal variation ships nearly everything on every scheme...
    for scheme, rows in by_scheme.items():
        assert rows[0]["yield"] >= 0.95, scheme
    # ...then conventional sensing collapses first under variation — the
    # paper's motivation — while self-reference holds much longer.
    conventional = [r["yield"] for r in by_scheme["conventional"]]
    destructive = [r["yield"] for r in by_scheme["destructive"]]
    assert conventional[-1] < 0.5
    assert destructive[-1] > conventional[-1]
    # The destructive scheme's erase + write-back read makes it the
    # slowest march on the tester.
    for scheme in ("conventional", "nondestructive"):
        assert (
            by_scheme["destructive"][0]["test_seconds_per_die"]
            > by_scheme[scheme][0]["test_seconds_per_die"]
        )


def test_march_time_model(report):
    """The economics summary reconciles with the wafer result it wraps."""
    config = WaferConfig(dies=64, seed=SEED, fault_rate=FAULT_RATE)
    result = run_wafer(build_wafer(config))
    summary = summarize(result)

    report("Summary reconciliation — 64-die wafer, nondestructive scheme")
    report(f"  shipped {summary.shipped}/{summary.dies} "
           f"({summary.ship_rate:.1%}), {summary.good_bits:.0f} good bits")
    report(f"  {summary.mean_test_seconds * 1e3:.3f} ms/die, "
           f"${summary.cost_per_good_bit:.3f}/bit")

    assert summary.shipped == int(result.ships.sum())
    assert abs(
        summary.total_test_seconds - float(result.test_seconds.sum())
    ) < 1e-12
    # Good bits can never exceed the shipped dies' raw data cells.
    assert summary.good_bits <= summary.shipped * result.data_cells_per_die
