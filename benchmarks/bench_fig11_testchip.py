"""Paper Fig. 11: sense margins of every bit of the 16kb test chip under
all three sensing schemes, with the 8 mV pass/fail boundary.

Paper outcome: conventional sensing fails ~1% of bits; both self-reference
schemes read all 16384 bits.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.scatter import ascii_scatter
from repro.array.testchip import run_testchip_experiment


def test_fig11_testchip(benchmark, report):
    result = benchmark(run_testchip_experiment)

    report("Paper Fig. 11 — 16kb test chip, per-bit sense margins, 8 mV window")
    rows = []
    for name in ("conventional", "destructive", "nondestructive"):
        stats = result.report[name]
        sm0, sm1 = result.scatter(name)
        rows.append(
            [
                name,
                f"{stats.fail_count}",
                f"{stats.fail_fraction:.2%}",
                f"{np.mean(sm0) * 1e3:7.2f}",
                f"{np.mean(sm1) * 1e3:7.2f}",
                f"{stats.min_margin * 1e3:7.2f}",
            ]
        )
    report(format_table(
        [
            "scheme",
            "fail bits",
            "fail rate",
            "mean SM0 [mV]",
            "mean SM1 [mV]",
            "worst [mV]",
        ],
        rows,
    ))
    report()
    # The Fig. 11 scatter itself (SM0 vs SM1 per bit), with the 8 mV
    # pass/fail boundary — conventional spreads along the anti-correlated
    # diagonal into the fail region; the self-reference clusters stay clear.
    for name in ("conventional", "nondestructive"):
        sm0, sm1 = result.scatter(name)
        report(f"{name} scatter (paper Fig. 11 panel):")
        report(ascii_scatter(sm0, sm1, boundary=8e-3))
        report()
    report(f"conventional fail rate: {result.conventional_fail_fraction:.2%} "
           f"(paper: 'about 1%')")
    report(f"self-reference schemes read all bits: "
           f"{result.self_reference_all_pass} (paper: yes)")

    assert 0.005 < result.conventional_fail_fraction < 0.02
    assert result.self_reference_all_pass
    # The margin ordering of the paper's scatter: destructive biggest, the
    # nondestructive cluster just above the pass line.
    assert result.report["destructive"].mean_margin > 50e-3
    assert 8e-3 < result.report["nondestructive"].min_margin < 20e-3
