"""Ablation A8: SECDED ECC as the architectural companion of the
low-margin nondestructive scheme.

The nondestructive margin (~12 mV) sits only 1.5× above the 8 mV window,
so scaled-up variation leaves a tail of marginal bits.  A (72, 64) SECDED
word tolerates one such bit — measure the word-yield recovery per scheme.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.array.montecarlo import run_margin_monte_carlo
from repro.array.testchip import TESTCHIP_VARIATION
from repro.device.variation import CellPopulation


def ecc_experiment(calibration, scales, words=256, seed=9):
    from repro.ecc.yield_model import ecc_yield_report

    results = []
    for scale in scales:
        rng = np.random.default_rng(seed)
        population = CellPopulation.sample(
            words * 72,
            TESTCHIP_VARIATION.scaled(float(scale)),
            params=calibration.params,
            rolloff_high=calibration.rolloff_high(),
            rolloff_low=calibration.rolloff_low(),
            rng=rng,
        )
        mc = run_margin_monte_carlo(
            population,
            beta_destructive=calibration.beta_destructive,
            beta_nondestructive=calibration.beta_nondestructive,
            include_sa_offset=False,
        )
        results.append((float(scale), ecc_yield_report(mc, word_cells=72)))
    return results


def test_ablation_ecc(benchmark, calibration, report):
    scales = np.array([1.0, 1.5, 2.0])
    results = benchmark(ecc_experiment, calibration, scales)

    report("Ablation A8 — (72, 64) SECDED word yield, nondestructive scheme")
    rows = []
    for scale, ecc in results:
        rows.append(
            [
                f"{scale:.1f}x",
                f"{ecc.raw_word_fail['nondestructive']:7.2%}",
                f"{ecc.secded_word_fail['nondestructive']:7.2%}",
                f"{ecc.raw_word_fail['conventional']:7.2%}",
                f"{ecc.secded_word_fail['conventional']:7.2%}",
            ]
        )
    report(format_table(
        [
            "variation",
            "nondes raw",
            "nondes SECDED",
            "conv raw",
            "conv SECDED",
        ],
        rows,
    ))
    report()
    report("SECDED extends the nondestructive scheme's usable variation range")
    report("by roughly half a scaling step; it cannot rescue conventional")
    report("sensing, whose multi-bit word failures overwhelm single-error")
    report("correction.")

    nominal = results[0][1]
    stressed = results[1][1]
    # At nominal variation everything already passes.
    assert nominal.raw_word_fail["nondestructive"] <= 0.01
    # At 1.5x, SECDED recovers the nondestructive word yield by > 5x...
    assert stressed.improvement("nondestructive") > 5.0
    # ...while conventional sensing stays broken even with ECC.
    assert stressed.secded_word_fail["conventional"] > 0.5
