"""Paper Table II: robustness summary of both self-reference schemes."""

import pytest

from repro.analysis.report import format_table
from repro.analysis.tables import table2_rows
from repro.core.robustness import robustness_summary


def test_table2_robustness(benchmark, paper_cell, calibration, report):
    summaries = benchmark(
        robustness_summary,
        paper_cell,
        200e-6,
        calibration.beta_destructive,
        calibration.beta_nondestructive,
    )
    destructive, nondestructive = summaries

    report("Paper Table II — robustness of the two self-reference schemes")
    report(format_table(
        ["quantity", "reproduced", "paper"], table2_rows(summaries=summaries)
    ))

    assert destructive.rtr_window[1] == pytest.approx(468.0, rel=0.05)
    assert nondestructive.rtr_window[1] == pytest.approx(130.0, rel=0.05)
    assert nondestructive.beta_window[0] == pytest.approx(2.0, abs=0.02)
    assert nondestructive.alpha_window[1] == pytest.approx(0.0413, abs=0.006)
    assert nondestructive.alpha_window[0] == pytest.approx(-0.0571, abs=0.006)
    assert destructive.alpha_window is None  # "N/A" rows
