"""Paper Fig. 8: nondestructive sense margin vs divider-ratio variation Δα
and the allowable window (−5.71% .. +4.13%)."""

import pytest

from repro.analysis.figures import fig8_alpha_sweep
from repro.analysis.report import render_series


def test_fig8_alpha_robustness(benchmark, paper_cell, calibration, report):
    series = benchmark(fig8_alpha_sweep, paper_cell, calibration.beta_nondestructive)

    report("Paper Fig. 8 — nondestructive margin vs Δα (mV)")
    report(render_series(
        series.deviations * 100.0,
        {"SM0-Nondes": series.sm0, "SM1-Nondes": series.sm1},
        x_label="Δα [%]",
        y_scale=1e3,
    ))
    report(f"allowable Δα: {series.window[0]:+.2%} .. {series.window[1]:+.2%}  "
           f"[paper: -5.71% .. +4.13%]")

    assert series.window[1] == pytest.approx(0.0413, abs=0.006)
    assert series.window[0] == pytest.approx(-0.0571, abs=0.006)
    # The asymmetry direction (|min| > max) is the paper's signature.
    assert abs(series.window[0]) > series.window[1]
