"""Closed-loop adaptive serving under mid-trace drift: the SLO gate.

Three drift scenarios hit the backed 4-bank controller halfway through a
Poisson trace: a temperature ramp (sense margin shrinks, then recovers),
an external-field disturbance window (offset step plus a burst of cell
flips), and an aging roll-off shift (permanent margin loss).  Under every
scenario the *static* serving policy blows through a 1 µs p99 read-latency
SLO, while the :class:`repro.service.AdaptiveController` — watching the
same windowed ``repro.obs`` signals and actuating sense-current
escalation, retry budgets, background scrub, and admission shedding —
holds the SLO by degrading gracefully (lowest-priority traffic shed
first).

Gates:

* full scale — per scenario, static p99 > SLO ≥ adaptive p99;
* zero silent escapes — ``requests == completed + shed`` on every report,
  and the ``service.requests`` / ``service.completions`` /
  ``service.admission.shed`` counters reconcile exactly with it;
* determinism — re-running a scenario with a fresh backend and drift RNG
  reproduces the adaptive :class:`ServiceReport` bit for bit.

ADAPTIVE_BENCH_SMOKE=1 (the CI smoke job) shrinks the trace; at that
scale the static baseline does not always violate the SLO, so the smoke
gate only requires the adaptive run to hold the SLO and to beat the
static p99, plus the full accounting and replay gates.
"""

import json
import os
import pathlib

import numpy as np

from repro import obs
from repro.analysis.report import format_table
from repro.faults import (
    aging_rolloff_shift,
    field_disturbance_window,
    temperature_ramp,
)
from repro.service import (
    AdaptiveConfig,
    ControllerConfig,
    SLOTarget,
    build_backend,
    build_workload,
    scheme_service_times,
    simulate_adaptive_service,
)

BANKS = 4
ADDRESSES = 2048
SEED = 2011
RATE = 1.6e8                     # near the nondestructive knee: no slack
LOW_PRIORITY_FRACTION = 0.25

SLO_P99 = 1000e-9                # 1 µs p99 read latency
GUARDBAND = 0.6                  # act at 600 ns, well before the breach

_SMOKE = bool(os.environ.get("ADAPTIVE_BENCH_SMOKE"))
REQUESTS = 800 if _SMOKE else 2400

BENCH_JSON = pathlib.Path(__file__).parent / "results" / "BENCH_adaptive.json"

ADAPTIVE_CONFIG = AdaptiveConfig(
    control_interval=1e-7,       # 100 ns ticks: react within ~2 services
    min_samples=12,
    escalation_step=0.4,         # one alarm tick jumps to the 0.5 bound
    shed_step=0.2,
    shed_floor=0.3,
)


def _update_bench_json(section, payload):
    """Merge one section into the machine-readable BENCH_adaptive.json."""
    BENCH_JSON.parent.mkdir(exist_ok=True)
    data = {}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text())
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _workload():
    stream = build_workload(
        rate=RATE, addresses=ADDRESSES,
        low_priority_fraction=LOW_PRIORITY_FRACTION,
    )
    return stream.generate(REQUESTS, np.random.default_rng((SEED, 3)))


def _scenarios(span):
    """The three drift scenarios, centered on the middle half of the trace."""
    start, duration = 0.25 * span, 0.5 * span
    return (
        temperature_ramp(start, duration, 8e-3),
        field_disturbance_window(start, duration, 5e-3, flip_fraction=0.006),
        aging_rolloff_shift(start, duration, 8e-3),
    )


def _run(requests, scenario, adaptive):
    """One serving run over a freshly seeded backend (bit-reproducible)."""
    backend, retry = build_backend("nondestructive", SEED)
    read_time, write_time = scheme_service_times("nondestructive")
    config = ControllerConfig(
        read_time=read_time, write_time=write_time, banks=BANKS
    )
    rng = np.random.default_rng((SEED, 5)) if scenario.needs_rng else None
    return simulate_adaptive_service(
        requests, config, backend=backend, retry_policy=retry,
        adaptive=adaptive,
        slo=SLOTarget(SLO_P99, guardband=GUARDBAND) if adaptive else None,
        adaptive_config=ADAPTIVE_CONFIG if adaptive else None,
        scenario=scenario, drift_rng=rng,
        scheme="nondestructive", offered_rate=RATE,
    )


def _counter_sum(snapshot, prefix):
    """Sum a counter family over all label sets in an obs snapshot."""
    return sum(
        value for key, value in snapshot["counters"].items()
        if key == prefix or key.startswith(prefix + "{")
    )


def test_adaptive_holds_slo_under_drift(report):
    """Static serving violates the p99 SLO under drift; adaptive holds it."""
    requests = _workload()
    span = max(r.time for r in requests)
    slo_ns = SLO_P99 * 1e9

    rows, payload = [], {}
    for scenario in _scenarios(span):
        static = _run(requests, scenario, adaptive=False)
        with obs.capture() as (registry, _):
            adaptive = _run(requests, scenario, adaptive=True)
            snapshot = registry.snapshot(profile=False)
        replay = _run(requests, scenario, adaptive=True)

        static_p99 = static.read_latency.p99 * 1e9
        adaptive_p99 = adaptive.read_latency.p99 * 1e9

        # Zero silent escapes: every arrival is either completed or shed,
        # on the report and in the obs counters.
        for result in (static, adaptive):
            assert result.requests == result.completed + result.shed
        assert _counter_sum(snapshot, "service.requests") == REQUESTS
        assert (
            _counter_sum(snapshot, "service.completions")
            + _counter_sum(snapshot, "service.admission.shed")
            == REQUESTS
        )
        assert _counter_sum(snapshot, "service.admission.shed") == adaptive.shed

        # Determinism: fresh backend + fresh drift RNG reproduce the
        # adaptive report bit for bit.
        assert replay == adaptive

        # The SLO gate.  Smoke scale only demands the adaptive run hold
        # the SLO and beat static; full scale demands static violate it.
        assert adaptive_p99 <= slo_ns
        if _SMOKE:
            assert adaptive_p99 <= static_p99
        else:
            assert static_p99 > slo_ns

        rows.append([
            scenario.name,
            f"{static_p99:7.1f} ns", str(static.failed_words),
            f"{adaptive_p99:7.1f} ns", str(adaptive.failed_words),
            str(adaptive.shed), str(adaptive.shed_low_priority),
            str(adaptive.scrubbed_words), str(adaptive.adaptive_actions),
        ])
        payload[scenario.name] = {
            "static_p99_ns": static_p99,
            "static_failed_words": static.failed_words,
            "adaptive_p99_ns": adaptive_p99,
            "adaptive_failed_words": adaptive.failed_words,
            "shed": adaptive.shed,
            "shed_low_priority": adaptive.shed_low_priority,
            "shed_rate": adaptive.shed_rate,
            "scrubbed_words": adaptive.scrubbed_words,
            "adaptive_actions": adaptive.adaptive_actions,
            "adaptive_alarms": adaptive.adaptive_alarms,
            "replay_bit_identical": replay == adaptive,
        }

    report("Adaptive serving under mid-trace drift "
           f"({'smoke scale' if _SMOKE else 'full scale'}, "
           f"SLO p99 = {slo_ns:.0f} ns, {REQUESTS} requests at "
           f"{RATE / 1e6:.0f} Mreq/s)")
    report(format_table(
        ["scenario", "static p99", "fail", "adaptive p99", "fail",
         "shed", "low-pri", "scrubbed", "actions"],
        rows,
    ))
    report()
    report("gates: adaptive p99 <= SLO on every scenario"
           + ("" if _SMOKE else "; static p99 > SLO on every scenario")
           + "; requests == completed + shed; bit-identical replay")

    _update_bench_json("adaptive_smoke" if _SMOKE else "adaptive", {
        "smoke": _SMOKE,
        "requests": REQUESTS,
        "banks": BANKS,
        "offered_rate": RATE,
        "low_priority_fraction": LOW_PRIORITY_FRACTION,
        "slo_p99_ns": slo_ns,
        "guardband": GUARDBAND,
        "scenarios": payload,
    })


def test_zero_drift_adaptive_is_invisible(report):
    """With no drift and a slack SLO the adaptive run equals the static one."""
    requests = _workload()
    backend, retry = build_backend("nondestructive", SEED)
    read_time, write_time = scheme_service_times("nondestructive")
    config = ControllerConfig(
        read_time=read_time, write_time=write_time, banks=BANKS
    )
    adaptive = simulate_adaptive_service(
        requests, config, backend=backend, retry_policy=retry,
        slo=SLOTarget(1e-3), scheme="nondestructive", offered_rate=RATE,
    )
    backend, retry = build_backend("nondestructive", SEED)
    static = simulate_adaptive_service(
        requests, config, backend=backend, retry_policy=retry,
        adaptive=False, scheme="nondestructive", offered_rate=RATE,
    )
    assert adaptive == static
    assert adaptive.shed == 0 and adaptive.adaptive_actions == 0
    report("zero-drift guard: adaptive report == static report "
           f"(bit-identical over {REQUESTS} requests)")
    _update_bench_json(
        "zero_drift_smoke" if _SMOKE else "zero_drift",
        {"smoke": _SMOKE, "requests": REQUESTS, "bit_identical": True},
    )
