"""Chaos resilience: degraded-mode throughput, crash recovery, campaign.

The resilience layer's claims are quantitative, so they get a benchmark
with hard gates rather than only unit tests:

* **Degraded-mode throughput** — with one of C channels down for the
  whole trace, the sharded serving stack must still deliver at least
  ``(C-1)/C`` of its healthy throughput (within a declared tolerance):
  failover reroutes writes to survivors and fails unreachable reads
  loudly instead of stalling the fleet behind the dead channel.
* **Crash durability** — a mid-trace power loss followed by a journal
  replay must leave every acknowledged write bit-exact with the
  uninterrupted run (:func:`repro.service.journal.run_crash_restart`).
* **Chaos campaign** — every structural scenario (stall, bank-offline,
  sense lockup, channel outage, crash/restart) must conserve requests,
  escape nothing silently, and clear the availability floor
  (:func:`repro.service.failures.run_chaos_campaign`).

``CHAOS_BENCH_SMOKE=1`` (the CI smoke job) shrinks the workloads; the
full run pins the deployment-scale numbers, and both write their
machine-readable sections to ``results/BENCH_chaos.json``.
"""

import json
import os
import pathlib

import numpy as np

from repro.service import (
    Topology,
    build_workload,
    channel_outage,
    run_chaos_campaign,
    run_crash_restart,
    scheme_service_times,
    simulate_topology,
)

SEED = 2010
SCHEME = "nondestructive"
CHANNELS = 4
TOPOLOGY = Topology(channels=CHANNELS, ranks=1, banks=4, rows=64)
RATE = 2.0e8
WRITE_FRACTION = 0.1
#: Throughput floor: one dead channel of C may cost its traffic share
#: plus this tolerance (rerouted writes load the survivors).
OUTAGE_TOLERANCE = 0.10
AVAILABILITY_FLOOR = 0.5

_SMOKE = bool(os.environ.get("CHAOS_BENCH_SMOKE"))
REQUESTS = 300 if _SMOKE else 1200
CAMPAIGN_REQUESTS = 150 if _SMOKE else 400
CAMPAIGN_BITS = 720 if _SMOKE else 2304

BENCH_JSON = pathlib.Path(__file__).parent / "results" / "BENCH_chaos.json"


def _update_bench_json(section, payload):
    """Merge one section into the machine-readable BENCH_chaos.json."""
    BENCH_JSON.parent.mkdir(exist_ok=True)
    data = {}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text())
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _section(name):
    return f"{name}_smoke" if _SMOKE else name


def _workload(addresses, write_fraction=WRITE_FRACTION):
    stream = build_workload(
        rate=RATE, addresses=addresses, write_fraction=write_fraction,
    )
    return stream.generate(REQUESTS, np.random.default_rng((SEED, 0)))


def test_single_channel_outage_throughput(report):
    """One dead channel must not cost more than its traffic share."""
    read_time, write_time = scheme_service_times(SCHEME)
    requests = _workload(TOPOLOGY.capacity)
    span = max(request.time for request in requests)

    def run(failures=None):
        return simulate_topology(
            requests, TOPOLOGY,
            read_time=read_time, write_time=write_time,
            scheme=SCHEME, offered_rate=RATE, seed=SEED,
            failures=failures,
        )

    healthy = run().merged
    # The whole trace, one channel down: the worst structural case the
    # interleaver can see short of losing a second channel.
    outage = channel_outage(0.0, 2.0 * span, channel=0)
    degraded_report = run(failures=outage)
    degraded = degraded_report.merged

    ratio = degraded.throughput / healthy.throughput
    floor = (CHANNELS - 1) / CHANNELS * (1.0 - OUTAGE_TOLERANCE)
    failover = degraded_report.failover

    report(f"Degraded-mode throughput — {TOPOLOGY.describe()} topology, "
           f"{SCHEME} scheme, channel 0 down whole-trace "
           f"({'smoke scale' if _SMOKE else 'full scale'})")
    report(f"  healthy:  {healthy.throughput / 1e6:8.1f} Mreq/s  "
           f"({healthy.completed}/{healthy.requests} served)")
    report(f"  degraded: {degraded.throughput / 1e6:8.1f} Mreq/s  "
           f"({degraded.completed}/{degraded.requests} served, "
           f"availability {degraded.availability:.1%})")
    report(f"  failover: {failover.rerouted_writes} writes rerouted, "
           f"{failover.unreachable_requests} unreachable reads, "
           f"{failover.remapped_words} words remapped")
    report(f"  throughput ratio {ratio:.3f} "
           f"(floor {floor:.3f} = {CHANNELS - 1}/{CHANNELS} channels "
           f"- {OUTAGE_TOLERANCE:.0%} tolerance)")

    _update_bench_json(_section("outage"), {
        "smoke": _SMOKE,
        "requests": REQUESTS,
        "topology": TOPOLOGY.describe(),
        "scheme": SCHEME,
        "offered_rate": RATE,
        "write_fraction": WRITE_FRACTION,
        "healthy_throughput": healthy.throughput,
        "degraded_throughput": degraded.throughput,
        "throughput_ratio": ratio,
        "ratio_floor": floor,
        "degraded_availability": degraded.availability,
        "unreachable_requests": failover.unreachable_requests,
        "rerouted_writes": failover.rerouted_writes,
    })

    assert ratio >= floor
    # Conservation: nothing vanished into the dead channel.
    assert degraded.requests == (
        degraded.completed + degraded.shed + degraded.timed_out
        + degraded.failed_requests
    )
    assert degraded.failed_requests == failover.unreachable_requests


def test_crash_restart_is_bit_exact(report):
    """Journal replay must restore every acknowledged write bit-exactly."""
    stream = build_workload(
        rate=RATE, addresses=CAMPAIGN_BITS // 72, write_fraction=0.35,
    )
    requests = stream.generate(
        CAMPAIGN_REQUESTS, np.random.default_rng((SEED, 0))
    )
    span = max(request.time for request in requests)
    result = run_crash_restart(
        requests, crash_time=0.5 * span, scheme=SCHEME, seed=SEED,
        bits=CAMPAIGN_BITS,
    )
    result.check()

    report(f"Crash/restart durability — {SCHEME} scheme, "
           f"{CAMPAIGN_BITS} bits, crash at 50% of the trace "
           f"({'smoke scale' if _SMOKE else 'full scale'})")
    report(f"  {result.pre_crash_completed} served pre-crash, "
           f"{result.resumed_completed} resumed, "
           f"{result.failed_requests} lost loudly")
    report(f"  journal: {result.journaled_writes} appended, "
           f"{result.acknowledged_writes} acknowledged, "
           f"{result.replayed_writes} replayed, "
           f"{result.lost_writes} lost")
    report(f"  durability: {result.durable_addresses} addresses checked, "
           f"{result.mismatched_addresses} mismatched "
           f"(bit-exact: {result.bit_exact})")

    _update_bench_json(_section("crash"), {
        "smoke": _SMOKE,
        "requests": CAMPAIGN_REQUESTS,
        "bits": CAMPAIGN_BITS,
        "scheme": SCHEME,
        "journaled_writes": result.journaled_writes,
        "acknowledged_writes": result.acknowledged_writes,
        "replayed_writes": result.replayed_writes,
        "lost_writes": result.lost_writes,
        "durable_addresses": result.durable_addresses,
        "mismatched_addresses": result.mismatched_addresses,
        "bit_exact": result.bit_exact,
        "conserved": result.conserved,
    })

    assert result.bit_exact
    assert result.conserved


def test_chaos_campaign_gates(report):
    """Every structural scenario must clear the resilience invariants."""
    result = run_chaos_campaign(
        CAMPAIGN_REQUESTS, scheme=SCHEME, seed=SEED, bits=CAMPAIGN_BITS,
        availability_floor=AVAILABILITY_FLOOR,
    )
    result.check()

    report(f"Chaos campaign — {SCHEME} scheme, {CAMPAIGN_BITS} bits, "
           f"availability floor {AVAILABILITY_FLOOR:.0%} "
           f"({'smoke scale' if _SMOKE else 'full scale'})")
    for row in result.rows:
        report(f"  {row.scenario:<16} {row.completed}/{row.requests} served  "
               f"t/o {row.timed_out}  fail {row.failed_requests}  "
               f"retry {row.retries}  hedge {row.hedged}  "
               f"avail {row.availability:.1%}")

    _update_bench_json(_section("campaign"), {
        "smoke": _SMOKE,
        "requests": CAMPAIGN_REQUESTS,
        **result.to_dict(),
    })

    for row in result.rows:
        assert row.conserved and row.bit_exact
        assert row.corrupted_words == 0
        assert row.availability >= AVAILABILITY_FLOOR
