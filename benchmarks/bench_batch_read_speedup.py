"""Batch read engine: vectorized ``read_many`` vs the per-bit scalar loop.

Times a full behavioural read of the 16kb test chip (paper §V's array)
through the batched kernel and through the sequential per-cell reference
loop, asserting both the advertised speedup and — the part that makes the
speedup safe to use — bit-for-bit equivalence of the two paths under the
same RNG seed.

Timings come from the observability layer rather than bespoke stopwatches:
the scalar loop is ``@profiled("core.batch_from_scalar_reads")`` and the
instrumented batch wrapper records ``core.read_many``, so the reported
table is exactly what ``repro.obs`` collects on any instrumented run (and
the read/error totals come from the same registry's counters).
"""

import numpy as np

from repro import obs
from repro.analysis.report import format_table
from repro.array.testchip import TESTCHIP_VARIATION, TestChip
from repro.core import (
    DestructiveSelfReference,
    NondestructiveSelfReference,
    batch_from_scalar_reads,
)
from repro.device.variation import CellPopulation

#: Speedup floor for the vectorized nondestructive kernel over the scalar
#: loop on the full 16kb chip.
REQUIRED_SPEEDUP = 20.0


def build_chip_population(calibration) -> CellPopulation:
    chip = TestChip()
    return CellPopulation.sample(
        size=chip.bits,
        variation=TESTCHIP_VARIATION,
        params=calibration.params,
        rolloff_high=calibration.rolloff_high(),
        rolloff_low=calibration.rolloff_low(),
        rng=np.random.default_rng(2010),
        r_tr_nominal=chip.targets.r_transistor,
    )


def test_batch_read_speedup(benchmark, calibration, report):
    population = build_chip_population(calibration)
    pattern = np.random.default_rng(2010).integers(0, 2, population.size).astype(np.uint8)
    schemes = {
        "nondestructive": NondestructiveSelfReference(
            beta=calibration.beta_nondestructive
        ),
        "destructive": DestructiveSelfReference(beta=calibration.beta_destructive),
    }

    rows = []
    speedups = {}
    for name, scheme in schemes.items():
        # One scoped capture per scheme: the profile section is keyed by
        # name only, so a fresh registry keeps the schemes' timings apart.
        with obs.capture() as (registry, _tracer):
            scalar_batch = batch_from_scalar_reads(
                scheme, population, pattern.copy(), rng=np.random.default_rng(42)
            )
            if name == "nondestructive":
                vec_batch = benchmark(
                    lambda: scheme.read_many(
                        population, pattern.copy(), rng=np.random.default_rng(42)
                    )
                )
            else:
                vec_batch = scheme.read_many(
                    population, pattern.copy(), rng=np.random.default_rng(42)
                )
            scalar_seconds = registry.profile("core.batch_from_scalar_reads")["min"]
            vec_seconds = registry.profile("core.read_many")["min"]
            # The benchmark fixture reruns the kernel, so normalize errors
            # by the bits the registry actually saw read.
            error_bits = registry.counter("core.reads.error_bits", scheme=scheme.name)
            bits_read = registry.counter("core.reads.bits", scheme=scheme.name)

        # The speedup is only meaningful because the results are identical.
        np.testing.assert_array_equal(scalar_batch.bits, vec_batch.bits)
        np.testing.assert_array_equal(scalar_batch.margins, vec_batch.margins)
        np.testing.assert_array_equal(
            scalar_batch.data_destroyed, vec_batch.data_destroyed
        )

        speedups[name] = scalar_seconds / vec_seconds
        rows.append(
            [
                name,
                f"{population.size}",
                f"{scalar_seconds * 1e3:.0f} ms",
                f"{vec_seconds * 1e3:.2f} ms",
                f"{speedups[name]:.0f}x",
                f"{error_bits / bits_read:.2e}" if bits_read else "n/a",
            ]
        )

    report("Batched behavioural read vs per-bit scalar loop (16kb chip)")
    report(format_table(
        ["scheme", "bits", "per-bit loop", "batched kernel", "speedup", "BER"],
        rows,
    ))
    report()
    report("identical sensed bits, margins, and destroyed-data masks under")
    report("the same seed — the batch engine is a drop-in replacement.")
    report("timings and BER read back from the repro.obs metrics registry.")

    assert speedups["nondestructive"] >= REQUIRED_SPEEDUP
