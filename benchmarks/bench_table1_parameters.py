"""Paper Table I: electrical parameters and optimized operating points of
both self-reference schemes."""

import pytest

from repro.analysis.report import format_table
from repro.analysis.tables import table1_rows
from repro.calibration.table1 import derive_table1


def test_table1_parameters(benchmark, report):
    table = benchmark(derive_table1)

    report("Paper Table I — electrical parameters of MTJ and NMOS transistor")
    report(format_table(["quantity", "reproduced", "paper"], table1_rows(table)))
    report()
    report(f"calibration residual norm: {table.calibration.residual_norm:.3f} "
           "(scaled units; see repro.calibration.fit)")

    # The reproduced operating points must land on the paper's.
    assert table.destructive.beta == pytest.approx(1.22, abs=0.03)
    assert table.destructive.max_sense_margin == pytest.approx(76.6e-3, rel=0.01)
    assert table.nondestructive.beta == pytest.approx(2.13, abs=0.02)
    assert table.nondestructive.max_sense_margin == pytest.approx(12.1e-3, rel=0.01)
