"""Paper Fig. 10: transient simulation of the nondestructive read ("the
whole read operation can complete in about 15ns")."""

import pytest

from repro.analysis.report import render_series
from repro.core.margins import nondestructive_margins
from repro.timing.waveforms import simulate_nondestructive_read


def test_fig10_transient(benchmark, calibration, report):
    def run():
        cell = calibration.cell(917.0)
        cell.write(1)
        return simulate_nondestructive_read(
            cell, beta=calibration.beta_nondestructive
        )

    waveforms = benchmark(run)

    report("Paper Fig. 10 — simulated read transient (stored '1')")
    report(render_series(
        waveforms.times * 1e9,
        {
            "V_BL [mV]": waveforms.v_bl * 1e3,
            "V_C1 [mV]": waveforms.v_c1 * 1e3,
            "V_BO [mV]": waveforms.v_bo * 1e3,
        },
        x_label="t [ns]",
        max_rows=14,
    ))
    report(f"sensed bit: {waveforms.sensed_bit}; "
           f"sense differential {waveforms.sense_differential * 1e3:.2f} mV; "
           f"read completes in {waveforms.total_duration * 1e9:.1f} ns "
           f"(paper: 'about 15ns')")

    # Both stored values must sense correctly, and the differential must
    # match the analytic margin.
    assert waveforms.sensed_bit == 1
    assert waveforms.total_duration < 20e-9
    cell = calibration.cell(917.0)
    analytic = nondestructive_margins(
        cell, 200e-6, calibration.beta_nondestructive, alpha=0.5
    ).sm1
    assert waveforms.sense_differential == pytest.approx(analytic, rel=0.05)

    cell.write(0)
    zero = simulate_nondestructive_read(cell, beta=calibration.beta_nondestructive)
    report(f"stored '0' control run: sensed {zero.sensed_bit}, "
           f"differential {zero.sense_differential * 1e3:.2f} mV")
    assert zero.sensed_bit == 0
