"""Paper Fig. 2: the measured R–I sweep of the MgO MTJ.

Regenerates both static resistance branches and the full hysteresis loop
from the calibrated device, and checks the figure's defining feature: the
high-state roll-off is far steeper than the low-state one.
"""

import numpy as np

from repro.analysis.figures import fig2_ri_curve
from repro.analysis.report import render_series


def test_fig2_ri_curve(benchmark, calibration, report):
    device = calibration.device()
    series = benchmark(fig2_ri_curve, device)

    report("Paper Fig. 2 — R–I characteristics (calibrated device)")
    report(render_series(
        series.currents * 1e6,
        {"R_high [Ω]": series.r_high, "R_low [Ω]": series.r_low},
        x_label="I [µA]",
    ))
    drop_high = series.r_high[0] - series.r_high[-1]
    drop_low = series.r_low[0] - series.r_low[-1]
    report(f"high-state roll-off at I_max: {drop_high:.0f} Ω (paper: 600 Ω)")
    report(f"low-state roll-off at I_max:  {drop_low:.0f} Ω (paper: ~0)")
    report(f"TMR collapse 0→I_max: {series.tmr_collapse:.1%}")
    switch_currents = [
        series.hysteresis.currents[i] for i in series.hysteresis.switch_points
    ]
    report(f"hysteresis switch currents: "
           + ", ".join(f"{c * 1e6:+.0f} µA" for c in switch_currents)
           + " (paper: ~±500 µA)")

    # Shape checks of the reproduction.
    assert drop_high == 600.0
    assert drop_high > 3 * drop_low
    assert np.all(np.diff(series.r_high) < 0)
    assert all(abs(abs(c) - 500e-6) < 100e-6 for c in switch_currents)
