"""Ablation A13: production test flow — trim + repair + SECDED shipping
yield vs process variation.

Composes the paper's test-stage β trim with standard redundancy repair and
ECC screening into the full manufacturing flow, and sweeps variation to
find where the nondestructive scheme's product yield collapses.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.prodtest import TestFlowConfig, yield_curve


def test_ablation_testflow(benchmark, report):
    config = TestFlowConfig(rows=64, columns=64, spare_rows=2, spare_columns=2)
    records = benchmark(
        yield_curve, [1.0, 1.5, 2.0, 2.5, 3.0], 6, config
    )

    report("Ablation A13 — shipping yield of the nondestructive scheme "
           "(trim + 2+2 spares + SECDED, 4k-bit dies)")
    rows = []
    for record in records:
        rows.append(
            [
                f"{record['scale']:.1f}x",
                f"{record['yield']:.0%}",
                f"{record['mean_fails']:.1f}",
                f"{record['mean_spares']:.1f}",
            ]
        )
    report(format_table(
        ["variation", "shipping yield", "fails/die (post-trim)", "spares used/die"],
        rows,
    ))
    report()
    report("The production stack (paper's β trim + redundancy + SECDED)")
    report("holds 100% shipping yield to ~2x the test-chip variation, then")
    report("collapses as multi-fail words overwhelm single-error correction —")
    report("the manufacturing envelope of the nondestructive scheme.")

    yields = [record["yield"] for record in records]
    assert yields[0] == 1.0                   # nominal variation ships clean
    assert yields == sorted(yields, reverse=True)  # monotone decline
    assert yields[-1] < 0.5                   # 3x variation is out of reach
