"""Paper Fig. 6: sense margin vs read-current ratio β for both schemes,
with the valid-β windows."""

import numpy as np
import pytest

from repro.analysis.figures import fig6_beta_sweep
from repro.analysis.report import render_series


def test_fig6_beta_sweep(benchmark, paper_cell, calibration, report):
    series = benchmark(fig6_beta_sweep, paper_cell)

    report("Paper Fig. 6 — sense margin vs β = I_R2/I_R1 (mV)")
    report(render_series(
        series.betas,
        {
            "SM0-Con": series.sm0_destructive,
            "SM1-Con": series.sm1_destructive,
            "SM0-Nondes": series.sm0_nondestructive,
            "SM1-Nondes": series.sm1_nondestructive,
        },
        x_label="β",
        y_scale=1e3,
    ))
    report(f"valid β (destructive):    ({series.window_destructive[0]:.3f}, "
           f"{series.window_destructive[1]:.3f})  [paper: ~1 .. (unreadable)]")
    report(f"valid β (nondestructive): ({series.window_nondestructive[0]:.3f}, "
           f"{series.window_nondestructive[1]:.3f})  [paper min: 2]")
    report(f"crossing (destructive optimum):    β = "
           f"{series.crossing_destructive():.3f}  [paper: 1.22]")
    report(f"crossing (nondestructive optimum): β = "
           f"{series.crossing_nondestructive():.3f}  [paper: 2.13]")

    assert series.crossing_destructive() == pytest.approx(1.22, abs=0.03)
    assert series.crossing_nondestructive() == pytest.approx(2.13, abs=0.02)
    assert series.window_nondestructive[0] == pytest.approx(2.0, abs=0.02)
    # The destructive margins dominate the nondestructive ones at optimum.
    assert np.max(np.minimum(series.sm0_destructive, series.sm1_destructive)) > 4 * np.max(
        np.minimum(series.sm0_nondestructive, series.sm1_nondestructive)
    )
