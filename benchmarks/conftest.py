"""Benchmark-harness fixtures and result reporting.

Every benchmark regenerates one of the paper's tables or figures: the
timed kernel is the computation, and the printed/reported rows are the
same rows or series the paper publishes.  Reports are also written to
``benchmarks/results/<name>.txt`` so they survive pytest's output capture.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.calibration import calibrate, calibrated_cell

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def calibration():
    """The paper-fitted device calibration (cached by the library)."""
    return calibrate()


@pytest.fixture
def paper_cell():
    """A fresh calibrated 1T1J cell."""
    return calibrated_cell()


@pytest.fixture
def report(request):
    """Collect report lines; print them and persist to results/ at teardown."""
    lines: list = []

    def add(text: str = "") -> None:
        lines.append(str(text))

    yield add

    RESULTS_DIR.mkdir(exist_ok=True)
    name = request.node.name.replace("/", "_")
    body = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(body)
    # Also echo to stdout (visible with -s or on failure).
    print("\n" + body)
