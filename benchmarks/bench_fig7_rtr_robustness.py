"""Paper Fig. 7: sense margin vs NMOS-transistor resistance shift ΔR_TR and
the allowable windows (±468 Ω destructive, ±130 Ω nondestructive)."""

import pytest

from repro.analysis.figures import fig7_rtr_sweep
from repro.analysis.report import render_series


def test_fig7_rtr_robustness(benchmark, paper_cell, calibration, report):
    series = benchmark(
        fig7_rtr_sweep,
        paper_cell,
        calibration.beta_destructive,
        calibration.beta_nondestructive,
    )

    report("Paper Fig. 7 — sense margin vs ΔR_TR (mV)")
    report(render_series(
        series.shifts,
        {
            "SM0-Con": series.sm0_destructive,
            "SM1-Con": series.sm1_destructive,
            "SM0-Nondes": series.sm0_nondestructive,
            "SM1-Nondes": series.sm1_nondestructive,
        },
        x_label="ΔR_TR [Ω]",
        y_scale=1e3,
    ))
    report(f"allowable ΔR_TR (destructive):    "
           f"{series.window_destructive[0]:+.0f} .. "
           f"{series.window_destructive[1]:+.0f} Ω  [paper: ±468 Ω]")
    report(f"allowable ΔR_TR (nondestructive): "
           f"{series.window_nondestructive[0]:+.0f} .. "
           f"{series.window_nondestructive[1]:+.0f} Ω  [paper: ±130 Ω]")

    assert series.window_destructive[1] == pytest.approx(468.0, rel=0.05)
    assert series.window_nondestructive[1] == pytest.approx(130.0, rel=0.05)
    # The paper's qualitative finding: the nondestructive window is tighter.
    assert series.window_nondestructive[1] < series.window_destructive[1] / 3
