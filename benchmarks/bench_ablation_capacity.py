"""Ablation A11: capacity-scaling projection.

The paper validates on 16kb.  Project each scheme's Monte-Carlo margin
distribution (Gaussian tail) to product capacities: how large an array can
each scheme serve before the first failing bit is expected?
"""

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.scaling import project_scaling
from repro.array.montecarlo import run_margin_monte_carlo
from repro.array.testchip import TESTCHIP_VARIATION
from repro.array.yield_analysis import analyze_margins
from repro.device.variation import CellPopulation
from repro.units import format_si


def capacity_projection(calibration, bits=32768, seed=17):
    population = CellPopulation.sample(
        bits,
        TESTCHIP_VARIATION,
        params=calibration.params,
        rolloff_high=calibration.rolloff_high(),
        rolloff_low=calibration.rolloff_low(),
        rng=np.random.default_rng(seed),
    )
    report = analyze_margins(
        run_margin_monte_carlo(
            population,
            beta_destructive=calibration.beta_destructive,
            beta_nondestructive=calibration.beta_nondestructive,
            include_sa_offset=False,
        )
    )
    return {
        name: project_scaling(report[name])
        for name in ("conventional", "destructive", "nondestructive")
    }


def _capacity_label(bits: float) -> str:
    if bits >= 2**60:
        return "effectively unbounded"
    if bits >= 2**30:
        return f"{bits / 2**30:.1f} Gb"
    if bits >= 2**20:
        return f"{bits / 2**20:.1f} Mb"
    return f"{bits / 2**10:.1f} kb"


def test_ablation_capacity(benchmark, calibration, report):
    projections = benchmark(capacity_projection, calibration)

    report("Ablation A11 — capacity projection from 32k-bit Monte Carlo "
           "(Gaussian tail, 8 mV window)")
    rows = []
    for name in ("conventional", "destructive", "nondestructive"):
        projection = projections[name]
        rows.append(
            [
                name,
                f"{projection.bit_fail_probability:.2e}",
                f"{projection.expected_fails_per_megabit:.3g}",
                _capacity_label(projection.clean_capacity_bits),
            ]
        )
    report(format_table(
        ["scheme", "P(bit fails)", "fails per Mb", "clean capacity"], rows
    ))
    report()
    report("At the paper's variation level the nondestructive scheme covers")
    report("the 16kb chip with headroom but needs ECC/repair (A8) well before")
    report("gigabit capacities; the destructive scheme's 10x margin carries")
    report("it much further — the non-volatility/latency win has a scaling")
    report("price the paper's §VI 'increase I_max' future work addresses.")

    conventional = projections["conventional"]
    destructive = projections["destructive"]
    nondestructive = projections["nondestructive"]
    assert destructive.clean_capacity_bits > nondestructive.clean_capacity_bits
    assert nondestructive.clean_capacity_bits > conventional.clean_capacity_bits
    assert nondestructive.clean_capacity_bits > 16384  # covers the paper chip
