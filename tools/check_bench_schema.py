#!/usr/bin/env python
"""Stdlib-only schema check for the machine-readable benchmark artifacts.

Every ``benchmarks/results/BENCH_*.json`` file is a map of *sections*
(one per benchmark configuration, e.g. ``scaling`` / ``scaling_smoke``),
and CI jobs assert against individual fields in those sections.  This
checker pins the shared contract so a benchmark refactor cannot silently
ship an artifact the CI asserts no longer reach:

* the file must parse as a non-empty JSON object;
* every section must itself be a JSON object;
* every section must carry the required metadata keys — the workload
  size that produced it, a positive integer.  That key is ``requests``
  for the serving-layer artifacts and ``dies`` for the wafer-scale
  production-test artifact (``BENCH_prodtest.json``); per-file overrides
  live in :data:`REQUIRED_KEYS_BY_FILE`.

Exit status is the number of violations (0 = clean), so CI can run it
directly.  Usage::

    python tools/check_bench_schema.py              # benchmarks/results
    python tools/check_bench_schema.py --results-dir path/to/results
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List

#: Keys every benchmark section must carry (the default contract).
REQUIRED_KEYS = ("requests",)

#: Per-file overrides: artifacts whose sections are sized in something
#: other than requests.  The wafer-scale production-test artifact is
#: sized in dies.
REQUIRED_KEYS_BY_FILE = {
    "BENCH_prodtest.json": ("dies",),
}

#: Required keys checked as positive integers.
_POSITIVE_INT_KEYS = ("requests", "dies")


def check_file(path: pathlib.Path) -> List[str]:
    """Violation messages for one BENCH_*.json file (empty = clean)."""
    violations: List[str] = []
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path.name}: unreadable ({error})"]
    if not isinstance(data, dict) or not data:
        return [f"{path.name}: expected a non-empty JSON object of sections"]
    required = REQUIRED_KEYS_BY_FILE.get(path.name, REQUIRED_KEYS)
    for section, payload in data.items():
        if not isinstance(payload, dict):
            violations.append(
                f"{path.name}: section {section!r} is not an object"
            )
            continue
        for key in required:
            if key not in payload:
                violations.append(
                    f"{path.name}: section {section!r} is missing "
                    f"required key {key!r}"
                )
            elif key in _POSITIVE_INT_KEYS and not (
                isinstance(payload[key], int)
                and not isinstance(payload[key], bool)
                and payload[key] > 0
            ):
                violations.append(
                    f"{path.name}: section {section!r} has non-positive "
                    f"or non-integer {key}={payload[key]!r}"
                )
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        default=pathlib.Path(__file__).parent.parent
        / "benchmarks" / "results",
        type=pathlib.Path,
        help="directory holding BENCH_*.json (default benchmarks/results)",
    )
    args = parser.parse_args(argv)
    files = sorted(args.results_dir.glob("BENCH_*.json"))
    if not files:
        print(f"no BENCH_*.json files under {args.results_dir}")
        return 1
    violations: List[str] = []
    for path in files:
        violations.extend(check_file(path))
    for message in violations:
        print(f"SCHEMA: {message}")
    print(
        f"checked {len(files)} artifact file(s): "
        f"{len(violations)} violation(s)"
    )
    return len(violations)


if __name__ == "__main__":
    sys.exit(main())
