#!/usr/bin/env python
"""Stdlib-only markdown link checker for the repo's documentation.

Checks every ``[text](target)`` link in the given markdown files:

* **relative file links** must point at an existing file or directory
  (resolved against the linking file's directory, ``#fragment`` stripped);
* **intra-document anchors** (``#section-title``) must match a heading in
  the target file, using GitHub's slug rules (lowercase, punctuation
  stripped, spaces to dashes);
* **external links** (``http://``, ``https://``, ``mailto:``) are *not*
  fetched — CI must stay hermetic — only syntactically noted.

Exit status is the number of broken links (0 = clean), so CI can run it
directly.  Usage::

    python tools/check_markdown_links.py README.md docs/*.md
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import List, Tuple

# [text](target) — ignores images' leading "!" (same target rules apply).
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading: lowercase, punctuation dropped,
    spaces and runs of dashes collapsed to single dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return re.sub(r" ", "-", text)


def heading_slugs(path: pathlib.Path) -> List[str]:
    """All anchor slugs a markdown file exposes (duplicates get -1, -2...)."""
    body = _CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    slugs: List[str] = []
    seen: dict = {}
    for match in _HEADING_RE.finditer(body):
        slug = github_slug(match.group(1))
        if slug in seen:
            seen[slug] += 1
            slugs.append(f"{slug}-{seen[slug]}")
        else:
            seen[slug] = 0
            slugs.append(slug)
    return slugs


def check_file(path: pathlib.Path, root: pathlib.Path) -> List[Tuple[str, str]]:
    """Broken links of one file as (target, reason) pairs."""
    body = _CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    problems: List[Tuple[str, str]] = []
    for match in _LINK_RE.finditer(body):
        target = match.group(1)
        if target.startswith(_EXTERNAL_PREFIXES):
            continue  # external: not fetched (hermetic CI)
        if target.startswith("#"):
            if github_slug(target[1:]) not in heading_slugs(path):
                problems.append((target, "no matching heading in this file"))
            continue
        file_part, _, fragment = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        try:
            resolved.relative_to(root)
        except ValueError:
            problems.append((target, "points outside the repository"))
            continue
        if not resolved.exists():
            problems.append((target, "file does not exist"))
            continue
        if fragment and resolved.is_file() and resolved.suffix == ".md":
            if github_slug(fragment) not in heading_slugs(resolved):
                problems.append(
                    (target, f"no heading '#{fragment}' in {file_part}")
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="markdown files to check")
    parser.add_argument(
        "--root", default=".", help="repository root (default: cwd)"
    )
    args = parser.parse_args(argv)
    root = pathlib.Path(args.root).resolve()

    broken = 0
    for name in args.files:
        path = pathlib.Path(name)
        if not path.exists():
            print(f"{name}: file not found", file=sys.stderr)
            broken += 1
            continue
        for target, reason in check_file(path, root):
            print(f"{name}: broken link '{target}' — {reason}", file=sys.stderr)
            broken += 1
    if broken == 0:
        print(f"checked {len(args.files)} file(s): all links OK")
    return broken


if __name__ == "__main__":
    sys.exit(main())
