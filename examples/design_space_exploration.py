"""Design-space exploration for the nondestructive scheme.

Sweeps the two design knobs the paper discusses —

* the divider ratio α (the paper picks 0.5 for symmetry), and
* the maximum read current I_max (the paper's future-work lever:
  "The sense margin and the robustness ... can be improved by increasing
  the maximum allowable read current")

— and reports the optimal β, the max sense margin and the robustness
windows at each point.

Run:  python examples/design_space_exploration.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.calibration import calibrate, calibrated_cell
from repro.core.optimize import optimize_beta_nondestructive
from repro.core.robustness import alpha_deviation_window, rtr_shift_window_nondestructive
from repro.device.mtj import MTJDevice
from repro.device.switching import SwitchingModel
from repro.core.cell import Cell1T1J
from repro.units import format_si


def sweep_alpha() -> None:
    print("=== α sweep at I_max = 200 µA (ablation A3) ===\n")
    cell = calibrated_cell()
    rows = []
    for alpha in (0.35, 0.40, 0.45, 0.50, 0.55, 0.60):
        opt = optimize_beta_nondestructive(cell, 200e-6, alpha=alpha)
        rtr = rtr_shift_window_nondestructive(cell, 200e-6, opt.beta, alpha)
        dalpha = alpha_deviation_window(cell, 200e-6, opt.beta, alpha)
        rows.append(
            [
                f"{alpha:.2f}",
                f"{opt.beta:.3f}",
                format_si(opt.max_sense_margin, "V"),
                f"±{rtr[1]:.0f} Ω",
                f"{dalpha[0]:+.2%}/{dalpha[1]:+.2%}",
            ]
        )
    print(format_table(["α", "optimal β", "max margin", "ΔR_TR window", "Δα window"], rows))
    print("\nThe margin is nearly α-independent (β compensates), which is why")
    print("the paper freely picks the symmetric, variation-tolerant α = 0.5.\n")


def sweep_imax() -> None:
    print("=== I_max sweep (paper's future-work lever, ablation A1) ===\n")
    calibration = calibrate()
    params = calibration.params
    switching = SwitchingModel(params)
    rows = []
    for i_max in np.array([100e-6, 150e-6, 200e-6, 250e-6, 300e-6]):
        # The roll-off anchors move with I_max: re-anchor the device so that
        # the same physical curve is exercised further (or less far) up.
        scale = i_max / params.i_read_max
        resized = params.replace(
            i_read_max=float(i_max),
            dr_high_max=min(params.dr_high_max * scale, 0.95 * params.r_high),
            dr_low_max=min(params.dr_low_max * scale, 0.95 * params.r_low),
        )
        cell = Cell1T1J(
            MTJDevice(resized, calibration.rolloff_high(), calibration.rolloff_low()),
        )
        opt = optimize_beta_nondestructive(cell, float(i_max), alpha=0.5)
        rtr = rtr_shift_window_nondestructive(cell, float(i_max), opt.beta, 0.5)
        disturb = switching.read_disturb_probability(float(i_max), 15e-9)
        rows.append(
            [
                format_si(float(i_max), "A"),
                f"{i_max / params.i_c0:.0%}",
                f"{opt.beta:.3f}",
                format_si(opt.max_sense_margin, "V"),
                f"±{rtr[1]:.0f} Ω",
                f"{disturb:.1e}",
            ]
        )
    print(
        format_table(
            ["I_max", "of I_c", "optimal β", "max margin", "ΔR_TR window", "P(disturb)"],
            rows,
        )
    )
    print("\nLarger I_max widens both the margin and the robustness windows —")
    print("at the cost of approaching the switching current (read disturb).")


def main() -> None:
    sweep_alpha()
    sweep_imax()


if __name__ == "__main__":
    main()
