"""16kb test-chip yield analysis (paper Fig. 11).

Monte-Carlo simulate the paper's test chip, report per-scheme fail rates at
the 8 mV sense window, and show how yield degrades as process variation
scales up.

Run:  python examples/yield_analysis.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.array.testchip import TESTCHIP_VARIATION, TestChip, run_testchip_experiment
from repro.units import format_si


def margin_histogram(values, bins=8, width=40) -> str:
    """A small ASCII histogram of binding margins."""
    counts, edges = np.histogram(values * 1e3, bins=bins)
    peak = counts.max() if counts.max() else 1
    lines = []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"  {lo:8.1f}..{hi:8.1f} mV | {bar} {count}")
    return "\n".join(lines)


def main() -> None:
    print("=== Paper Fig. 11: 16kb test chip, 8 mV sense-amp window ===\n")
    result = run_testchip_experiment()

    rows = []
    for name in ("conventional", "destructive", "nondestructive"):
        stats = result.report[name]
        rows.append(
            [
                name,
                f"{stats.fail_count}",
                f"{stats.fail_fraction:.2%}",
                format_si(stats.mean_margin, "V"),
                format_si(stats.min_margin, "V"),
            ]
        )
    print(format_table(
        ["scheme", "fail bits", "fail rate", "mean margin", "worst margin"], rows
    ))
    print()
    print(f"Paper's measurement: ~1% conventional fails, both self-reference")
    print(f"schemes read all bits.  Reproduced: "
          f"{result.conventional_fail_fraction:.2%} conventional fails, "
          f"self-reference all-pass = {result.self_reference_all_pass}.")

    print("\nBinding-margin distribution, nondestructive scheme:")
    print(margin_histogram(result.margins["nondestructive"].min_margin))

    print("\n=== Yield vs variation scaling (ablation A6) ===\n")
    rows = []
    for scale in (0.5, 1.0, 1.5, 2.0, 3.0):
        chip = TestChip(
            rows=64, columns=64, variation=TESTCHIP_VARIATION.scaled(scale)
        )
        scaled = run_testchip_experiment(chip, rng=np.random.default_rng(11))
        rows.append(
            [
                f"{scale:.1f}x",
                f"{scaled.report['conventional'].fail_fraction:.2%}",
                f"{scaled.report['destructive'].fail_fraction:.2%}",
                f"{scaled.report['nondestructive'].fail_fraction:.2%}",
            ]
        )
    print(format_table(
        ["variation", "conventional", "destructive", "nondestructive"], rows
    ))
    print("\nSelf-referencing postpones yield collapse by cancelling the")
    print("shared-reference error and the bit-to-bit resistance offset.")


if __name__ == "__main__":
    main()
