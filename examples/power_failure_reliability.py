"""Non-volatility under power failure: destructive vs nondestructive reads.

The paper's core reliability argument: the destructive scheme's erase /
write-back window means a supply loss mid-read destroys the stored bit.
This example (1) quantifies the loss rate analytically and (2) actually
injects power failures into behavioural reads of an array and counts the
corrupted words.

Run:  python examples/power_failure_reliability.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.array.array import STTRAMArray
from repro.calibration import calibrate, calibrated_cell
from repro.core.destructive import DestructiveSelfReference
from repro.core.nondestructive import NondestructiveSelfReference
from repro.device.variation import CellPopulation, VariationModel
from repro.timing.latency import destructive_read_latency, nondestructive_read_latency
from repro.timing.reliability import (
    PowerFailureModel,
    data_loss_probability_per_read,
    expected_data_loss_rate,
    vulnerability_window,
)
from repro.units import format_si


def analytic() -> None:
    print("=== Analytic loss model (ablation A4) ===\n")
    cell = calibrated_cell()
    calibration = calibrate()
    destructive = destructive_read_latency(cell, beta=calibration.beta_destructive)
    nondestructive = nondestructive_read_latency(
        cell, beta=calibration.beta_nondestructive
    )
    print(f"vulnerability window: destructive "
          f"{format_si(vulnerability_window(destructive), 's')}, "
          f"nondestructive {format_si(vulnerability_window(nondestructive), 's')}\n")

    rows = []
    for rate_per_day in (0.1, 1.0, 10.0):
        model = PowerFailureModel(failure_rate=rate_per_day / 86400.0)
        reads_per_second = 1e8  # a busy 100 M reads/s memory controller
        rows.append(
            [
                f"{rate_per_day:g}/day",
                f"{data_loss_probability_per_read(destructive, model):.2e}",
                f"{expected_data_loss_rate(destructive, model, reads_per_second) * 86400 * 365:.2f}",
                f"{data_loss_probability_per_read(nondestructive, model):.0e}",
            ]
        )
    print(format_table(
        [
            "failure rate",
            "P(loss)/read destr.",
            "losses/year destr. @100M reads/s",
            "P(loss)/read nondestr.",
        ],
        rows,
    ))
    print()


def injected() -> None:
    print("=== Injected power failures on a live array ===\n")
    rng = np.random.default_rng(7)
    population = CellPopulation.sample(256, VariationModel(), rng=rng)
    calibration = calibrate()

    corrupted = {"destructive": 0, "nondestructive": 0}
    trials = 200
    for trial in range(trials):
        array = STTRAMArray(population, word_width=8)
        address = trial % array.size_words
        value = int(rng.integers(0, 256))
        array.write_word(address, value)

        # Destructive read interrupted right after the erase pulse — the
        # batch kernel injects the failure into the whole word at once.
        destructive = DestructiveSelfReference(beta=calibration.beta_destructive)
        base = address * 8
        array.read_bits(
            range(base, base + 8), destructive, rng, power_failure_at="after_erase"
        )
        stored = array.stored_bits()
        restored = sum(int(stored[base + offset]) << offset for offset in range(8))
        if restored != value:
            corrupted["destructive"] += 1

        # Nondestructive read "interrupted" at any point: nothing to lose.
        array.write_word(address, value)
        nondes = NondestructiveSelfReference(beta=calibration.beta_nondestructive)
        array.read_word(address, nondes, rng)
        stored = array.stored_bits()
        survived = sum(int(stored[base + offset]) << offset for offset in range(8))
        if survived != value:
            corrupted["nondestructive"] += 1

    print(format_table(
        ["scheme", "corrupted words", "trials"],
        [
            ["destructive (fail after erase)", str(corrupted["destructive"]), str(trials)],
            ["nondestructive (fail anywhere)", str(corrupted["nondestructive"]), str(trials)],
        ],
    ))
    print("\nEvery destructive read interrupted after the erase loses any")
    print("word containing a '1'; the nondestructive scheme cannot lose data")
    print("because it never writes.")


def main() -> None:
    analytic()
    injected()


if __name__ == "__main__":
    main()
