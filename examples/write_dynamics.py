"""Write-pulse dynamics: from macrospin LLG trajectories to the rate model.

The destructive scheme's erase/write-back pulses are real magnetization-
switching events.  This example integrates the Landau–Lifshitz–Gilbert
equation for the free-layer macrospin, shows switching trajectories at
several overdrives, extracts the switching-time-vs-current curve, and
compares it with the Sun-model scaling the rate-based
:class:`~repro.device.switching.SwitchingModel` assumes.

Run:  python examples/write_dynamics.py
"""

import math

import numpy as np

from repro.analysis.report import format_table, render_series
from repro.calibration import calibrate
from repro.device.llg import MacrospinLLG
from repro.device.switching import SwitchingModel


def trajectories() -> None:
    print("=== LLG magnetization trajectories (m_z vs time) ===\n")
    llg = MacrospinLLG()
    series = {}
    reference_times = None
    for overdrive in (0.8, 1.3, 2.0):
        trajectory = llg.integrate(overdrive, duration=15e-9)
        series[f"I={overdrive:.1f}·Ic"] = trajectory.mz
        reference_times = trajectory.times
    print(render_series(
        reference_times * 1e9, series, x_label="t [ns]", max_rows=12
    ))
    print("\nBelow I_c the spin precesses and relaxes back (no switch);")
    print("above it the spin spirals over the equator and reverses.\n")


def switching_curve() -> None:
    print("=== Switching time vs overdrive: LLG vs rate model ===\n")
    llg = MacrospinLLG()
    calibration = calibrate()
    rate_model = SwitchingModel(calibration.params)
    rows = []
    for overdrive in (1.2, 1.5, 2.0, 3.0):
        t_llg = llg.switching_time(overdrive, max_duration=80e-9)
        current = overdrive * calibration.params.i_c0
        # Rate model: pulse width at which switching probability hits 50%.
        lo, hi = 0.1e-9, 200e-9
        for _ in range(48):
            mid = math.sqrt(lo * hi)
            if rate_model.switch_probability(current, mid) < 0.5:
                lo = mid
            else:
                hi = mid
        rows.append(
            [
                f"{overdrive:.1f}x",
                f"{t_llg * 1e9:6.2f} ns",
                f"{(overdrive - 1.0) * t_llg * 1e9:5.2f}",
                f"{hi * 1e9:6.3f} ns",
            ]
        )
    print(format_table(
        ["overdrive", "t_sw (LLG)", "(I/Ic-1)·t_sw", "t_50% (rate model)"],
        rows,
    ))
    print("\nThe LLG switching time follows the Sun scaling")
    print("t_sw ∝ 1/(I/I_c − 1) — the product column is nearly constant —")
    print("which is the regime the rate model's precessional branch encodes")
    print("(the rate model is calibrated to pulse success probability, so")
    print("its 50% threshold sits earlier than the full LLG reversal; both")
    print("agree that sub-critical pulses never switch).  The paper's 4 ns")
    print("write pulse therefore needs the ~1.5-2x overdrive the destructive")
    print("scheme's driver provides.")


def main() -> None:
    trajectories()
    switching_curve()


if __name__ == "__main__":
    main()
