"""From tunnel-junction physics to the paper's scheme — no curve fitting.

The calibrated device in `repro.calibration` is fitted to the paper's
published numbers.  This example rebuilds everything from first principles
instead:

1. the quadratic-conductance bias model ``G_AP(V) = G0 (1 + (V/V_h)^2)``
   gives the high state's resistance roll-off (``repro.device.bias``);
2. a Newton nonlinear-MNA solve of the 1T1J cell confirms the roll-off
   self-consistently in-circuit (``repro.circuit.nonlinear``);
3. the nondestructive scheme optimized on this physical device lands in
   the paper's (β ≈ 2.1, ~12 mV) neighbourhood — the contribution follows
   from the physics, not from the fit.

Run:  python examples/first_principles_device.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.circuit.nonlinear import NonlinearCircuit, mtj_branch_current
from repro.core.cell import Cell1T1J
from repro.core.nondestructive import NondestructiveSelfReference
from repro.core.optimize import optimize_beta_nondestructive
from repro.device.bias import BiasDrivenRollOff
from repro.device.mtj import MTJDevice, MTJParams, MTJState
from repro.device.transistor import FixedResistanceTransistor


def build_physical_cell():
    """1T1J cell whose roll-offs come from the bias model, not a fit."""
    antiparallel = BiasDrivenRollOff.for_antiparallel(r_high=2500.0, v_half=0.70)
    parallel = BiasDrivenRollOff.for_parallel(r_low=1220.0, v_half=2.5)
    params = MTJParams(
        dr_high_max=antiparallel.delta_r_max(),
        dr_low_max=parallel.delta_r_max(),
    )
    device = MTJDevice(params, rolloff_high=antiparallel, rolloff_low=parallel)
    return Cell1T1J(device, FixedResistanceTransistor(917.0))


def nonlinear_circuit_check(cell) -> None:
    print("=== Self-consistent circuit solve (Newton MNA) ===\n")
    rows = []
    for current in (50e-6, 100e-6, 200e-6):
        circuit = NonlinearCircuit()
        circuit.add_current_source("gnd", "BL", current)
        circuit.add_nonlinear_resistor(
            "BL", "SL", mtj_branch_current(2500.0, 0.70), name="MTJ_AP"
        )
        circuit.add_resistor("SL", "gnd", 917.0, name="NMOS")
        result = circuit.solve_dc()
        v_mtj = result["BL"] - result["SL"]
        r_circuit = v_mtj / current
        r_model = cell.mtj.resistance(current, MTJState.ANTIPARALLEL)
        rows.append(
            [
                f"{current * 1e6:.0f} µA",
                f"{r_circuit:7.1f} Ω",
                f"{r_model:7.1f} Ω",
                f"{abs(r_circuit - r_model) / r_model:.2%}",
            ]
        )
    print(format_table(
        ["read current", "R_AP (circuit)", "R_AP (device model)", "mismatch"], rows
    ))
    print()


def main() -> None:
    cell = build_physical_cell()
    params = cell.mtj.params

    print("=== Physical device (no calibration) ===\n")
    print(f"high-state roll-off at 200 µA: {params.dr_high_max:.0f} Ω "
          f"(paper anchor: 600 Ω)")
    print(f"low-state roll-off at 200 µA:  {params.dr_low_max:.0f} Ω "
          f"(paper: 'close to zero')\n")

    nonlinear_circuit_check(cell)

    print("=== Nondestructive scheme on the physical device ===\n")
    optimum = optimize_beta_nondestructive(cell, 200e-6, alpha=0.5)
    print(f"optimal β = {optimum.beta:.3f}   (paper: 2.13)")
    print(f"max sense margin = {optimum.max_sense_margin * 1e3:.2f} mV "
          f"(paper: 12.1 mV)\n")

    scheme = NondestructiveSelfReference(beta=optimum.beta)
    rng = np.random.default_rng(0)
    for bit in (0, 1):
        cell.write(bit)
        result = scheme.read(cell, rng)
        print(f"stored {bit} -> read {result.bit} "
              f"(margin {result.margin * 1e3:+.2f} mV, "
              f"write pulses: {result.write_pulses})")

    print("\nThe paper's operating point emerges directly from the")
    print("quadratic-conductance tunnel physics.")


if __name__ == "__main__":
    main()
