"""Transient view of one nondestructive read (paper Figs. 9–10).

Prints the control-signal intervals (Fig. 9), a down-sampled table of the
analog waveforms (Fig. 10), and the latency/energy comparison against the
destructive scheme.

Run:  python examples/read_timing_waveforms.py
"""

from repro.analysis.report import format_table, render_series
from repro.calibration import calibrate, calibrated_cell
from repro.timing.energy import read_energy_comparison
from repro.timing.latency import latency_comparison
from repro.timing.waveforms import simulate_nondestructive_read
from repro.units import format_si


def main() -> None:
    calibration = calibrate()
    cell = calibrated_cell()
    cell.write(1)

    waveforms = simulate_nondestructive_read(
        cell, beta=calibration.beta_nondestructive
    )

    print("=== Fig. 9: control-signal timing ===\n")
    rows = []
    for signal in ("WL", "SLT1", "SLT2", "SenEn", "Data_latch"):
        intervals = waveforms.schedule.signal_intervals(signal)
        pretty = ", ".join(
            f"{start * 1e9:.1f}–{end * 1e9:.1f} ns" for start, end in intervals
        )
        rows.append([signal, pretty or "(never asserted)"])
    print(format_table(["signal", "asserted"], rows))

    print("\n=== Fig. 10: analog waveforms (stored '1') ===\n")
    print(render_series(
        waveforms.times * 1e9,
        {
            "V_BL [mV]": waveforms.v_bl * 1e3,
            "V_C1 [mV]": waveforms.v_c1 * 1e3,
            "V_BO [mV]": waveforms.v_bo * 1e3,
        },
        x_label="t [ns]",
        max_rows=14,
    ))
    print(f"\nsensed bit: {waveforms.sensed_bit}  "
          f"(differential {format_si(waveforms.sense_differential, 'V')}); "
          f"read completes in {waveforms.total_duration * 1e9:.1f} ns "
          f"(paper: 'about 15ns')")

    print("\n=== §V comparison: latency and energy per read ===\n")
    destructive, nondestructive, speedup = latency_comparison(
        cell,
        beta_destructive=calibration.beta_destructive,
        beta_nondestructive=calibration.beta_nondestructive,
    )
    e_dest, e_nondes, e_ratio = read_energy_comparison(
        cell,
        beta_destructive=calibration.beta_destructive,
        beta_nondestructive=calibration.beta_nondestructive,
    )
    rows = [
        [
            "destructive self-reference",
            f"{destructive.total * 1e9:.1f} ns",
            format_si(e_dest.total, "J"),
            format_si(e_dest.write_energy, "J"),
        ],
        [
            "nondestructive self-reference",
            f"{nondestructive.total * 1e9:.1f} ns",
            format_si(e_nondes.total, "J"),
            "0 J",
        ],
    ]
    print(format_table(["scheme", "latency", "energy/read", "of which writes"], rows))
    print(f"\nspeedup {speedup:.2f}x, energy ratio {e_ratio:.1f}x — both from")
    print("eliminating the erase and write-back pulses.")


if __name__ == "__main__":
    main()
