"""Production view: shipping yield and memory-controller capacity.

Two array-level consequences of adopting the nondestructive scheme:

1. the manufacturing test flow (the paper's β trim + spare repair + SECDED
   screen) and its shipping yield as process variation scales;
2. the request-rate capacity of a 4-bank macro under Poisson read traffic,
   where the scheme's latency advantage over the destructive prior art
   compounds through queueing.

Run:  python examples/production_yield.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.array.scheduler import simulate_read_queue
from repro.array.testflow import TestFlowConfig, yield_curve
from repro.calibration import calibrate, calibrated_cell
from repro.timing.latency import latency_comparison


def shipping_yield() -> None:
    print("=== Shipping yield: trim + 2+2 spares + SECDED (4k-bit dies) ===\n")
    records = yield_curve(
        [1.0, 1.5, 2.0, 2.5],
        dies_per_point=6,
        config=TestFlowConfig(rows=64, columns=64),
    )
    rows = [
        [
            f"{r['scale']:.1f}x",
            f"{r['yield']:.0%}",
            f"{r['mean_fails']:.1f}",
            f"{r['mean_spares']:.1f}",
        ]
        for r in records
    ]
    print(format_table(
        ["variation", "yield", "fails/die", "spares/die"], rows
    ))
    print()


def controller_capacity() -> None:
    print("=== Memory-controller capacity (4 banks, Poisson reads) ===\n")
    calibration = calibrate()
    destructive, nondestructive, _ = latency_comparison(
        calibrated_cell(),
        beta_destructive=calibration.beta_destructive,
        beta_nondestructive=calibration.beta_nondestructive,
    )
    rows = []
    for rate in (0.5e8, 1.0e8, 2.0e8):
        row = [f"{rate / 1e6:.0f} Mreq/s"]
        for breakdown in (destructive, nondestructive):
            offered = rate * breakdown.total / 4
            if offered >= 0.95:
                row.append("SATURATED")
            else:
                result = simulate_read_queue(
                    breakdown.total, rate, banks=4, requests=4096,
                    rng=np.random.default_rng(5),
                )
                row.append(f"{result.mean_latency * 1e9:.1f} ns")
        rows.append(row)
    print(format_table(
        ["request rate", "destructive mean latency", "nondestructive mean latency"],
        rows,
    ))
    print("\nEliminating the write pulses keeps the banks free: the same")
    print("macro serves >2x the request rate before saturating.")


def main() -> None:
    shipping_yield()
    controller_capacity()


if __name__ == "__main__":
    main()
