"""Quickstart: read one STT-RAM cell with all three sensing schemes.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ConventionalSensing,
    DestructiveSelfReference,
    NondestructiveSelfReference,
    calibrate,
    calibrated_cell,
)
from repro.units import format_si


def main() -> None:
    rng = np.random.default_rng(0)
    calibration = calibrate()
    print("Calibrated device (paper Table I):")
    print(f"  R_L = {format_si(calibration.params.r_low, 'Ω')},"
          f" R_H = {format_si(calibration.params.r_high, 'Ω')},"
          f" TMR = {calibration.params.tmr:.0%}")
    print(f"  optimal β: destructive {calibration.beta_destructive:.3f},"
          f" nondestructive {calibration.beta_nondestructive:.3f}")
    print()

    schemes = [
        ConventionalSensing(nominal_cell=calibrated_cell()),
        DestructiveSelfReference(beta=calibration.beta_destructive),
        NondestructiveSelfReference(beta=calibration.beta_nondestructive),
    ]

    for scheme in schemes:
        print(f"--- {scheme.name} ---")
        for bit in (0, 1):
            cell = calibrated_cell()
            cell.write(bit)
            result = scheme.read(cell, rng)
            margins = scheme.sense_margins(cell)
            status = "OK " if result.correct else "FAIL"
            print(
                f"  stored {bit} -> read {result.bit} [{status}]  "
                f"margin {format_si(result.margin, 'V')}  "
                f"(SM0 {format_si(margins.sm0, 'V')}, "
                f"SM1 {format_si(margins.sm1, 'V')})  "
                f"writes: {result.write_pulses}, "
                f"cell intact: {not result.data_destroyed}"
            )
        print()

    print("Key takeaway: the nondestructive scheme reads correctly with")
    print("ZERO write pulses — the stored value never leaves the cell.")


if __name__ == "__main__":
    main()
