"""A miniature "memory controller" scenario: SECDED-protected STT-RAM.

Composes the full stack the library provides: a variation-affected cell
array, the nondestructive sensing scheme, the (72, 64) SECDED layer with
scrubbing, and an injected stuck-bit fault — demonstrating how the paper's
scheme and ECC cooperate in a deployable memory.

Run:  python examples/memory_controller.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.array.array import STTRAMArray
from repro.calibration import calibrate
from repro.core.nondestructive import NondestructiveSelfReference
from repro.device.variation import CellPopulation, VariationModel
from repro.ecc.array import EccArray
from repro.ecc.hamming import DecodeStatus


def main() -> None:
    rng = np.random.default_rng(12)
    calibration = calibrate()

    # A 64-word (4608-cell) array with realistic variation.
    population = CellPopulation.sample(
        64 * 72,
        VariationModel(sigma_alpha_frac=0.001, sigma_beta_frac=0.001),
        params=calibration.params,
        rolloff_high=calibration.rolloff_high(),
        rolloff_low=calibration.rolloff_low(),
        rng=rng,
    )
    memory = EccArray(STTRAMArray(population), data_bits=64)
    scheme = NondestructiveSelfReference(beta=calibration.beta_nondestructive)

    print(f"memory: {memory.size_words} words x 64 bits "
          f"({memory.codec.codeword_bits}-cell SECDED codewords, "
          f"{memory.codec.overhead:.0%} overhead)\n")

    # Store a message.
    message = b"Nondestructive self-reference STT-RAM sensing (DATE 2010) reproduced."
    padded = message + b"\x00" * (-len(message) % 8)
    words = [
        int.from_bytes(padded[i:i + 8], "little") for i in range(0, len(padded), 8)
    ]
    for address, word in enumerate(words):
        memory.write_word(address, word)
    print(f"stored {len(words)} words ({len(message)} bytes)")

    # Sabotage: a cosmic-ray / stuck-bit fault in word 3.
    fault_word, fault_cell = 3, 17
    memory.array._states[fault_word * 72 + fault_cell] ^= 1
    print(f"injected a stuck-bit fault: word {fault_word}, cell {fault_cell}\n")

    # Read everything back through the nondestructive scheme.
    recovered = bytearray()
    rows = []
    for address in range(len(words)):
        result = memory.read_word(address, scheme, rng)
        recovered += int(result.value).to_bytes(8, "little")
        if result.status is not DecodeStatus.CLEAN:
            rows.append(
                [str(address), result.status.value, str(result.corrected_position)]
            )
    print(format_table(["word", "decode status", "corrected cell"], rows or [["-", "all clean", "-"]]))
    text = recovered[: len(message)].decode()
    print(f"\nrecovered message: {text!r}")
    assert text == message.decode()

    # Scrub pass rewrites the corrected word so the fault does not pair up
    # with a second error later.
    report = memory.scrub(scheme, rng)
    print(f"scrub pass applied {report.corrected} correction(s) "
          f"({report.uncorrectable} uncorrectable)")
    stats = memory.statistics
    print(f"lifetime decode stats: "
          f"clean={stats[DecodeStatus.CLEAN]}, "
          f"corrected={stats[DecodeStatus.CORRECTED]}, "
          f"uncorrectable={stats[DecodeStatus.DETECTED]}")
    print("\nEvery read used zero write pulses; the stored data was touched")
    print("only by the explicit scrub rewrite.")


if __name__ == "__main__":
    main()
