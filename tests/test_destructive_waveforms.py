"""Destructive-read transient simulation tests."""

import numpy as np
import pytest

from repro.core.margins import destructive_margins
from repro.errors import ConfigurationError
from repro.timing.destructive_waveforms import simulate_destructive_read


@pytest.fixture(scope="module")
def calibration_module():
    from repro.calibration import calibrate

    return calibrate()


@pytest.fixture(scope="module")
def waveforms_one(calibration_module):
    cell = calibration_module.cell(917.0)
    cell.write(1)
    return simulate_destructive_read(cell, beta=calibration_module.beta_destructive)


class TestSensing:
    def test_senses_one(self, waveforms_one):
        assert waveforms_one.sensed_bit == 1
        assert waveforms_one.sense_differential > 0

    def test_senses_zero(self, calibration_module):
        cell = calibration_module.cell(917.0)
        cell.write(0)
        waveforms = simulate_destructive_read(
            cell, beta=calibration_module.beta_destructive
        )
        assert waveforms.sensed_bit == 0
        assert waveforms.sense_differential < 0

    def test_differential_matches_analytic_margin(
        self, waveforms_one, calibration_module
    ):
        cell = calibration_module.cell(917.0)
        analytic = destructive_margins(
            cell, 200e-6, calibration_module.beta_destructive
        ).sm1
        assert waveforms_one.sense_differential == pytest.approx(analytic, rel=0.05)

    def test_caller_cell_not_mutated(self, calibration_module):
        cell = calibration_module.cell(917.0)
        cell.write(1)
        simulate_destructive_read(cell, beta=calibration_module.beta_destructive)
        assert cell.stored_bit == 1


class TestWaveformStructure:
    def test_slower_than_nondestructive(self, waveforms_one, calibration_module):
        from repro.timing.waveforms import simulate_nondestructive_read

        cell = calibration_module.cell(917.0)
        cell.write(1)
        nondes = simulate_nondestructive_read(
            cell, beta=calibration_module.beta_nondestructive
        )
        assert waveforms_one.total_duration > 1.5 * nondes.total_duration

    def test_c1_sampled_during_first_read(self, waveforms_one, calibration_module):
        cell = calibration_module.cell(917.0)
        beta = calibration_module.beta_destructive
        i1 = 200e-6 / beta
        from repro.device.mtj import MTJState

        expected = i1 * cell.series_resistance(i1, MTJState.ANTIPARALLEL)
        schedule = waveforms_one.schedule
        v_c1 = waveforms_one.transient.at("C1", schedule.end_of("first_read"))
        assert v_c1 == pytest.approx(expected, rel=0.02)

    def test_c2_samples_erased_state(self, waveforms_one, calibration_module):
        # C2 holds the erased (parallel-state) voltage at I_R2 — the
        # self-generated reference of the scheme.
        cell = calibration_module.cell(917.0)
        from repro.device.mtj import MTJState

        expected = 200e-6 * cell.series_resistance(200e-6, MTJState.PARALLEL)
        schedule = waveforms_one.schedule
        v_c2 = waveforms_one.transient.at("C2", schedule.end_of("second_read"))
        assert v_c2 == pytest.approx(expected, rel=0.02)

    def test_bitline_spikes_during_writes(self, waveforms_one):
        # The write pulses force ~750 µA through the cell: the bit line
        # voltage during erase dwarfs the read-phase voltages.
        schedule = waveforms_one.schedule
        v_during_erase = waveforms_one.transient.at(
            "BL", schedule.end_of("erase") - 0.5e-9
        )
        v_during_read = waveforms_one.transient.at(
            "BL", schedule.end_of("first_read") - 0.5e-9
        )
        assert v_during_erase > 1.5 * v_during_read

    def test_rejects_bad_dt(self, calibration_module):
        cell = calibration_module.cell(917.0)
        with pytest.raises(ConfigurationError):
            simulate_destructive_read(cell, dt=0.0)
