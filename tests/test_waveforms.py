"""Transient-waveform tests (paper Figs. 9–10)."""

import numpy as np
import pytest

from repro.circuit.divider import VoltageDivider
from repro.core.margins import nondestructive_margins
from repro.device.mtj import MTJState
from repro.errors import ConfigurationError
from repro.timing.waveforms import simulate_nondestructive_read


@pytest.fixture(scope="module")
def waveforms_one(calibration_module):
    cell = calibration_module.cell(917.0)
    cell.write(1)
    return simulate_nondestructive_read(
        cell, beta=calibration_module.beta_nondestructive
    )


@pytest.fixture(scope="module")
def waveforms_zero(calibration_module):
    cell = calibration_module.cell(917.0)
    cell.write(0)
    return simulate_nondestructive_read(
        cell, beta=calibration_module.beta_nondestructive
    )


@pytest.fixture(scope="module")
def calibration_module():
    from repro.calibration import calibrate

    return calibrate()


class TestSensing:
    def test_senses_one(self, waveforms_one):
        assert waveforms_one.sensed_bit == 1
        assert waveforms_one.sense_differential > 0

    def test_senses_zero(self, waveforms_zero):
        assert waveforms_zero.sensed_bit == 0
        assert waveforms_zero.sense_differential < 0

    def test_differential_matches_analytic_margin(
        self, waveforms_one, calibration_module
    ):
        cell = calibration_module.cell(917.0)
        analytic = nondestructive_margins(
            cell, 200e-6, calibration_module.beta_nondestructive, alpha=0.5
        ).sm1
        assert waveforms_one.sense_differential == pytest.approx(analytic, rel=0.05)

    def test_completes_in_about_15ns(self, waveforms_one):
        assert waveforms_one.total_duration < 20e-9


class TestAnalogWaveforms:
    def test_c1_holds_first_read_voltage(self, waveforms_one, calibration_module):
        cell = calibration_module.cell(917.0)
        beta = calibration_module.beta_nondestructive
        i1 = 200e-6 / beta
        expected = i1 * cell.series_resistance(i1, MTJState.ANTIPARALLEL)
        schedule = waveforms_one.schedule
        v_c1_end = waveforms_one.transient.at("C1", schedule.end_of("first_read"))
        assert v_c1_end == pytest.approx(expected, rel=0.02)

    def test_c1_holds_during_second_read(self, waveforms_one):
        schedule = waveforms_one.schedule
        v_start = waveforms_one.transient.at("C1", schedule.start_of("second_read"))
        v_end = waveforms_one.transient.at("C1", schedule.end_of("sense"))
        assert v_end == pytest.approx(v_start, rel=0.01)

    def test_bo_settles_to_half_bitline(self, waveforms_one):
        schedule = waveforms_one.schedule
        t = schedule.end_of("sense") - 1e-10
        v_bl = waveforms_one.transient.at("BL", t)
        v_bo = waveforms_one.transient.at("BO", t)
        assert v_bo == pytest.approx(0.5 * v_bl, rel=0.01)

    def test_bitline_steps_up_at_second_read(self, waveforms_one):
        schedule = waveforms_one.schedule
        v_first = waveforms_one.transient.at("BL", schedule.end_of("first_read") - 1e-10)
        v_second = waveforms_one.transient.at("BL", schedule.end_of("second_read"))
        # I_R2 > I_R1 but R_H collapses; the bit-line voltage still rises
        # (β < R ratio) — check it changed significantly.
        assert abs(v_second - v_first) > 0.01

    def test_zero_before_wordline(self, waveforms_one):
        assert abs(waveforms_one.v_bl[0]) < 1e-6


class TestControlSignals:
    def test_fig9_sequence(self, waveforms_one):
        controls = waveforms_one.controls
        slt1 = controls["SLT1"]
        slt2 = controls["SLT2"]
        # SLT1 and SLT2 are never both closed.
        assert not np.any(slt1 & slt2)

    def test_sense_enable_inside_slt2(self, waveforms_one):
        controls = waveforms_one.controls
        assert np.all(controls["SLT2"][controls["SenEn"]])

    def test_latch_after_sense(self, waveforms_one):
        controls = waveforms_one.controls
        times = waveforms_one.times
        last_sense = times[controls["SenEn"]].max()
        first_latch = times[controls["Data_latch"]].min()
        assert first_latch >= last_sense


class TestConfiguration:
    def test_rejects_bad_dt(self, calibration_module):
        cell = calibration_module.cell(917.0)
        with pytest.raises(ConfigurationError):
            simulate_nondestructive_read(cell, dt=0.0)

    def test_divider_deviation_changes_decision_margin(self, calibration_module):
        cell = calibration_module.cell(917.0)
        cell.write(1)
        beta = calibration_module.beta_nondestructive
        nominal = simulate_nondestructive_read(cell, beta=beta)
        skewed = simulate_nondestructive_read(
            cell, beta=beta, divider=VoltageDivider(ratio=0.5, ratio_deviation=0.03)
        )
        assert skewed.sense_differential < nominal.sense_differential
