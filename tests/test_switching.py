"""Spin-torque switching model tests."""

import math

import numpy as np
import pytest

from repro.device.mtj import MTJDevice, MTJParams, MTJState
from repro.device.switching import SwitchingModel
from repro.errors import ConfigurationError


@pytest.fixture
def model():
    return SwitchingModel(MTJParams())


class TestCriticalCurrent:
    def test_nominal_pulse(self, model):
        assert model.critical_current(4e-9) == pytest.approx(500e-6)

    def test_default_is_nominal(self, model):
        assert model.critical_current() == pytest.approx(500e-6)

    def test_longer_pulse_lowers_threshold(self, model):
        assert model.critical_current(1e-6) < model.critical_current(4e-9)

    def test_shorter_pulse_raises_threshold(self, model):
        assert model.critical_current(1e-9) > model.critical_current(4e-9)

    def test_rejects_nonpositive_pulse(self, model):
        with pytest.raises(ConfigurationError):
            model.critical_current(0.0)


class TestSwitchProbability:
    def test_monotone_in_current(self, model):
        currents = np.linspace(0, 800e-6, 30)
        probs = model.switch_probability(currents, 4e-9)
        assert np.all(np.diff(probs) >= -1e-12)

    def test_monotone_in_pulse_width(self, model):
        p_short = model.switch_probability(450e-6, 1e-9)
        p_long = model.switch_probability(450e-6, 100e-9)
        assert p_long >= p_short

    def test_write_current_switches_reliably(self, model):
        assert model.switch_probability(750e-6, 4e-9) > 0.999

    def test_read_current_never_switches(self, model):
        # 200 µA = 40% of I_c0 with Δ = 60: astronomically safe.
        p = model.read_disturb_probability(200e-6, 15e-9)
        assert p < 1e-12

    def test_probability_bounded(self, model):
        probs = model.switch_probability(np.linspace(0, 2e-3, 50), 4e-9)
        assert np.all((probs >= 0.0) & (probs <= 1.0))

    def test_rejects_nonpositive_pulse(self, model):
        with pytest.raises(ConfigurationError):
            model.switch_probability(100e-6, 0.0)

    def test_mean_time_to_disturb_long_at_read_current(self, model):
        # Barrier Δ(1 - 0.4) = 36 kT → τ0 e^36 ≈ 50 days of *continuous*
        # read current; a 15 ns read pulse is therefore harmless.
        t = model.mean_time_to_disturb(200e-6)
        assert t > 86400.0  # more than a day of continuous stress
        assert t == pytest.approx(1e-9 * math.exp(36.0), rel=1e-6)

    def test_mean_time_to_disturb_short_above_critical(self, model):
        assert model.mean_time_to_disturb(600e-6) == pytest.approx(
            model.params.attempt_time
        )


class TestApplyPulse:
    def test_positive_current_writes_zero(self, model):
        device = MTJDevice(state=MTJState.ANTIPARALLEL)
        result = model.apply_pulse(device, +750e-6, 4e-9)
        assert result.switched
        assert device.state is MTJState.PARALLEL

    def test_negative_current_writes_one(self, model):
        device = MTJDevice(state=MTJState.PARALLEL)
        result = model.apply_pulse(device, -750e-6, 4e-9)
        assert result.switched
        assert device.state is MTJState.ANTIPARALLEL

    def test_unfavourable_direction_never_switches(self, model):
        device = MTJDevice(state=MTJState.PARALLEL)
        result = model.apply_pulse(device, +750e-6, 4e-9)
        assert not result.switched
        assert result.probability == 0.0
        assert device.state is MTJState.PARALLEL

    def test_subcritical_pulse_does_not_switch_deterministically(self, model):
        device = MTJDevice(state=MTJState.ANTIPARALLEL)
        result = model.apply_pulse(device, +200e-6, 4e-9)
        assert not result.switched

    def test_stochastic_with_rng(self, model, rng):
        device = MTJDevice(state=MTJState.ANTIPARALLEL)
        result = model.apply_pulse(device, +750e-6, 4e-9, rng=rng)
        assert result.switched  # probability ~1


class TestWriteBit:
    def test_write_one(self, model):
        device = MTJDevice(state=MTJState.PARALLEL)
        result = model.write_bit(device, 1)
        assert result.switched
        assert device.read_bit() == 1

    def test_write_zero(self, model):
        device = MTJDevice(state=MTJState.ANTIPARALLEL)
        model.write_bit(device, 0)
        assert device.read_bit() == 0

    def test_write_same_value_is_noop(self, model):
        device = MTJDevice(state=MTJState.PARALLEL)
        result = model.write_bit(device, 0)
        assert not result.switched
        assert result.probability == 1.0

    def test_custom_write_current(self, model):
        device = MTJDevice(state=MTJState.PARALLEL)
        result = model.write_bit(device, 1, write_current=900e-6)
        assert result.switched

    def test_invalid_sharpness(self):
        with pytest.raises(ConfigurationError):
            SwitchingModel(MTJParams(), precessional_sharpness=0.0)


class TestThermalActivationPhysics:
    def test_long_pulse_switches_below_critical(self):
        # With a low barrier, thermal activation over seconds flips the bit
        # well below I_c0 — retention physics.
        params = MTJParams(thermal_stability=40.0)
        model = SwitchingModel(params)
        p = model.switch_probability(0.9 * params.i_c0, 1.0)
        assert p > 0.99

    def test_retention_at_zero_current(self):
        # Δ = 60 gives a ten-year retention failure probability of
        # ~3e-9 per bit — the standard nonvolatile-retention budget.
        params = MTJParams(thermal_stability=60.0)
        model = SwitchingModel(params)
        ten_years = 10 * 3.156e7
        assert model.switch_probability(0.0, ten_years) < 1e-8

    def test_barrier_scales_with_delta(self):
        weak = SwitchingModel(MTJParams(thermal_stability=30.0))
        strong = SwitchingModel(MTJParams(thermal_stability=80.0))
        current, width = 300e-6, 1e-3
        assert weak.switch_probability(current, width) > strong.switch_probability(
            current, width
        )
