"""Process-variation model and population-sampling tests."""

import math

import numpy as np
import pytest

from repro.device.mtj import MTJParams, MTJState
from repro.device.variation import (
    OXIDE_SENSITIVITY_PER_ANGSTROM,
    CellPopulation,
    VariationModel,
)
from repro.errors import ConfigurationError


class TestVariationModel:
    def test_oxide_sensitivity_matches_paper(self):
        # 8% resistance change per 0.1 Å (paper §I).
        assert math.exp(OXIDE_SENSITIVITY_PER_ANGSTROM * 0.1) == pytest.approx(1.08)

    def test_resistance_sigma_combines_sources(self):
        v = VariationModel(sigma_tox_angstrom=0.1, sigma_area_frac=0.0)
        assert v.resistance_sigma_frac() == pytest.approx(math.log(1.08), rel=1e-6)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            VariationModel(sigma_tox_angstrom=-0.1)

    def test_scaled(self):
        v = VariationModel().scaled(2.0)
        assert v.sigma_tox_angstrom == pytest.approx(2 * VariationModel().sigma_tox_angstrom)
        assert v.sigma_vref == pytest.approx(2 * VariationModel().sigma_vref)

    def test_scaled_zero_removes_all_variation(self, rng):
        pop = CellPopulation.sample(64, VariationModel().scaled(0.0), rng=rng)
        assert np.allclose(pop.r_low0, pop.nominal.r_low)
        assert np.allclose(pop.r_high0, pop.nominal.r_high)

    def test_scaled_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            VariationModel().scaled(-1.0)


class TestSampling:
    def test_size(self, rng):
        pop = CellPopulation.sample(100, VariationModel(), rng=rng)
        assert pop.size == 100
        assert pop.r_low0.shape == (100,)

    def test_rejects_empty(self, rng):
        with pytest.raises(ConfigurationError):
            CellPopulation.sample(0, VariationModel(), rng=rng)

    def test_mean_near_nominal(self, rng):
        pop = CellPopulation.sample(20000, VariationModel(), rng=rng)
        assert np.mean(pop.r_low0) == pytest.approx(1220.0, rel=0.01)
        assert np.mean(pop.r_high0) == pytest.approx(2500.0, rel=0.01)

    def test_resistance_spread_matches_model(self, rng):
        variation = VariationModel(
            sigma_tox_angstrom=0.10,
            sigma_area_frac=0.0,
            sigma_tmr_frac=0.0,
        )
        pop = CellPopulation.sample(20000, variation, rng=rng)
        # log-normal: std of log should be ln(1.08).
        assert np.std(np.log(pop.r_low0)) == pytest.approx(math.log(1.08), rel=0.05)

    def test_high_low_correlated(self, rng):
        pop = CellPopulation.sample(5000, VariationModel(sigma_tmr_frac=0.0), rng=rng)
        corr = np.corrcoef(pop.r_low0, pop.r_high0)[0, 1]
        assert corr > 0.99  # same RA/A factor moves both

    def test_tmr_variation_decorrelates(self, rng):
        pop = CellPopulation.sample(
            5000, VariationModel(sigma_tmr_frac=0.10), rng=rng
        )
        corr = np.corrcoef(pop.r_low0, pop.r_high0)[0, 1]
        assert corr < 0.99

    def test_rolloff_scales_with_split(self, rng):
        pop = CellPopulation.sample(1000, VariationModel(), rng=rng)
        split = pop.r_high0 - pop.r_low0
        nominal = pop.nominal
        expected = nominal.dr_high_max * split / (nominal.r_high - nominal.r_low)
        assert np.allclose(pop.dr_high_max, expected)

    def test_reproducible_with_seed(self):
        a = CellPopulation.sample(32, VariationModel(), rng=np.random.default_rng(7))
        b = CellPopulation.sample(32, VariationModel(), rng=np.random.default_rng(7))
        assert np.array_equal(a.r_high0, b.r_high0)


class TestPopulation:
    def test_resistance_low_vectorized(self, small_population):
        values = small_population.resistance_low(100e-6)
        assert values.shape == (small_population.size,)
        assert np.all(values > 0)

    def test_resistance_dispatch_by_state(self, small_population):
        high = small_population.resistance(0.0, MTJState.ANTIPARALLEL)
        low = small_population.resistance(0.0, MTJState.PARALLEL)
        assert np.all(high > low)

    def test_tmr_positive(self, small_population):
        assert np.all(small_population.tmr() > 0)

    def test_device_materialization(self, small_population):
        device = small_population.device(3)
        assert device.params.r_low == pytest.approx(small_population.r_low0[3])
        assert device.resistance(0.0, MTJState.ANTIPARALLEL) == pytest.approx(
            small_population.r_high0[3]
        )

    def test_device_index_out_of_range(self, small_population):
        with pytest.raises(IndexError):
            small_population.device(small_population.size)

    def test_subset(self, small_population):
        sub = small_population.subset([0, 5, 9])
        assert sub.size == 3
        assert sub.r_high0[1] == small_population.r_high0[5]

    def test_nominal_population_is_uniform(self, nominal_population):
        assert np.all(nominal_population.r_low0 == nominal_population.r_low0[0])
        assert np.all(nominal_population.vref_error == 0.0)

    def test_nominal_population_matches_params(self):
        params = MTJParams(r_high=2600.0)
        pop = CellPopulation.nominal_population(4, params=params)
        assert np.all(pop.r_high0 == 2600.0)
