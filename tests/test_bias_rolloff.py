"""Bias-driven (physical) roll-off model tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cell import Cell1T1J
from repro.core.optimize import optimize_beta_nondestructive
from repro.device.bias import BiasDrivenRollOff, junction_voltage
from repro.device.mtj import MTJDevice, MTJParams, MTJState
from repro.device.transistor import FixedResistanceTransistor
from repro.errors import ConfigurationError


class TestJunctionVoltage:
    def test_zero_current(self):
        assert junction_voltage(0.0, 2500.0, 0.45) == 0.0

    def test_small_current_ohmic(self):
        # At tiny bias the junction is ohmic: V ≈ I R0.
        v = junction_voltage(1e-6, 2500.0, 0.45)
        assert v == pytest.approx(1e-6 * 2500.0, rel=1e-3)

    def test_self_consistency(self):
        r0, vh = 2500.0, 0.45
        current = 200e-6
        v = junction_voltage(current, r0, vh)
        resistance = r0 / (1.0 + (v / vh) ** 2)
        assert current * resistance == pytest.approx(v, rel=1e-9)

    def test_sublinear_voltage(self):
        # Conductance grows with bias, so V grows sublinearly with I.
        v1 = junction_voltage(100e-6, 2500.0, 0.45)
        v2 = junction_voltage(200e-6, 2500.0, 0.45)
        assert v2 < 2 * v1

    def test_vectorized(self):
        v = junction_voltage(np.linspace(0, 200e-6, 8), 2500.0, 0.45)
        assert v.shape == (8,)
        assert np.all(np.diff(v) > 0)

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            junction_voltage(1e-6, 0.0, 0.45)
        with pytest.raises(ConfigurationError):
            junction_voltage(1e-6, 2500.0, 0.0)

    @given(st.floats(1e-7, 1e-3), st.floats(500.0, 5000.0), st.floats(0.1, 3.0))
    @settings(max_examples=60)
    def test_always_self_consistent(self, current, r0, vh):
        v = junction_voltage(current, r0, vh)
        resistance = r0 / (1.0 + (v / vh) ** 2)
        assert current * resistance == pytest.approx(v, rel=1e-6)


class TestBiasDrivenRollOff:
    def test_contract(self):
        BiasDrivenRollOff.for_antiparallel().validate()
        BiasDrivenRollOff.for_parallel().validate()

    def test_antiparallel_rolls_off_faster(self):
        ap = BiasDrivenRollOff.for_antiparallel()
        p = BiasDrivenRollOff.for_parallel()
        # Absolute resistance drop at I_max: the AP state loses far more.
        assert ap.delta_r_max() > 5 * p.delta_r_max()

    def test_matches_paper_rolloff_scale(self):
        # With v_half ≈ 0.7 V the AP drop at 200 µA lands on the paper's
        # 600 Ω anchor — the physics reproduces the measured roll-off.
        ap = BiasDrivenRollOff.for_antiparallel(r_high=2500.0, v_half=0.70)
        assert ap.delta_r_max() == pytest.approx(600.0, rel=0.1)

    def test_fraction_monotone(self):
        model = BiasDrivenRollOff.for_antiparallel()
        grid = np.linspace(0, 1.2, 32)
        assert np.all(np.diff(model.fraction(grid)) >= 0)

    def test_resistance_at_zero(self):
        model = BiasDrivenRollOff.for_antiparallel(r_high=2500.0)
        assert model.resistance(0.0) == pytest.approx(2500.0)

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            BiasDrivenRollOff(2500.0, 0.45, i_max=0.0)
        with pytest.raises(ConfigurationError):
            # Huge v_half at tiny current: no measurable roll-off.
            BiasDrivenRollOff(2500.0, 1e6, i_max=1e-9)

    def test_repr(self):
        assert "BiasDrivenRollOff" in repr(BiasDrivenRollOff.for_antiparallel())


class TestPhysicalDeviceEndToEnd:
    """The nondestructive scheme must work on the first-principles device,
    not just the fitted one."""

    def make_physical_cell(self):
        ap = BiasDrivenRollOff.for_antiparallel(r_high=2500.0, v_half=0.70)
        p = BiasDrivenRollOff.for_parallel(r_low=1220.0, v_half=2.5)
        params = MTJParams(
            dr_high_max=ap.delta_r_max(),
            dr_low_max=p.delta_r_max(),
        )
        device = MTJDevice(params, rolloff_high=ap, rolloff_low=p)
        return Cell1T1J(device, FixedResistanceTransistor(917.0))

    def test_states_distinguishable(self):
        cell = self.make_physical_cell()
        for current in (0.0, 100e-6, 200e-6):
            assert cell.mtj.resistance(current, MTJState.ANTIPARALLEL) > cell.mtj.resistance(
                current, MTJState.PARALLEL
            )

    def test_optimum_in_paper_neighbourhood(self):
        cell = self.make_physical_cell()
        optimum = optimize_beta_nondestructive(cell, 200e-6, alpha=0.5)
        # First-principles device: β* and margin land near the paper's
        # (2.13, 12.1 mV) without any fitting.
        assert 1.9 < optimum.beta < 2.5
        assert 5e-3 < optimum.max_sense_margin < 30e-3

    def test_read_works(self, rng):
        from repro.core.nondestructive import NondestructiveSelfReference

        cell = self.make_physical_cell()
        optimum = optimize_beta_nondestructive(cell, 200e-6, alpha=0.5)
        scheme = NondestructiveSelfReference(beta=optimum.beta)
        for bit in (0, 1):
            cell.write(bit)
            assert scheme.read(cell, rng).correct
