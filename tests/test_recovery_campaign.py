"""Fault-injection campaign: acceptance gates at a fixed seed.

The campaign's contract (ISSUE acceptance): on the seeded testchip sweep
the recovery ladder recovers >= 99% of correctable injected faults with
zero silently-escaped words for the nondestructive scheme; the destructive
scheme's power-failure window shows up as escaped/destroyed words — the
paper's motivating non-volatility hole.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.core.retry import RetryPolicy
from repro.errors import ConfigurationError, FaultError
from repro.faults import (
    FaultCampaignResult,
    default_fault_models,
    run_fault_campaign,
)

#: Small but representative: 64 codewords, the CI smoke size.
SMOKE_BITS = 4608


@pytest.fixture(scope="module")
def smoke_campaign():
    return run_fault_campaign(rates=(1e-4, 1e-3), bits=SMOKE_BITS, seed=2010)


class TestCampaignAcceptance:
    def test_recovers_correctable_faults(self, smoke_campaign):
        assert smoke_campaign.min_recovery_fraction >= 0.99
        assert smoke_campaign.total_escaped == 0
        smoke_campaign.check()  # the CI gate itself

    def test_rows_are_scored_consistently(self, smoke_campaign):
        for row in smoke_campaign.rows:
            assert row.bits == SMOKE_BITS
            assert row.words == SMOKE_BITS // 72 - 8  # 8 spare words reserved
            assert row.correctable_words <= row.faulty_words
            assert row.recovered_correctable <= row.correctable_words
            # Every word is accounted for exactly once across the tiers.
            assert sum(row.tier_counts.values()) == row.words
            assert row.tier_counts["lost"] == row.detected_words

    def test_higher_rates_strike_more_cells(self, smoke_campaign):
        injected = [row.injected_cells for row in smoke_campaign.rows]
        assert injected[0] < injected[-1]

    def test_fixed_seed_reproduces(self, smoke_campaign):
        again = run_fault_campaign(rates=(1e-4, 1e-3), bits=SMOKE_BITS, seed=2010)
        for row, row2 in zip(smoke_campaign.rows, again.rows):
            assert row == row2

    def test_destructive_scheme_leaks_power_failures(self):
        """The destructive read's erase window: a supply drop destroys the
        word, and a mostly-erased word can alias straight past SECDED —
        silent corruption the nondestructive scheme is immune to."""
        result = run_fault_campaign(
            rates=(1e-3,), bits=SMOKE_BITS, scheme="destructive", seed=2010
        )
        row = result.rows[0]
        assert row.power_failure_words > 0
        assert row.escaped_words > 0
        with pytest.raises(FaultError):
            result.check()

    def test_check_gates(self):
        clean = FaultCampaignResult(
            scheme="nondestructive", seed=0, bits=72, data_bits=64, rows=()
        )
        clean.check()  # vacuously healthy
        assert clean.min_recovery_fraction == 1.0

    def test_configuration_errors(self):
        with pytest.raises(ConfigurationError):
            run_fault_campaign(rates=(0.1,), bits=0)
        with pytest.raises(ConfigurationError):
            run_fault_campaign(rates=(-0.5,), bits=SMOKE_BITS)
        with pytest.raises(ConfigurationError):
            run_fault_campaign(rates=(0.1,), bits=SMOKE_BITS, scheme="bogus")

    def test_default_fault_models(self):
        models = default_fault_models(1e-3)
        assert len(models) == 5
        assert len(default_fault_models(1e-3, transients=False)) == 3
        rates = {type(m).__name__: getattr(m, "rate", None) for m in models}
        assert rates["StuckShortFault"] == pytest.approx(5e-4)
        assert rates["ReadDisturbFault"] == pytest.approx(2.5e-4)

    def test_escalated_policy_beats_no_retry_on_stuck_shorts(self):
        """Sense-current escalation pushes a shorted cell's ~7 mV margin
        out of the 8 mV window: with retries exhausted words shrink."""
        no_retry = run_fault_campaign(
            rates=(5e-3,), bits=SMOKE_BITS, seed=7,
            policy=RetryPolicy(max_attempts=1),
        ).rows[0]
        escalated = run_fault_campaign(
            rates=(5e-3,), bits=SMOKE_BITS, seed=7,
            policy=RetryPolicy(max_attempts=3, current_escalation=0.2),
        ).rows[0]
        assert escalated.escaped_words == 0
        assert (escalated.detected_words + escalated.escaped_words) <= (
            no_retry.detected_words + no_retry.escaped_words
        )


class TestFaultsCli:
    def test_faults_command_runs_and_passes(self, capsys):
        code = main(["faults", "--bits", str(SMOKE_BITS), "--rates", "1e-3", "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out
        assert "clean/retry/ecc/scrub/repair" in out

    def test_faults_command_check_fails_on_escapes(self, capsys):
        with pytest.raises(SystemExit) as info:
            main([
                "faults", "--bits", str(SMOKE_BITS), "--rates", "1e-3",
                "--scheme", "destructive", "--check",
            ])
        assert info.value.code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_faults_command_without_check_reports_only(self, capsys):
        code = main([
            "faults", "--bits", str(SMOKE_BITS), "--rates", "1e-3",
            "--scheme", "destructive",
        ])
        assert code == 0
        assert "escaped" in capsys.readouterr().out
