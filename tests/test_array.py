"""Behavioural STT-RAM array tests."""

import numpy as np
import pytest

from repro.array.array import STTRAMArray
from repro.core.conventional import ConventionalSensing
from repro.core.destructive import DestructiveSelfReference
from repro.core.nondestructive import NondestructiveSelfReference
from repro.device.variation import CellPopulation, VariationModel
from repro.errors import ConfigurationError


@pytest.fixture
def array(rng):
    population = CellPopulation.sample(64, VariationModel(), rng=rng)
    return STTRAMArray(population, word_width=8)


@pytest.fixture
def nondestructive():
    return NondestructiveSelfReference(beta=2.13)


class TestGeometry:
    def test_sizes(self, array):
        assert array.size_bits == 64
        assert array.size_words == 8

    def test_rejects_bad_word_width(self, rng):
        population = CellPopulation.sample(8, VariationModel(), rng=rng)
        with pytest.raises(ConfigurationError):
            STTRAMArray(population, word_width=0)
        with pytest.raises(ConfigurationError):
            STTRAMArray(population, word_width=16)

    def test_address_bounds(self, array, nondestructive):
        with pytest.raises(IndexError):
            array.write_word(8, 0)
        with pytest.raises(IndexError):
            array.read_word(-1, nondestructive)

    def test_value_bounds(self, array):
        with pytest.raises(ValueError):
            array.write_word(0, 256)


class TestDataPath:
    def test_roundtrip_nondestructive(self, array, nondestructive, rng):
        for address, value in enumerate([0x00, 0xFF, 0xA5, 0x5A, 0x01]):
            array.write_word(address, value)
            assert array.read_word(address, nondestructive, rng) == value

    def test_roundtrip_destructive(self, array, rng):
        scheme = DestructiveSelfReference(beta=1.22)
        for address, value in enumerate([0x3C, 0xC3, 0x81]):
            array.write_word(address, value)
            assert array.read_word(address, scheme, rng) == value
            # Write-back must leave the stored word intact.
            assert array.read_word(address, scheme, rng) == value

    def test_roundtrip_conventional_nominal_bits(self, rng, nominal_population):
        # Variation-free bits read fine conventionally.
        array = STTRAMArray(nominal_population, word_width=8)
        cell = nominal_population.device(0)
        from repro.core.cell import Cell1T1J
        from repro.device.transistor import FixedResistanceTransistor

        reference_cell = Cell1T1J(cell, FixedResistanceTransistor(917.0))
        scheme = ConventionalSensing(nominal_cell=reference_cell)
        array.write_word(0, 0xB7)
        assert array.read_word(0, scheme, rng) == 0xB7

    def test_nondestructive_preserves_state(self, array, nondestructive, rng):
        array.write_word(2, 0x7E)
        before = array.stored_bits()
        array.read_word(2, nondestructive, rng)
        assert np.array_equal(array.stored_bits(), before)

    def test_read_bit_result(self, array, nondestructive, rng):
        array.write_word(0, 0x01)
        result = array.read_bit(0, nondestructive, rng)
        assert result.bit == 1
        assert result.expected_bit == 1

    def test_read_bit_bounds(self, array, nondestructive):
        with pytest.raises(IndexError):
            array.read_bit(64, nondestructive)

    def test_stored_bits_is_copy(self, array):
        snapshot = array.stored_bits()
        snapshot[0] = 1
        assert array.stored_bits()[0] == 0


class TestBulkAnalysis:
    def test_margin_survey(self, array):
        survey = array.margin_survey(beta_nondestructive=2.13)
        assert survey["nondestructive"].sm0.shape == (64,)

    def test_failing_bits_conventional_tail(self, rng):
        # Crank variation: conventional sensing must lose some bits.
        population = CellPopulation.sample(
            2048, VariationModel().scaled(3.0), rng=rng
        )
        array = STTRAMArray(population)
        failing = array.failing_bits("conventional")
        assert len(failing) > 0
        assert all(0 <= index < 2048 for index in failing)

    def test_failing_bits_empty_for_destructive_nominal(self, nominal_population):
        array = STTRAMArray(nominal_population, word_width=8)
        assert array.failing_bits("destructive", required_margin=1e-3) == []
