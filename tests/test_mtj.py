"""MTJ device and parameter tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.mtj import MTJDevice, MTJParams, MTJState, PAPER_MTJ_PARAMS
from repro.device.rolloff import PowerLawRollOff
from repro.errors import ConfigurationError


class TestMTJState:
    def test_bit_mapping(self):
        assert MTJState.PARALLEL.bit == 0
        assert MTJState.ANTIPARALLEL.bit == 1

    def test_from_bit(self):
        assert MTJState.from_bit(0) is MTJState.PARALLEL
        assert MTJState.from_bit(1) is MTJState.ANTIPARALLEL

    def test_from_bit_rejects_other_values(self):
        with pytest.raises(ValueError):
            MTJState.from_bit(2)

    def test_opposite(self):
        assert MTJState.PARALLEL.opposite is MTJState.ANTIPARALLEL
        assert MTJState.ANTIPARALLEL.opposite is MTJState.PARALLEL


class TestMTJParams:
    def test_paper_defaults(self):
        p = PAPER_MTJ_PARAMS
        assert p.r_low == 1220.0
        assert p.r_high == 2500.0
        assert p.tmr == pytest.approx(1.049, abs=1e-3)
        assert p.read_disturb_ratio == pytest.approx(0.4)

    def test_area(self):
        assert PAPER_MTJ_PARAMS.area == pytest.approx(90e-9 * 180e-9)

    def test_replace(self):
        p = PAPER_MTJ_PARAMS.replace(r_high=3000.0)
        assert p.r_high == 3000.0
        assert p.r_low == PAPER_MTJ_PARAMS.r_low

    @pytest.mark.parametrize(
        "changes",
        [
            {"r_low": -1.0},
            {"r_low": 3000.0},                    # r_high <= r_low
            {"dr_low_max": 1300.0},               # exceeds r_low
            {"dr_high_max": 2600.0},              # exceeds r_high
            {"dr_high_max": 1400.0},              # states collapse at i_max
            {"i_read_max": 0.0},
            {"i_read_max": 600e-6},               # above switching current
            {"pulse_width_write": 0.0},
            {"thermal_stability": -1.0},
            {"cell_width": 0.0},
        ],
    )
    def test_validation_rejects_unphysical(self, changes):
        with pytest.raises(ConfigurationError):
            PAPER_MTJ_PARAMS.replace(**changes)


class TestMTJDevice:
    def test_zero_current_resistances(self):
        device = MTJDevice()
        assert device.resistance(0.0, MTJState.PARALLEL) == pytest.approx(1220.0)
        assert device.resistance(0.0, MTJState.ANTIPARALLEL) == pytest.approx(2500.0)

    def test_full_current_rolloff(self):
        device = MTJDevice()
        i_max = device.params.i_read_max
        assert device.resistance(i_max, MTJState.ANTIPARALLEL) == pytest.approx(1900.0)
        assert device.resistance(i_max, MTJState.PARALLEL) == pytest.approx(
            1220.0 - device.params.dr_low_max
        )

    def test_default_state_used_when_omitted(self):
        device = MTJDevice(state=MTJState.ANTIPARALLEL)
        assert device.resistance(0.0) == pytest.approx(2500.0)

    def test_resistance_is_even_in_current(self):
        device = MTJDevice()
        assert device.resistance(-100e-6) == device.resistance(100e-6)

    def test_vectorized_resistance(self):
        device = MTJDevice()
        currents = np.linspace(0, 200e-6, 5)
        values = device.resistance(currents, MTJState.ANTIPARALLEL)
        assert values.shape == (5,)
        assert np.all(np.diff(values) < 0)  # strictly rolling off

    def test_voltage(self):
        device = MTJDevice(state=MTJState.PARALLEL)
        current = 100e-6
        expected = current * device.resistance(current)
        assert device.voltage(current) == pytest.approx(expected)

    def test_conductance_inverse(self):
        device = MTJDevice()
        current = 50e-6
        assert device.conductance(current) == pytest.approx(1.0 / device.resistance(current))

    def test_tmr_collapses_with_current(self):
        device = MTJDevice()
        assert device.tmr(device.params.i_read_max) < device.tmr(0.0)

    def test_delta_r(self):
        device = MTJDevice()
        i_max = device.params.i_read_max
        assert device.delta_r(i_max, MTJState.ANTIPARALLEL) == pytest.approx(600.0)
        assert device.delta_r(0.0, MTJState.ANTIPARALLEL) == pytest.approx(0.0)

    def test_high_state_rolls_off_faster(self):
        device = MTJDevice()
        i_max = device.params.i_read_max
        assert device.delta_r(i_max, MTJState.ANTIPARALLEL) > device.delta_r(
            i_max, MTJState.PARALLEL
        )

    def test_write_and_read_bit(self):
        device = MTJDevice()
        device.write(1)
        assert device.state is MTJState.ANTIPARALLEL
        assert device.read_bit() == 1
        device.write(0)
        assert device.read_bit() == 0

    def test_copy_is_independent(self):
        device = MTJDevice()
        clone = device.copy()
        clone.write(1)
        assert device.read_bit() == 0

    def test_custom_rolloff_models(self):
        device = MTJDevice(rolloff_high=PowerLawRollOff(2.0))
        half = device.params.i_read_max / 2
        assert device.delta_r(half, MTJState.ANTIPARALLEL) == pytest.approx(150.0)

    def test_repr_mentions_state(self):
        assert "PARALLEL" in repr(MTJDevice())

    @given(st.floats(0.0, 200e-6))
    @settings(max_examples=50)
    def test_states_always_distinguishable(self, current):
        device = MTJDevice()
        r_h = device.resistance(current, MTJState.ANTIPARALLEL)
        r_l = device.resistance(current, MTJState.PARALLEL)
        assert r_h > r_l
