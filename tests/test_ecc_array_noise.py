"""ECC-array wrapper and noise-budget tests."""

import math

import numpy as np
import pytest

from repro.array.array import STTRAMArray
from repro.circuit.noise import NoiseBudget, johnson_noise_rms, sampled_noise_rms
from repro.circuit.sense_amp import SenseAmplifier
from repro.core.nondestructive import NondestructiveSelfReference
from repro.device.variation import CellPopulation, VariationModel
from repro.ecc.array import EccArray
from repro.ecc.hamming import DecodeStatus
from repro.errors import ConfigurationError
from repro.units import BOLTZMANN, ROOM_TEMPERATURE


@pytest.fixture
def ecc_array(rng, calibration):
    population = CellPopulation.sample(
        2 * 72,
        VariationModel(sigma_alpha_frac=0.0, sigma_beta_frac=0.0),
        params=calibration.params,
        rolloff_high=calibration.rolloff_high(),
        rolloff_low=calibration.rolloff_low(),
        rng=rng,
    )
    return EccArray(STTRAMArray(population), data_bits=64)


@pytest.fixture
def scheme(calibration):
    return NondestructiveSelfReference(beta=calibration.beta_nondestructive)


class TestEccArray:
    def test_word_capacity(self, ecc_array):
        assert ecc_array.size_words == 2

    def test_roundtrip(self, ecc_array, scheme, rng):
        value = 0xDEADBEEFCAFEF00D
        ecc_array.write_word(0, value)
        result = ecc_array.read_word(0, scheme, rng)
        assert result.value == value
        assert result.status is DecodeStatus.CLEAN
        assert result.reliable

    def test_corrects_single_stuck_bit(self, ecc_array, scheme, rng):
        value = 0x0123456789ABCDEF
        ecc_array.write_word(1, value)
        # Flip one stored cell behind the codec's back (a stuck/marginal bit).
        base = 1 * ecc_array.codec.codeword_bits
        ecc_array.array._states[base + 13] ^= 1
        result = ecc_array.read_word(1, scheme, rng)
        assert result.value == value
        assert result.status is DecodeStatus.CORRECTED
        assert result.corrected_position == 13

    def test_detects_double_corruption(self, ecc_array, scheme, rng):
        value = 0xFFFFFFFFFFFFFFFF
        ecc_array.write_word(0, value)
        base = 0
        ecc_array.array._states[base + 3] ^= 1
        ecc_array.array._states[base + 40] ^= 1
        result = ecc_array.read_word(0, scheme, rng)
        assert result.status is DecodeStatus.DETECTED
        assert not result.reliable

    def test_statistics_accumulate(self, ecc_array, scheme, rng):
        ecc_array.write_word(0, 1)
        ecc_array.read_word(0, scheme, rng)
        ecc_array.read_word(0, scheme, rng)
        assert ecc_array.statistics[DecodeStatus.CLEAN] == 2

    def test_scrub_repairs_corrected_words(self, ecc_array, scheme, rng):
        value = 0x5555AAAA5555AAAA
        ecc_array.write_word(0, value)
        ecc_array.write_word(1, value)
        ecc_array.array._states[7] ^= 1  # damage word 0
        report = ecc_array.scrub(scheme, rng)
        assert report.corrected == 1
        assert report.uncorrectable == 0
        assert report.clean == 1
        assert report.healthy
        assert report.words == 2
        # After the scrub the stored codeword is clean again.
        result = ecc_array.read_word(0, scheme, rng)
        assert result.status is DecodeStatus.CLEAN
        assert result.value == value

    def test_scrub_counts_uncorrectable_without_rewriting(self, ecc_array, scheme, rng):
        """Multi-bit faults: a detected-but-uncorrectable word is counted
        and reported — never silently rewritten with laundered data."""
        value = 0x0F0F0F0F0F0F0F0F
        ecc_array.write_word(0, value)
        ecc_array.write_word(1, value)
        ecc_array.array._states[5] ^= 1   # two faults in word 0:
        ecc_array.array._states[50] ^= 1  # beyond SECDED correction
        before = ecc_array.array._states[:72].copy()
        report = ecc_array.scrub(scheme, rng)
        assert report.uncorrectable == 1
        assert report.uncorrectable_addresses == (0,)
        assert report.clean == 1
        assert not report.healthy
        assert report.words == 2
        # The corrupt word's cells are untouched — escalation (scrub retry,
        # repair remap) stays possible because nothing was overwritten.
        np.testing.assert_array_equal(ecc_array.array._states[:72], before)

    def test_read_word_with_retry_accounting(self, ecc_array, rng, calibration):
        """A hopeless sense amp burns the whole retry budget; the result
        surfaces the attempts and accumulated pulse counts."""
        from repro.core.retry import RetryPolicy

        hopeless = NondestructiveSelfReference(
            beta=calibration.beta_nondestructive,
            sense_amp=SenseAmplifier(resolution=10.0),
        )
        ecc_array.write_word(0, 0x1234)
        policy = RetryPolicy(max_attempts=3)
        result = ecc_array.read_word(0, hopeless, rng, retry_policy=policy)
        assert result.attempts == 3
        assert result.metastable_bits == 72
        assert result.read_pulses == 3 * 2 * 72  # attempts × pulses × bits

    def test_address_bounds(self, ecc_array, scheme):
        with pytest.raises(IndexError):
            ecc_array.write_word(2, 0)
        with pytest.raises(IndexError):
            ecc_array.read_word(-1, scheme)

    def test_rejects_undersized_array(self, rng):
        population = CellPopulation.sample(32, VariationModel(), rng=rng)
        with pytest.raises(ConfigurationError):
            EccArray(STTRAMArray(population), data_bits=64)


class TestNoise:
    def test_johnson_formula(self):
        rms = johnson_noise_rms(1000.0, 1e9, 300.0)
        assert rms == pytest.approx(math.sqrt(4 * BOLTZMANN * 300 * 1000 * 1e9))

    def test_ktc_formula(self):
        rms = sampled_noise_rms(100e-15)
        assert rms == pytest.approx(math.sqrt(BOLTZMANN * ROOM_TEMPERATURE / 100e-15))

    def test_ktc_magnitude(self):
        # kT/C at 100 fF: ~0.2 mV — the textbook number.
        assert sampled_noise_rms(100e-15) == pytest.approx(0.2e-3, rel=0.05)

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            johnson_noise_rms(0.0, 1e9)
        with pytest.raises(ConfigurationError):
            sampled_noise_rms(-1e-15)
        with pytest.raises(ConfigurationError):
            NoiseBudget(margin=0.0)

    def test_paper_margin_is_variation_limited(self, calibration):
        # The core claim: at 12.1 mV margin the noise-flip probability is
        # astronomically small — the scheme's risks are variation/mismatch,
        # exactly what the paper's robustness analysis studies.
        budget = NoiseBudget(margin=calibration.margin_nondestructive)
        assert budget.margin_sigmas > 7.0
        assert budget.is_variation_limited

    def test_total_noise_is_rss(self):
        budget = NoiseBudget(margin=12e-3)
        assert budget.total_noise == pytest.approx(
            math.hypot(budget.sampled_noise, budget.live_noise)
        )

    def test_hot_chip_noisier(self):
        cold = NoiseBudget(margin=12e-3, temperature=250.0)
        hot = NoiseBudget(margin=12e-3, temperature=400.0)
        assert hot.total_noise > cold.total_noise
        assert hot.margin_sigmas < cold.margin_sigmas
