"""Hypothesis property tests for the timing layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timing.phases import destructive_schedule, nondestructive_schedule

duration = st.floats(0.1e-9, 20e-9)


class TestScheduleInvariants:
    @given(
        t_wl=duration, t_r1=duration, t_r2=duration, t_sen=duration, t_lat=duration
    )
    @settings(max_examples=50)
    def test_total_is_sum_of_phases(self, t_wl, t_r1, t_r2, t_sen, t_lat):
        schedule = nondestructive_schedule(
            i_read1=94e-6, i_read2=200e-6,
            t_wordline=t_wl, t_first_read=t_r1, t_second_read=t_r2,
            t_sense=t_sen, t_latch=t_lat,
        )
        assert schedule.total_duration == pytest.approx(
            sum(p.duration for p in schedule.phases)
        )
        assert schedule.total_duration == pytest.approx(
            t_wl + t_r1 + t_r2 + t_sen + t_lat
        )

    @given(
        t_wl=duration, t_r1=duration, t_r2=duration, t_sen=duration, t_lat=duration
    )
    @settings(max_examples=50)
    def test_phases_tile_the_timeline(self, t_wl, t_r1, t_r2, t_sen, t_lat):
        schedule = nondestructive_schedule(
            i_read1=94e-6, i_read2=200e-6,
            t_wordline=t_wl, t_first_read=t_r1, t_second_read=t_r2,
            t_sense=t_sen, t_latch=t_lat,
        )
        cursor = 0.0
        for phase in schedule.phases:
            assert schedule.start_of(phase.name) == pytest.approx(cursor)
            assert schedule.end_of(phase.name) == pytest.approx(
                cursor + phase.duration
            )
            cursor += phase.duration

    @given(
        t_wl=duration, t_r1=duration, t_r2=duration, t_sen=duration, t_lat=duration
    )
    @settings(max_examples=50)
    def test_signal_intervals_within_operation(
        self, t_wl, t_r1, t_r2, t_sen, t_lat
    ):
        schedule = nondestructive_schedule(
            i_read1=94e-6, i_read2=200e-6,
            t_wordline=t_wl, t_first_read=t_r1, t_second_read=t_r2,
            t_sense=t_sen, t_latch=t_lat,
        )
        total = schedule.total_duration
        for signal in ("WL", "SLT1", "SLT2", "SenEn", "Data_latch"):
            for start, end in schedule.signal_intervals(signal):
                assert 0.0 <= start < end <= total + 1e-18

    @given(
        t_wl=duration, t_r1=duration, t_erase=duration, t_r2=duration,
        t_sen=duration, t_lat=duration, t_wb=duration,
    )
    @settings(max_examples=50)
    def test_destructive_write_phases_bracket_second_read(
        self, t_wl, t_r1, t_erase, t_r2, t_sen, t_lat, t_wb
    ):
        schedule = destructive_schedule(
            i_read1=164e-6, i_read2=200e-6, i_write=750e-6,
            t_wordline=t_wl, t_first_read=t_r1, t_erase=t_erase,
            t_second_read=t_r2, t_sense=t_sen, t_latch=t_lat,
            t_write_back=t_wb,
        )
        assert schedule.end_of("erase") <= schedule.start_of("second_read")
        assert schedule.end_of("second_read") <= schedule.start_of("write_back")
        # Vulnerability window (reliability model) equals erase→write-back.
        window = schedule.end_of("write_back") - schedule.start_of("erase")
        assert window == pytest.approx(t_erase + t_r2 + t_sen + t_lat + t_wb)


class TestLatencyScaling:
    @given(factor=st.floats(0.5, 3.0))
    @settings(max_examples=20, deadline=None)
    def test_latency_monotone_in_capacitor(self, factor):
        from repro.calibration import calibrated_cell
        from repro.circuit.storage import SampleCapacitor
        from repro.timing.latency import TimingConfig, nondestructive_read_latency

        cell = calibrated_cell()
        base_config = TimingConfig()
        scaled_config = TimingConfig(
            capacitor=SampleCapacitor(
                capacitance=base_config.capacitor.capacitance * factor,
                switch_resistance=base_config.capacitor.switch_resistance,
            )
        )
        base = nondestructive_read_latency(cell, config=base_config)
        scaled = nondestructive_read_latency(cell, config=scaled_config)
        if factor > 1.0:
            assert scaled.total > base.total
        elif factor < 1.0:
            assert scaled.total < base.total
