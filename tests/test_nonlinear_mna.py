"""Nonlinear (Newton) MNA tests: self-consistent tunnel-junction solves."""

import numpy as np
import pytest

from repro.circuit.nonlinear import (
    NonlinearCircuit,
    VoltageDependentResistor,
    mtj_branch_current,
)
from repro.device.bias import junction_voltage
from repro.errors import CircuitError, ConvergenceError


class TestElement:
    def test_linear_law_conductance(self):
        element = VoltageDependentResistor("a", "b", lambda v: v / 1000.0)
        assert element.conductance(0.3) == pytest.approx(1e-3, rel=1e-4)

    def test_quadratic_law_conductance_grows(self):
        element = VoltageDependentResistor("a", "b", mtj_branch_current(2500.0, 0.45))
        assert element.conductance(0.4) > element.conductance(0.0)

    def test_non_passive_rejected(self):
        element = VoltageDependentResistor("a", "b", lambda v: -v)
        with pytest.raises(CircuitError):
            element.conductance(0.1)

    def test_branch_law_validation(self):
        with pytest.raises(CircuitError):
            mtj_branch_current(0.0, 0.45)
        with pytest.raises(CircuitError):
            mtj_branch_current(2500.0, -1.0)


class TestNonlinearDC:
    def test_reduces_to_linear_without_nonlinear_elements(self):
        circuit = NonlinearCircuit()
        circuit.add_current_source("gnd", "n", 1e-3)
        circuit.add_resistor("n", "gnd", 1000.0)
        assert circuit.solve_dc()["n"] == pytest.approx(1.0)

    def test_matches_analytic_junction_voltage(self):
        # Current source into the tunnel junction: the node voltage must be
        # the closed-form self-consistent junction voltage.
        r0, vh, current = 2500.0, 0.45, 200e-6
        circuit = NonlinearCircuit()
        circuit.add_current_source("gnd", "mtj", current)
        circuit.add_nonlinear_resistor("mtj", "gnd", mtj_branch_current(r0, vh))
        result = circuit.solve_dc()
        assert result["mtj"] == pytest.approx(
            junction_voltage(current, r0, vh), rel=1e-6
        )

    def test_series_cell_with_transistor(self):
        # 1T1J bit-line voltage solved self-consistently: MTJ voltage obeys
        # the junction law; the transistor adds its linear drop.
        r0, vh, r_tr, current = 2500.0, 0.45, 917.0, 200e-6
        circuit = NonlinearCircuit()
        circuit.add_current_source("gnd", "BL", current)
        circuit.add_nonlinear_resistor("BL", "SL", mtj_branch_current(r0, vh))
        circuit.add_resistor("SL", "gnd", r_tr)
        result = circuit.solve_dc()
        v_mtj = result["BL"] - result["SL"]
        assert v_mtj == pytest.approx(junction_voltage(current, r0, vh), rel=1e-6)
        assert result["SL"] == pytest.approx(current * r_tr, rel=1e-9)

    def test_voltage_driven_junction(self):
        # Voltage source across the junction: the source current must be
        # the branch law evaluated at the source voltage.
        r0, vh = 2500.0, 0.45
        law = mtj_branch_current(r0, vh)
        circuit = NonlinearCircuit()
        circuit.add_voltage_source("in", "gnd", 0.4, name="V1")
        circuit.add_nonlinear_resistor("in", "gnd", law)
        result = circuit.solve_dc()
        assert abs(result.source_currents["V1"]) == pytest.approx(law(0.4), rel=1e-6)

    def test_divergence_raises(self):
        circuit = NonlinearCircuit(max_iterations=2)
        circuit.add_current_source("gnd", "n", 1e-3)
        # An extremely stiff law that two iterations cannot settle.
        circuit.add_nonlinear_resistor("n", "gnd", lambda v: (v / 10.0) ** 9 + v * 1e-12)
        with pytest.raises(ConvergenceError):
            circuit.solve_dc()

    def test_parameter_validation(self):
        with pytest.raises(CircuitError):
            NonlinearCircuit(max_iterations=0)
        with pytest.raises(CircuitError):
            NonlinearCircuit(damping=0.0)


class TestNonlinearTransient:
    def test_rc_with_junction_settles_to_dc(self):
        r0, vh, current = 2500.0, 0.45, 200e-6
        circuit = NonlinearCircuit()
        circuit.add_current_source("gnd", "BL", current)
        circuit.add_nonlinear_resistor("BL", "gnd", mtj_branch_current(r0, vh))
        circuit.add_capacitor("BL", "gnd", 50e-15)
        result = circuit.solve_transient(t_stop=5e-9, dt=10e-12)
        expected = junction_voltage(current, r0, vh)
        assert result["BL"][-1] == pytest.approx(expected, rel=1e-3)

    def test_transient_without_nonlinear_falls_back(self):
        circuit = NonlinearCircuit()
        circuit.add_voltage_source("in", "gnd", 1.0)
        circuit.add_resistor("in", "out", 1000.0)
        circuit.add_capacitor("out", "gnd", 1e-12)
        result = circuit.solve_transient(t_stop=1e-8, dt=1e-10)
        assert result["out"][-1] == pytest.approx(1.0, abs=0.01)

    def test_step_current_tracks_junction_law(self):
        # Step the read current mid-transient; the settled voltages before
        # and after must both satisfy the junction law.
        r0, vh = 2500.0, 0.45
        i1, i2 = 94e-6, 200e-6
        circuit = NonlinearCircuit()
        circuit.add_current_source(
            "gnd", "BL", lambda t: i1 if t < 10e-9 else i2
        )
        circuit.add_nonlinear_resistor("BL", "gnd", mtj_branch_current(r0, vh))
        circuit.add_capacitor("BL", "gnd", 20e-15)
        result = circuit.solve_transient(t_stop=20e-9, dt=20e-12)
        assert result.at("BL", 9.9e-9) == pytest.approx(
            junction_voltage(i1, r0, vh), rel=1e-3
        )
        assert result.at("BL", 20e-9) == pytest.approx(
            junction_voltage(i2, r0, vh), rel=1e-3
        )
