"""CLI tests: every experiment subcommand runs and prints its headline."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main, package_version


class TestVersion:
    def test_version_matches_package_metadata(self):
        import repro

        assert package_version() == repro.__version__ == "1.2.0"

    def test_version_flag_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "1.2.0" in capsys.readouterr().out


class TestParser:
    def test_all_experiments_registered(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name] if name != "fig10" else [name, "--bit", "0"])
            assert args.experiment == name

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestCommands:
    @pytest.mark.parametrize(
        "command, expect",
        [
            (["table1"], "Table I"),
            (["table2"], "Table II"),
            (["fig2"], "R–I"),
            (["fig6"], "optima"),
            (["fig7"], "windows"),
            (["fig8"], "window"),
            (["fig9"], "SLT1"),
            (["latency"], "faster"),
            (["energy"], "lower"),
            (["corners"], "Temperature corners"),
            (["disturb"], "read-disturb budget"),
            (["trim"], "compensating divider skew"),
            (["capacity"], "capacity projection"),
            (["sensitivity"], "sensitivity"),
            (["ber"], "error budget"),
            (["list"], "available experiments"),
        ],
    )
    def test_command_output(self, command, expect, capsys):
        assert main(command) == 0
        assert expect in capsys.readouterr().out

    def test_fig10_both_bits(self, capsys):
        assert main(["fig10", "--bit", "1"]) == 0
        assert "sensed: 1" in capsys.readouterr().out
        assert main(["fig10", "--bit", "0"]) == 0
        assert "sensed: 0" in capsys.readouterr().out

    def test_fig11_runs(self, capsys):
        assert main(["fig11"]) == 0
        out = capsys.readouterr().out
        assert "nondestructive" in out
        assert "16kb" in out

    def test_fig10_rejects_bad_bit(self):
        with pytest.raises(SystemExit):
            main(["fig10", "--bit", "2"])

    def test_export_writes_csv(self, capsys, tmp_path):
        assert main(["export", "--directory", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "CSV files" in out
        assert (tmp_path / "fig6_beta_sweep.csv").exists()


class TestObservabilityCommands:
    """`repro stats` and the --metrics-out/--trace-out artifact flags."""

    STATS = ["stats", "--bits", "720", "--seed", "7"]
    FAULTS = ["faults", "--bits", "2304", "--rates", "1e-3"]

    def test_stats_prints_metric_tables(self, capsys):
        assert main(self.STATS) == 0
        out = capsys.readouterr().out
        assert "instrumented workload" in out
        assert "core.reads.batch" in out
        assert "ecc.scrub.passes" in out
        assert "read_issued" in out

    def test_stats_writes_artifacts(self, capsys, tmp_path):
        metrics = tmp_path / "metrics.json"
        events = tmp_path / "events.jsonl"
        command = self.STATS + ["--metrics-out", str(metrics), "--trace-out", str(events)]
        assert main(command) == 0
        snap = json.loads(metrics.read_text())
        assert "profile" not in snap  # wall-clock kept out unless --profile
        assert snap["counters"]["ecc.scrub.passes"] >= 1
        lines = [json.loads(line) for line in events.read_text().splitlines()]
        assert lines and all("kind" in line and "seq" in line for line in lines)

    def test_stats_profile_flag_includes_wall_clock(self, capsys, tmp_path):
        metrics = tmp_path / "metrics.json"
        assert main(self.STATS + ["--metrics-out", str(metrics), "--profile"]) == 0
        assert "profile" in json.loads(metrics.read_text())

    def test_stats_metrics_deterministic_across_runs(self, capsys, tmp_path):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        assert main(self.STATS + ["--metrics-out", str(first)]) == 0
        assert main(self.STATS + ["--metrics-out", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_faults_writes_reconciling_metrics(self, capsys, tmp_path):
        metrics = tmp_path / "metrics.json"
        events = tmp_path / "events.jsonl"
        command = self.FAULTS + ["--metrics-out", str(metrics), "--trace-out", str(events)]
        assert main(command) == 0
        out = capsys.readouterr().out
        assert "fault campaign" in out
        counters = json.loads(metrics.read_text())["counters"]
        words = sum(
            value
            for key, value in counters.items()
            if key.startswith("campaign.words{")
        )
        tiers = sum(
            value
            for key, value in counters.items()
            if key.startswith("recovery.words{")
        )
        assert words == tiers > 0
        assert events.read_text().strip()

    def test_faults_without_flags_stays_unmetered(self, capsys):
        from repro import obs

        assert main(self.FAULTS) == 0
        assert not obs.active()
        assert obs.get_registry().merge_counters(["campaign.words"]) == 0


class TestServeCommand:
    """`repro serve` — the trace-driven memory-controller simulation."""

    SERVE = ["serve", "--requests", "400", "--seed", "7"]

    def test_serve_prints_summary(self, capsys):
        assert main(self.SERVE) == 0
        out = capsys.readouterr().out
        assert "service simulation" in out
        assert "throughput" in out
        assert "p50/p99" in out

    def test_serve_check_passes(self, capsys):
        assert main(self.SERVE + ["--check"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_serve_trace_round_trip(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(self.SERVE + ["--trace-out", str(trace)]) == 0
        first = capsys.readouterr().out
        assert trace.exists()
        assert main(["serve", "--trace-in", str(trace), "--check"]) == 0
        second = capsys.readouterr().out
        assert "PASS" in second

        # Replaying the saved trace reproduces the identical summary rows.
        def summary_rows(text):
            return [line for line in text.splitlines()
                    if "|" in line and "metric" not in line]

        assert summary_rows(first) == summary_rows(second)

    def test_serve_metrics_out(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        command = self.SERVE + ["--policy", "batch", "--metrics-out", str(metrics)]
        assert main(command) == 0
        snapshot = json.loads(metrics.read_text())
        assert "profile" not in snapshot
        gauges = snapshot["gauges"]
        key = "service.read_latency_p99_ns{policy=batch,scheme=nondestructive}"
        assert gauges[key] > 0.0
        assert snapshot["histograms"]["service.latency_ns{op=read}"]["count"] == 400

    def test_serve_backed_reports_recovery(self, capsys):
        command = ["serve", "--requests", "120", "--seed", "7",
                   "--backed", "--fault-rate", "1e-3"]
        assert main(command) == 0
        assert "recovery" in capsys.readouterr().out

    def test_serve_write_fraction_and_cache(self, capsys):
        command = self.SERVE + ["--write-fraction", "0.2", "--cache", "64",
                                "--addressing", "zipfian"]
        assert main(command) == 0
        out = capsys.readouterr().out
        assert "writes" in out
        assert "cache hit rate" in out


class TestServeTopologyCommand:
    """`repro serve --topology` — the sharded channel/rank/bank hierarchy."""

    SERVE = ["serve", "--requests", "200", "--seed", "7",
             "--addressing", "zipfian"]

    def test_topology_summary_and_check(self, capsys):
        command = self.SERVE + ["--topology", "2x2x2", "--rows", "64",
                                "--interleave", "bank-xor", "--check"]
        assert main(command) == 0
        out = capsys.readouterr().out
        assert "topology service simulation" in out
        assert "2x2x2 topology (8 banks)" in out
        assert "bank-xor interleave" in out
        assert "channel loads" in out
        assert "rank loads" in out
        assert "PASS" in out

    def test_topology_multiprocess_check(self, capsys):
        command = self.SERVE + ["--topology", "2x1x2", "--rows", "64",
                                "--shards", "2", "--check"]
        assert main(command) == 0
        out = capsys.readouterr().out
        assert "2 shard process(es)" in out
        assert "PASS" in out

    def test_topology_metrics_out(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        command = self.SERVE + ["--topology", "2x1x2", "--rows", "64",
                                "--metrics-out", str(metrics)]
        assert main(command) == 0
        gauges = json.loads(metrics.read_text())["gauges"]
        assert gauges["service.topology.channels"] == 2
        assert "service.topology.channel_served{channel=0}" in gauges

    def test_bad_topology_spec_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self.SERVE + ["--topology", "abc"])
        assert excinfo.value.code == 2
        assert "invalid topology" in capsys.readouterr().out

    def test_adaptive_does_not_compose_with_topology(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self.SERVE + ["--topology", "2x1x2", "--adaptive"])
        assert excinfo.value.code == 2
        assert "static policies only" in capsys.readouterr().out


class TestProdtestCommand:
    """`repro prodtest` — the wafer-scale production test & trim flow."""

    PRODTEST = ["prodtest", "--dies", "24", "--seed", "2010"]

    def test_all_schemes_table(self, capsys):
        assert main(self.PRODTEST) == 0
        out = capsys.readouterr().out
        for scheme in ("conventional", "destructive", "nondestructive"):
            assert scheme in out
        assert "yield" in out and "$/bit" in out

    def test_single_scheme_diagnosis(self, capsys):
        assert main(self.PRODTEST + ["--scheme", "nondestructive"]) == 0
        out = capsys.readouterr().out
        assert "nondestructive" in out
        assert "coverage" in out

    def test_check_gate_passes(self, capsys):
        command = self.PRODTEST + ["--scheme", "conventional", "--check"]
        assert main(command) == 0
        assert "PASS" in capsys.readouterr().out

    def test_metrics_out(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        command = self.PRODTEST + [
            "--scheme", "destructive", "--metrics-out", str(metrics)
        ]
        assert main(command) == 0
        gauges = json.loads(metrics.read_text())["gauges"]
        assert "prodtest.yield{scheme=destructive}" in gauges
        assert "prodtest.coverage{kind=overall}" in gauges

    def test_bad_march_rejected(self):
        with pytest.raises(SystemExit):
            main(["prodtest", "--march", "march-z"])
