"""CLI tests: every experiment subcommand runs and prints its headline."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_registered(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name] if name != "fig10" else [name, "--bit", "0"])
            assert args.experiment == name

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestCommands:
    @pytest.mark.parametrize(
        "command, expect",
        [
            (["table1"], "Table I"),
            (["table2"], "Table II"),
            (["fig2"], "R–I"),
            (["fig6"], "optima"),
            (["fig7"], "windows"),
            (["fig8"], "window"),
            (["fig9"], "SLT1"),
            (["latency"], "faster"),
            (["energy"], "lower"),
            (["corners"], "Temperature corners"),
            (["disturb"], "read-disturb budget"),
            (["trim"], "compensating divider skew"),
            (["capacity"], "capacity projection"),
            (["sensitivity"], "sensitivity"),
            (["ber"], "error budget"),
            (["list"], "available experiments"),
        ],
    )
    def test_command_output(self, command, expect, capsys):
        assert main(command) == 0
        assert expect in capsys.readouterr().out

    def test_fig10_both_bits(self, capsys):
        assert main(["fig10", "--bit", "1"]) == 0
        assert "sensed: 1" in capsys.readouterr().out
        assert main(["fig10", "--bit", "0"]) == 0
        assert "sensed: 0" in capsys.readouterr().out

    def test_fig11_runs(self, capsys):
        assert main(["fig11"]) == 0
        out = capsys.readouterr().out
        assert "nondestructive" in out
        assert "16kb" in out

    def test_fig10_rejects_bad_bit(self):
        with pytest.raises(SystemExit):
            main(["fig10", "--bit", "2"])

    def test_export_writes_csv(self, capsys, tmp_path):
        assert main(["export", "--directory", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "CSV files" in out
        assert (tmp_path / "fig6_beta_sweep.csv").exists()
