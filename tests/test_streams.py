"""The reserved RNG-stream registry: distinctness and byte-identity.

Every subsystem that fans one user-facing ``--seed`` into its own
randomness does it through ``repro.streams``.  Two contracts are pinned
here:

* **distinctness** — no two reserved streams share a ``k``, and new
  streams sit above the command-local legacy block 0–4, so subsystems
  cannot silently correlate;
* **byte-identity** — ``stream_rng(seed, name)`` produces the exact
  generator the historical hard-coded ``np.random.default_rng((seed, k))``
  construction did, for every pre-existing stream.  The literal ``k``
  values are spelled out below on purpose: renumbering a stream is a
  reproducibility break and must fail this file.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.streams import (
    RESERVED_STREAMS,
    stream_key,
    stream_rng,
    stream_sequence,
)

#: The historical hard-coded assignments, as literals (not imports), so a
#: registry renumbering cannot rewrite the expectation it is tested against.
HISTORICAL = {
    "workload": 0,
    "drift": 5,
    "shards": 6,
    "failures": 7,
    "prodtest": 8,
}

LEGACY_BLOCK = range(0, 5)


class TestRegistry:
    def test_every_reserved_stream_is_distinct(self):
        values = list(RESERVED_STREAMS.values())
        assert len(values) == len(set(values))

    def test_registry_matches_historical_assignments(self):
        assert dict(RESERVED_STREAMS) == HISTORICAL

    def test_post_registry_streams_sit_above_the_legacy_block(self):
        # workload (k=0) predates the registry; everything added since
        # must not reuse the command-local faults/stats substreams 1-4.
        for name, k in RESERVED_STREAMS.items():
            if name == "workload":
                continue
            assert k not in LEGACY_BLOCK or k == 0, (name, k)
            assert k >= 5, (name, k)

    def test_registry_is_read_only(self):
        with pytest.raises(TypeError):
            RESERVED_STREAMS["rogue"] = 99  # type: ignore[index]

    def test_stream_key_resolves_names_and_ints(self):
        assert stream_key(2010, "prodtest") == (2010, 8)
        assert stream_key(2010, 8) == (2010, 8)
        assert stream_key(np.int64(7), "drift") == (7, 5)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            stream_key(1, "wafers")

    def test_negative_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            stream_key(1, -3)


class TestByteIdentity:
    """``stream_rng``/``stream_sequence`` == the historical literals."""

    @pytest.mark.parametrize("name,k", sorted(HISTORICAL.items()))
    @pytest.mark.parametrize("seed", [0, 7, 2010])
    def test_stream_rng_matches_hardcoded_tuple_seed(self, name, k, seed):
        ours = stream_rng(seed, name)
        historical = np.random.default_rng((seed, k))
        assert ours.bytes(64) == historical.bytes(64)

    @pytest.mark.parametrize("name,k", sorted(HISTORICAL.items()))
    def test_stream_sequence_matches_hardcoded_tuple_seed(self, name, k):
        ours = stream_sequence(2010, name)
        historical = np.random.SeedSequence((2010, k))
        np.testing.assert_array_equal(
            ours.generate_state(4), historical.generate_state(4)
        )

    def test_independent_streams_draw_differently(self):
        draws = {
            name: stream_rng(2010, name).bytes(32) for name in HISTORICAL
        }
        assert len(set(draws.values())) == len(draws)


class TestCallSitesRouteThroughRegistry:
    """The subsystems that historically hard-coded their ``k`` must now
    reproduce the same draws *via* the registry."""

    def test_shard_seed_split_is_the_historical_spawn(self):
        from repro.service.topology import shard_seeds

        sequence = np.random.SeedSequence((2010, 6))
        expected = tuple(
            int(child.generate_state(1, np.uint64)[0])
            for child in sequence.spawn(4)
        )
        assert shard_seeds(2010, 4) == expected

    def test_failure_scenarios_draw_from_stream_seven(self):
        from repro.service.failures import build_failure_scenario

        one = build_failure_scenario("bank-offline", 1.0, seed=11)
        two = build_failure_scenario("bank-offline", 1.0, seed=11)
        assert one == two

    def test_wafer_sampling_draws_from_stream_eight(self):
        from repro.prodtest import WaferConfig, build_wafer

        config = WaferConfig(dies=4)
        one = build_wafer(config)
        two = build_wafer(config)
        np.testing.assert_array_equal(one.alpha_skew, two.alpha_skew)
        np.testing.assert_array_equal(
            one.population.r_low0, two.population.r_low0
        )
