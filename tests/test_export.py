"""CSV figure-export tests."""

import csv

import numpy as np
import pytest

from repro.analysis.export import export_all_figures, write_series_csv
from repro.errors import ConfigurationError


class TestWriteSeriesCsv:
    def test_roundtrip(self, tmp_path):
        path = write_series_csv(
            tmp_path / "out.csv",
            "x",
            [0.0, 1.0, 2.0],
            {"a": [0.0, 1.0, 4.0], "b": [0.0, -1.0, -2.0]},
        )
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["x", "a", "b"]
        assert len(rows) == 4
        assert float(rows[2][1]) == 1.0

    def test_full_precision(self, tmp_path):
        value = 0.07659123456789012
        path = write_series_csv(tmp_path / "p.csv", "x", [0.0], {"y": [value]})
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert float(rows[1][1]) == value

    def test_creates_directories(self, tmp_path):
        path = write_series_csv(
            tmp_path / "a" / "b" / "c.csv", "x", [0.0], {"y": [1.0]}
        )
        assert path.exists()

    def test_rejects_length_mismatch(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_series_csv(tmp_path / "bad.csv", "x", [0.0, 1.0], {"y": [1.0]})


class TestExportAll:
    def test_exports_every_figure(self, tmp_path):
        written = export_all_figures(tmp_path)
        names = {path.name for path in written}
        assert "fig2_ri_curve.csv" in names
        assert "fig6_beta_sweep.csv" in names
        assert "fig7_rtr_sweep.csv" in names
        assert "fig8_alpha_sweep.csv" in names
        assert "fig11_nondestructive_scatter.csv" in names
        assert all(path.exists() for path in written)

    def test_fig11_has_16k_rows(self, tmp_path):
        written = export_all_figures(tmp_path)
        scatter = next(p for p in written if p.name == "fig11_conventional_scatter.csv")
        with scatter.open() as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 16384 + 1  # header + one row per bit

    def test_fig6_columns(self, tmp_path):
        written = export_all_figures(tmp_path)
        fig6 = next(p for p in written if p.name == "fig6_beta_sweep.csv")
        with fig6.open() as handle:
            header = next(csv.reader(handle))
        assert header[0] == "beta"
        assert "sm1_nondestructive_V" in header
