"""Tests for the production test flow, the queueing scheduler, and the
distributed bit-line ladder."""

import numpy as np
import pytest

from repro.array.scheduler import simulate_read_queue
from repro.array.testflow import DieResult, TestFlowConfig, run_test_flow, yield_curve
from repro.circuit.bitline import PAPER_BITLINE, BitlineModel
from repro.circuit.distributed import bitline_step_response, build_bitline_ladder
from repro.circuit.mna import Circuit
from repro.device.variation import CellPopulation
from repro.errors import ConfigurationError


class TestTestFlow:
    @pytest.fixture
    def die(self, rng, calibration):
        from repro.array.testchip import TESTCHIP_VARIATION

        return CellPopulation.sample(
            64 * 64,
            TESTCHIP_VARIATION.scaled(2.0),
            params=calibration.params,
            rolloff_high=calibration.rolloff_high(),
            rolloff_low=calibration.rolloff_low(),
            rng=rng,
        )

    def test_flow_produces_decision(self, die, calibration):
        result = run_test_flow(die, calibration=calibration)
        assert isinstance(result, DieResult)
        assert result.fails_after_trim <= result.fails_before_trim
        assert result.uncovered_fails >= 0

    def test_trim_step_reduces_fails(self, die, calibration):
        with_trim = run_test_flow(die, TestFlowConfig(trim=True), calibration)
        without = run_test_flow(die, TestFlowConfig(trim=False), calibration)
        assert with_trim.fails_after_trim <= without.fails_after_trim
        assert without.trim is None
        assert with_trim.trim is not None

    def test_population_size_checked(self, rng, calibration):
        from repro.device.variation import VariationModel

        small = CellPopulation.sample(100, VariationModel(), rng=rng)
        with pytest.raises(ConfigurationError):
            run_test_flow(small, TestFlowConfig(rows=64, columns=64), calibration)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TestFlowConfig(rows=0)
        with pytest.raises(ConfigurationError):
            TestFlowConfig(spare_rows=-1)

    def test_yield_curve_monotone_decline(self):
        records = yield_curve([1.0, 3.0], dies_per_point=2,
                              config=TestFlowConfig(rows=32, columns=32))
        assert records[0]["yield"] >= records[1]["yield"]
        assert records[0]["scale"] == 1.0

    def test_yield_perfect_at_nominal_variation(self):
        records = yield_curve([1.0], dies_per_point=3,
                              config=TestFlowConfig(rows=32, columns=32))
        assert records[0]["yield"] == 1.0
        assert records[0]["mean_fails"] == 0.0

    def test_yield_curve_validation(self):
        with pytest.raises(ConfigurationError):
            yield_curve([1.0], dies_per_point=0)


class TestQueueing:
    def test_light_load_latency_near_service_time(self, rng):
        result = simulate_read_queue(
            service_time=15e-9, arrival_rate=1e6, banks=4, requests=2000, rng=rng
        )
        assert result.mean_latency == pytest.approx(15e-9, rel=0.05)
        assert result.mean_queue_delay < 0.05 * 15e-9

    def test_heavy_load_queues(self, rng):
        light = simulate_read_queue(15e-9, 1e7, banks=4, requests=4000, rng=rng)
        heavy = simulate_read_queue(15e-9, 2.2e8, banks=4, requests=4000, rng=rng)
        assert heavy.mean_latency > 1.5 * light.mean_latency
        assert heavy.p99_latency > heavy.mean_latency

    def test_destructive_scheme_queues_worse(self, rng):
        # Same arrival rate, both stable: the 27 ns service time queues far
        # worse than the 12.6 ns one — the §V latency gap compounds.
        rate = 1.1e8
        nondes = simulate_read_queue(12.6e-9, rate, banks=4, requests=6000,
                                     rng=np.random.default_rng(1))
        dest = simulate_read_queue(27.1e-9, rate, banks=4, requests=6000,
                                   rng=np.random.default_rng(1))
        assert dest.slowdown > nondes.slowdown
        assert dest.mean_latency > 2 * nondes.mean_latency

    def test_more_banks_reduce_queueing(self, rng):
        few = simulate_read_queue(15e-9, 1.5e8, banks=4, requests=4000,
                                  rng=np.random.default_rng(2))
        many = simulate_read_queue(15e-9, 1.5e8, banks=16, requests=4000,
                                   rng=np.random.default_rng(2))
        assert many.mean_queue_delay < few.mean_queue_delay

    def test_unstable_load_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            simulate_read_queue(15e-9, 1e9, banks=4, rng=rng)

    def test_parameter_validation(self, rng):
        with pytest.raises(ConfigurationError):
            simulate_read_queue(0.0, 1e6, rng=rng)
        with pytest.raises(ConfigurationError):
            simulate_read_queue(15e-9, 1e6, banks=0, rng=rng)

    # ------------------------------------------------------------------
    # Engine-wrapper regression: bit-exact vs the pre-refactor loop
    # ------------------------------------------------------------------
    @pytest.mark.parametrize(
        "seed, service_time, rate, banks, requests, mean, p99, queue_delay",
        [
            (11, 15e-9, 1e8, 4, 4096,
             1.9335181625196218e-08, 4.717648507090249e-08,
             4.3351816251967185e-09),
            (7, 27.1e-9, 8e7, 4, 2000,
             4.0869120944120524e-08, 1.1337692530475704e-07,
             1.3769120944121062e-08),
            (123, 12.6e-9, 2.0e8, 8, 3000,
             1.5647033328893273e-08, 3.77261204536148e-08,
             3.0470333288930815e-09),
        ],
    )
    def test_engine_wrapper_matches_legacy_loop_exactly(
        self, seed, service_time, rate, banks, requests, mean, p99, queue_delay
    ):
        # Pinned outputs captured from the pre-refactor hand-rolled loop:
        # the discrete-event rewrite must reproduce them to the last bit.
        result = simulate_read_queue(
            service_time, rate, banks=banks, requests=requests,
            rng=np.random.default_rng(seed),
        )
        assert result.mean_latency == mean
        assert result.p99_latency == p99
        assert result.mean_queue_delay == queue_delay

    def test_matches_inline_legacy_algorithm(self):
        # Re-run the historical algorithm inline on the same draws and
        # demand float-for-float agreement, not approximation.
        service_time, rate, banks, requests = 18e-9, 1.3e8, 4, 1500
        result = simulate_read_queue(
            service_time, rate, banks=banks, requests=requests,
            rng=np.random.default_rng(99),
        )
        rng = np.random.default_rng(99)
        arrivals = np.cumsum(rng.exponential(1.0 / rate, requests))
        targets = rng.integers(0, banks, requests)
        bank_free_at = np.zeros(banks)
        latencies = np.empty(requests)
        delays = np.empty(requests)
        for index in range(requests):
            start = max(arrivals[index], bank_free_at[targets[index]])
            finish = start + service_time
            bank_free_at[targets[index]] = finish
            latencies[index] = finish - arrivals[index]
            delays[index] = start - arrivals[index]
        assert result.mean_latency == float(np.mean(latencies))
        assert result.p99_latency == float(np.percentile(latencies, 99.0))
        assert result.mean_queue_delay == float(np.mean(delays))

    # ------------------------------------------------------------------
    # Edge cases
    # ------------------------------------------------------------------
    def test_offered_load_at_saturation_rejected(self, rng):
        # offered = rate * service / banks == 1.0 exactly: unstable.
        with pytest.raises(ConfigurationError):
            simulate_read_queue(10e-9, 4e8, banks=4, rng=rng)

    def test_zero_arrival_stream_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            simulate_read_queue(15e-9, 0.0, rng=rng)
        with pytest.raises(ConfigurationError):
            simulate_read_queue(15e-9, 1e6, requests=0, rng=rng)

    def test_single_bank_degenerate_case(self):
        # One bank serializes everything; still stable below load 1 and
        # strictly worse than the same traffic over four banks.
        one = simulate_read_queue(15e-9, 4e7, banks=1, requests=3000,
                                  rng=np.random.default_rng(5))
        four = simulate_read_queue(15e-9, 4e7, banks=4, requests=3000,
                                   rng=np.random.default_rng(5))
        assert one.offered_load == pytest.approx(0.6)
        assert one.mean_latency > four.mean_latency
        assert one.mean_latency >= 15e-9

    def test_single_request(self):
        result = simulate_read_queue(15e-9, 1e6, banks=4, requests=1,
                                     rng=np.random.default_rng(3))
        assert result.mean_latency == pytest.approx(15e-9)
        assert result.mean_queue_delay == 0.0


class TestDistributedBitline:
    def test_ladder_node_count(self):
        circuit = Circuit()
        far = build_bitline_ladder(circuit, PAPER_BITLINE, segments=8)
        assert far == "bl_far"
        # near node + 7 internal + far = 9 ladder nodes.
        assert len(circuit.node_names) == 9

    def test_dc_resistance_preserved(self):
        circuit = Circuit()
        far = build_bitline_ladder(circuit, PAPER_BITLINE, segments=8)
        circuit.add_current_source("gnd", far, 1e-3, name="I")
        circuit.add_resistor("BL", "gnd", 1e-3, name="short")  # ~short to gnd
        result = circuit.solve_dc()
        drop = result[far] - result["BL"]
        assert drop == pytest.approx(
            1e-3 * PAPER_BITLINE.total_wire_resistance, rel=1e-6
        )

    def test_step_response_settles_to_ir(self):
        response = bitline_step_response(PAPER_BITLINE, cell_resistance=3000.0)
        # Far cell at DC: V_near = I * (R_cell) only if sense end floats —
        # the near end carries no DC current, so it sits at the injection
        # node voltage minus zero wire drop: I * R_cell.
        assert response.final_voltage == pytest.approx(200e-6 * 3000.0, rel=0.01)

    def test_elmore_same_order_as_simulated_delay(self):
        response = bitline_step_response(PAPER_BITLINE, cell_resistance=3000.0)
        # Elmore is a crude but same-order estimate of the 50% delay for
        # RC ladders driven through a large source resistance.
        assert response.delay_50 < 5 * response.elmore_estimate
        assert response.settle_99 > response.delay_50

    def test_longer_bitline_slower(self):
        short = bitline_step_response(
            BitlineModel(cells_per_bitline=64), cell_resistance=3000.0
        )
        long = bitline_step_response(
            BitlineModel(cells_per_bitline=256), cell_resistance=3000.0
        )
        assert long.settle_99 > short.settle_99

    def test_validation(self):
        circuit = Circuit()
        with pytest.raises(ConfigurationError):
            build_bitline_ladder(circuit, PAPER_BITLINE, segments=0)
        with pytest.raises(ConfigurationError):
            bitline_step_response(PAPER_BITLINE, cell_resistance=0.0)
