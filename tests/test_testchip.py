"""16kb test-chip experiment tests (paper Fig. 11)."""

import numpy as np
import pytest

from repro.array.testchip import TESTCHIP_VARIATION, run_testchip_experiment
from repro.array.testchip import TestChip as ChipConfig
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def result():
    """One full 16kb run (module-scoped: it is the expensive fixture)."""
    return run_testchip_experiment()


class TestChipGeometry:
    def test_paper_dimensions(self):
        chip = ChipConfig()
        assert chip.bits == 16384
        assert chip.rows == 128
        assert chip.columns == 128

    def test_rejects_degenerate(self):
        with pytest.raises(ConfigurationError):
            ChipConfig(rows=0)


class TestFig11Outcome:
    def test_conventional_fails_about_one_percent(self, result):
        # Paper §V: "about 1% of bits failed to be readout by conventional
        # sensing scheme".
        assert 0.005 < result.conventional_fail_fraction < 0.02

    def test_both_self_reference_schemes_pass_all_bits(self, result):
        # Paper §V: "both destructive and nondestructive self-reference
        # schemes successfully sensed all measured bits".
        assert result.self_reference_all_pass
        assert result.report["destructive"].fail_count == 0
        assert result.report["nondestructive"].fail_count == 0

    def test_destructive_margins_larger_than_nondestructive(self, result):
        assert (
            result.report["destructive"].mean_margin
            > 3 * result.report["nondestructive"].mean_margin
        )

    def test_nondestructive_margins_cluster_above_window(self, result):
        stats = result.report["nondestructive"]
        assert stats.min_margin > 8e-3
        assert stats.mean_margin == pytest.approx(12.1e-3, rel=0.2)

    def test_conventional_failures_are_tail_bits(self, result):
        # Failing bits sit in the resistance tails, not uniformly.
        conv = result.margins["conventional"]
        fail_mask = conv.fail_mask(8e-3)
        r_low = result.population.r_low0
        spread_all = np.std(r_low)
        spread_fail = np.std(r_low[fail_mask])
        # Tail bits: wider spread (bimodal high/low tails + vref errors).
        assert spread_fail > spread_all

    def test_scatter_shapes(self, result):
        sm0, sm1 = result.scatter("nondestructive")
        assert sm0.shape == (16384,)
        assert sm1.shape == (16384,)

    def test_scatter_unknown_scheme(self, result):
        with pytest.raises(KeyError):
            result.scatter("quantum")


class TestReproducibility:
    def test_default_seed_reproducible(self):
        a = run_testchip_experiment(ChipConfig(rows=16, columns=16))
        b = run_testchip_experiment(ChipConfig(rows=16, columns=16))
        assert a.report["conventional"].fail_count == b.report["conventional"].fail_count
        assert np.array_equal(a.population.r_high0, b.population.r_high0)

    def test_custom_rng(self):
        small = ChipConfig(rows=16, columns=16)
        a = run_testchip_experiment(small, rng=np.random.default_rng(1))
        b = run_testchip_experiment(small, rng=np.random.default_rng(2))
        assert not np.array_equal(a.population.r_high0, b.population.r_high0)

    def test_custom_required_margin(self):
        small = ChipConfig(rows=16, columns=16)
        strict = run_testchip_experiment(small, required_margin=50e-3)
        # A 50 mV requirement kills every nondestructive bit (~12 mV margins).
        assert strict.report["nondestructive"].fail_fraction == 1.0


class TestPhysicalReferenceMode:
    def test_reference_pairs_mode_runs(self):
        result = run_testchip_experiment(
            ChipConfig(rows=32, columns=32),
            rng=np.random.default_rng(9),
            reference_pairs=1,
        )
        # Column-correlated reference errors: bits in the same column share
        # one error value.
        errors = result.population.vref_error.reshape(32, 32)
        assert np.allclose(errors, errors[0][None, :])

    def test_more_pairs_reduce_reference_error(self):
        few = run_testchip_experiment(
            ChipConfig(rows=16, columns=64),
            rng=np.random.default_rng(4),
            reference_pairs=1,
        )
        many = run_testchip_experiment(
            ChipConfig(rows=16, columns=64),
            rng=np.random.default_rng(4),
            reference_pairs=16,
        )
        assert np.std(many.population.vref_error) < np.std(few.population.vref_error)

    def test_self_reference_immune_to_reference_construction(self):
        result = run_testchip_experiment(
            ChipConfig(rows=32, columns=32),
            rng=np.random.default_rng(9),
            reference_pairs=1,
        )
        assert result.self_reference_all_pass


class TestVariationScaling:
    def test_double_variation_fails_more_conventional_bits(self):
        base = ChipConfig(rows=32, columns=32)
        doubled = ChipConfig(
            rows=32, columns=32, variation=TESTCHIP_VARIATION.scaled(2.0)
        )
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        base_fail = run_testchip_experiment(base, rng_a).conventional_fail_fraction
        doubled_fail = run_testchip_experiment(doubled, rng_b).conventional_fail_fraction
        assert doubled_fail > base_fail
