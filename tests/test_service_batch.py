"""Batch-first backed serving: bit-exactness, draw-order, and metering.

The contract under test (``docs/SERVICE.md``, "Batched backed serving"):
routing a coalesced read group through the vectorized recovery ladder
(``ArrayBackend.read_batch`` → ``RecoveryController.read_words`` →
``EccArray.probe_words`` → ``HammingSECDED.decode_words``) must produce
the *identical* completion stream, backend statistics, and service report
as the historical word-by-word path — the only sanctioned divergence is
injector noise transients, which deliberately draw once per group.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.calibration import PAPER_TARGETS, calibrate
from repro.core.retry import RetryPolicy
from repro.array.array import STTRAMArray
from repro.array.testchip import TESTCHIP_VARIATION
from repro.device.variation import CellPopulation
from repro.ecc.array import EccArray
from repro.ecc.hamming import DecodeStatus, HammingSECDED
from repro.errors import ConfigurationError
from repro.faults import LostWord, RecoveredWord, build_scheme
from repro.faults.recovery import RecoveryController
from repro.service import (
    BACKEND_BATCHED,
    BACKEND_MODES,
    BACKEND_SCALAR,
    ArrayBackend,
    ControllerConfig,
    DiscreteEventEngine,
    MemoryController,
    ReadCache,
    Request,
    build_backend,
    build_workload,
)
from repro.service.report import build_report
from repro.service.workload import WRITE


def _read(rid, time, address):
    return Request(rid, time, address)


def _config(**kw):
    base = dict(read_time=10e-9, write_time=10e-9, banks=1)
    base.update(kw)
    return ControllerConfig(**base)


def _run_backed(mode, *, policy="batch", batch_limit=16, backend_window=1,
                fault_rate=1e-3, transients=False, requests=400, rate=1e9,
                write_fraction=0.1, scheme="nondestructive", seed=2010):
    """One backed simulation; returns (report, completions, backend stats)."""
    stream = build_workload(rate=rate, addresses=2048,
                            write_fraction=write_fraction)
    workload = stream.generate(requests, np.random.default_rng((seed, 3)))
    backend, retry = build_backend(scheme, seed + 1, fault_rate=fault_rate,
                                   transients=transients)
    from repro.service import scheme_service_times

    read_time, write_time = scheme_service_times(scheme)
    config = ControllerConfig(read_time=read_time, write_time=write_time,
                              banks=4, batch_limit=batch_limit,
                              backend_window=backend_window)
    engine = DiscreteEventEngine()
    controller = MemoryController(engine, config, policy=policy,
                                  backend=backend, retry_policy=retry,
                                  backend_mode=mode)
    controller.submit_all(workload)
    engine.run()
    return build_report(controller), list(controller.completions), \
        backend.statistics()


# ---------------------------------------------------------------------------
# Codec: vectorized decode equals the scalar decoder row for row
# ---------------------------------------------------------------------------
class TestDecodeWords:
    @pytest.mark.parametrize("data_bits", [8, 11, 64])
    def test_matches_scalar_decode_per_row(self, data_bits):
        codec = HammingSECDED(data_bits)
        rng = np.random.default_rng(17)
        words = rng.integers(0, 1 << min(data_bits, 62), size=120)
        matrix = np.stack([codec.encode_word(int(w)) for w in words])
        # 0, 1, 2, or 3 random flips per row → CLEAN/CORRECTED/DETECTED mix.
        for row, flips in enumerate(rng.integers(0, 4, size=len(words))):
            for pos in rng.choice(codec.codeword_bits, size=flips,
                                  replace=False):
                matrix[row, pos] ^= 1
        batch = codec.decode_words(matrix)
        assert batch.size == len(words)
        statuses = set()
        for row in range(len(words)):
            ref = codec.decode(matrix[row])
            assert batch.statuses[row] is ref.status
            assert int(batch.corrected_positions[row]) == ref.corrected_position
            assert np.array_equal(batch.data[row], ref.data)
            assert batch.values[row] == codec.bits_to_int(ref.data)
            assert batch.result(row).status is ref.status
            statuses.add(ref.status)
        assert statuses == {DecodeStatus.CLEAN, DecodeStatus.CORRECTED,
                            DecodeStatus.DETECTED}

    def test_shape_validated(self):
        codec = HammingSECDED(8)
        with pytest.raises(ConfigurationError):
            codec.decode_words(np.zeros(codec.codeword_bits, dtype=np.uint8))
        with pytest.raises(ConfigurationError):
            codec.decode_words(np.zeros((3, codec.codeword_bits + 1),
                                        dtype=np.uint8))


# ---------------------------------------------------------------------------
# Engine: bulk calendar load is order-identical to sequential scheduling
# ---------------------------------------------------------------------------
class TestScheduleBatch:
    def test_order_identical_to_sequential_scheduling(self):
        rng = np.random.default_rng(5)
        times = rng.uniform(0.0, 1e-6, size=200)
        sequential, bulk = [], []
        one = DiscreteEventEngine()
        for index, time in enumerate(times):
            one.schedule_at(float(time), sequential.append, index)
        two = DiscreteEventEngine()
        assert two.schedule_batch(
            (float(time), bulk.append, (index,))
            for index, time in enumerate(times)
        ) == 200
        one.run()
        two.run()
        assert bulk == sequential  # ties included

    def test_past_times_rejected_and_empty_ok(self):
        engine = DiscreteEventEngine()
        engine.schedule_at(5e-9, lambda: None)
        engine.run()
        with pytest.raises(ConfigurationError):
            engine.schedule_batch([(1e-9, lambda: None, ())])
        assert engine.schedule_batch([]) == 0


# ---------------------------------------------------------------------------
# EccArray probe: fused pass, escalation hints, rewind snapshot
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def chip():
    """Calibrated scheme pair + a sampled population shared by the module."""
    calibration = calibrate()
    rng = np.random.default_rng(404)
    population = CellPopulation.sample(
        13 * 24, TESTCHIP_VARIATION,
        params=calibration.params,
        rolloff_high=calibration.rolloff_high(),
        rolloff_low=calibration.rolloff_low(),
        rng=rng,
        r_tr_nominal=PAPER_TARGETS.r_transistor,
    )
    schemes = {
        name: build_scheme(name, calibration, PAPER_TARGETS.r_transistor)
        for name in ("nondestructive", "destructive")
    }
    return population, schemes


def _fresh_memory(chip, data_bits=8, seed=11):
    population, schemes = chip
    memory = EccArray(STTRAMArray(population.subset(np.arange(population.size))),
                      data_bits=data_bits)
    rng = np.random.default_rng(seed)
    for address in range(memory.size_words):
        memory.write_word(address, int(rng.integers(0, 1 << data_bits)))
    return memory, schemes


class TestProbeWords:
    def test_commit_matches_scalar_loop(self, chip):
        policy = RetryPolicy(max_attempts=3, backoff_ns=5.0)
        fused_mem, schemes = _fresh_memory(chip)
        loop_mem, _ = _fresh_memory(chip)
        for name in ("nondestructive", "destructive"):
            scheme = schemes[name]
            addresses = [0, 3, 1, 7]
            rng_a = np.random.default_rng(77)
            rng_b = np.random.default_rng(77)
            fused = fused_mem.read_words(addresses, scheme, rng_a,
                                         retry_policy=policy)
            loop = [loop_mem.read_word(a, scheme, rng_b, retry_policy=policy)
                    for a in addresses]
            assert fused == loop
            assert rng_a.bit_generator.state == rng_b.bit_generator.state
            assert np.array_equal(fused_mem.array._states,
                                  loop_mem.array._states)
            assert fused_mem.statistics == loop_mem.statistics

    def test_escalation_rewinds_state_and_rng(self, chip):
        memory, schemes = _fresh_memory(chip)
        scheme = schemes["destructive"]  # reads erase — rewind must undo it
        width = memory.codec.codeword_bits
        # Two flips in word 2's codeword → DETECTED → require_reliable
        # escalates the probe.
        memory.array._states[2 * width] ^= 1
        memory.array._states[2 * width + 1] ^= 1
        states_before = memory.array.stored_bits()
        stats_before = memory.statistics
        rng = np.random.default_rng(3)
        state_before = rng.bit_generator.state
        fused, bad = memory.probe_words([0, 1, 2, 3], scheme, rng,
                                        require_reliable=True)
        assert fused is None
        assert bad == (2,)  # the hint names exactly the escalating word
        assert np.array_equal(memory.array.stored_bits(), states_before)
        assert rng.bit_generator.state == state_before
        assert memory.statistics == stats_before  # nothing committed

    def test_duplicate_addresses_rejected(self, chip):
        memory, schemes = _fresh_memory(chip)
        with pytest.raises(ConfigurationError):
            memory.try_read_words([1, 2, 1], schemes["nondestructive"])

    def test_empty_group(self, chip):
        memory, schemes = _fresh_memory(chip)
        assert memory.read_words([], schemes["nondestructive"]) == []


# ---------------------------------------------------------------------------
# Backend: read_batch vs loop-of-read
# ---------------------------------------------------------------------------
def _fresh_backend(chip, seed=29, corrupt=(), injector=None):
    population, schemes = chip
    memory = EccArray(
        STTRAMArray(population.subset(np.arange(population.size))),
        data_bits=8,
    )
    ladder = RecoveryController(
        memory, RetryPolicy(max_attempts=3, backoff_ns=5.0), scrub_rounds=1
    )
    backend = ArrayBackend(ladder, schemes["nondestructive"],
                           np.random.default_rng(seed), injector=injector)
    for address in range(backend.size_words):
        backend.write(address, ArrayBackend.payload(address, data_bits=8))
    width = memory.codec.codeword_bits
    for address in corrupt:
        # Two permanent flips → DETECTED through every tier → lost word.
        memory.array._states[address * width] ^= 1
        memory.array._states[address * width + 1] ^= 1
    return backend


class TestReadBatch:
    def test_matches_loop_of_read(self, chip):
        batched = _fresh_backend(chip)
        scalar = _fresh_backend(chip)
        addresses = [0, 5, 2, 9, 2, 7, 0]  # duplicates split the fused run
        assert batched.read_batch(addresses) == \
            [scalar.read(a) for a in addresses]
        assert batched.statistics() == scalar.statistics()
        assert batched.rng.bit_generator.state == \
            scalar.rng.bit_generator.state
        assert np.array_equal(batched.memory.memory.array._states,
                              scalar.memory.memory.array._states)

    def test_group_where_every_word_exhausts_the_ladder(self, chip):
        group = [4, 8, 15]
        batched = _fresh_backend(chip, corrupt=group)
        scalar = _fresh_backend(chip, corrupt=group)
        outcomes = batched.read_batch(group)
        assert outcomes == [scalar.read(a) for a in group]
        assert all(failed for _, failed in outcomes)
        assert batched.failed_words == len(group)
        assert batched.statistics() == scalar.statistics()
        # The ladder reported the losses as LostWord results, not raises.
        words = _fresh_backend(chip, corrupt=group).memory.read_words(
            group, chip[1]["nondestructive"], np.random.default_rng(29)
        )
        assert all(isinstance(word, LostWord) and word.failed
                   for word in words)

    def test_mixed_group_loses_only_the_corrupted_word(self, chip):
        batched = _fresh_backend(chip, corrupt=(6,))
        scalar = _fresh_backend(chip, corrupt=(6,))
        addresses = [5, 6, 7, 8]
        outcomes = batched.read_batch(addresses)
        assert outcomes == [scalar.read(a) for a in addresses]
        assert [failed for _, failed in outcomes] == \
            [False, True, False, False]
        words = _fresh_backend(chip, corrupt=(6,)).memory.read_words(
            addresses, chip[1]["nondestructive"], np.random.default_rng(29)
        )
        assert isinstance(words[1], LostWord)
        assert all(isinstance(w, RecoveredWord) for i, w in enumerate(words)
                   if i != 1)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=23),
                    min_size=1, max_size=12))
    def test_property_read_batch_equals_loop(self, chip, addresses):
        batched = _fresh_backend(chip)
        scalar = _fresh_backend(chip)
        assert batched.read_batch(addresses) == \
            [scalar.read(a) for a in addresses]
        assert batched.statistics() == scalar.statistics()
        assert batched.rng.bit_generator.state == \
            scalar.rng.bit_generator.state

    def test_transients_draw_once_per_group(self, chip):
        from repro.faults.campaign import default_fault_models
        from repro.faults.injector import FaultInjector

        def injected():
            injector = FaultInjector(default_fault_models(1e-3),
                                     np.random.default_rng(55))
            return _fresh_backend(chip, injector=injector)

        group, single, loop = injected(), injected(), injected()
        group.read_batch([0, 1, 2])
        single.read(0)
        # One perturbation for the whole group — the injector RNG sits
        # exactly where a single scalar read leaves it...
        assert group.injector.rng.bit_generator.state == \
            single.injector.rng.bit_generator.state
        # ...whereas the scalar loop perturbs once per word (the
        # documented, deliberate divergence under noise transients).
        for address in (0, 1, 2):
            loop.read(address)
        assert loop.injector.rng.bit_generator.state != \
            group.injector.rng.bit_generator.state


# ---------------------------------------------------------------------------
# Controller: full-stack parity between the two backend modes
# ---------------------------------------------------------------------------
class TestBackendModes:
    def test_backend_mode_validated(self):
        assert set(BACKEND_MODES) == {BACKEND_BATCHED, BACKEND_SCALAR}
        engine = DiscreteEventEngine()
        with pytest.raises(ConfigurationError):
            MemoryController(engine, _config(), backend_mode="turbo")

    @pytest.mark.parametrize("policy,window", [
        ("batch", 1), ("fcfs", 8), ("read-priority", 4),
    ])
    def test_batched_serving_is_bit_exact(self, policy, window):
        results = {
            mode: _run_backed(mode, policy=policy, backend_window=window)
            for mode in BACKEND_MODES
        }
        report_b, completions_b, stats_b = results[BACKEND_BATCHED]
        report_s, completions_s, stats_s = results[BACKEND_SCALAR]
        assert completions_b == completions_s
        assert stats_b == stats_s
        assert report_b == report_s
        assert report_b.retried_words > 0  # the ladder actually fired

    def test_batch_limit_one_degenerates_even_with_noise_transients(self):
        # Groups of one fuse trivially, so batched == scalar even under
        # per-operation noise transients (one group == one operation).
        results = {
            mode: _run_backed(mode, batch_limit=1, transients=True)
            for mode in BACKEND_MODES
        }
        assert results[BACKEND_BATCHED] == results[BACKEND_SCALAR]

    def test_backend_window_default_keeps_scalar_order(self):
        report, completions, _ = _run_backed(
            BACKEND_BATCHED, policy="fcfs", backend_window=1
        )
        assert all(done.batched_with == 1 for done in completions)
        assert report.completed == 400

    def test_cache_hit_rides_with_backed_miss_group(self):
        backend, retry = build_backend("nondestructive", 31, fault_rate=0.0)
        engine = DiscreteEventEngine()
        controller = MemoryController(
            engine, _config(read_time=12e-9, banks=2, batch_limit=8),
            policy="batch", cache=ReadCache(16), backend=backend,
            retry_policy=retry,
        )
        controller.submit_all([
            _read(0, 0.0, 0),       # miss: fills the cache at completion
            _read(1, 1e-9, 2),      # same bank, queue while busy...
            _read(2, 2e-9, 4),      # ...coalesce into one backed group
            _read(3, 40e-9, 0),     # after refill: pure cache hit
        ])
        engine.run()
        by_id = {done.request.request_id: done
                 for done in controller.completions}
        assert by_id[3].cache_hit and by_id[3].bank == 0
        assert not by_id[0].cache_hit
        assert by_id[1].batched_with == 2 and by_id[2].batched_with == 2
        assert backend.reads == 3  # the hit never reached the array

    def test_batch_size_histogram_and_failed_counter_metered(self):
        with obs.capture() as (registry, _):
            report, _, _ = _run_backed(BACKEND_BATCHED)
            hist = registry.histogram("service.backend.batch_size")
            failed = registry.counter("service.backend.failed_words")
            attempts = registry.histogram("service.backend.attempts")
        assert hist is not None and hist["count"] > 0
        assert hist["max"] > 1  # saturation actually coalesced groups
        assert attempts["count"] == report.reads
        assert failed == report.failed_words

    def test_cli_knobs_round_trip(self):
        config = ControllerConfig(read_time=1e-8, write_time=1e-8,
                                  batch_limit=3, batch_extra_fraction=0.5,
                                  backend_window=2)
        assert config.batch_duration(3) == pytest.approx(2e-8)
        with pytest.raises(ConfigurationError):
            ControllerConfig(read_time=1e-8, write_time=1e-8,
                             backend_window=0)
