"""ASCII scatter-plot renderer tests."""

import numpy as np
import pytest

from repro.analysis.scatter import ascii_scatter
from repro.errors import ConfigurationError


class TestAsciiScatter:
    def test_renders_axes_and_labels(self):
        x = np.array([0.01, 0.02, 0.03])
        y = np.array([0.01, 0.02, 0.03])
        text = ascii_scatter(x, y)
        assert "SM0 [mV]" in text
        assert "SM1 [mV]" in text
        assert "+---" in text

    def test_dense_region_uses_heavier_shade(self):
        rng = np.random.default_rng(0)
        # A tight cluster plus one outlier: the cluster cell must use a
        # heavier shade than the outlier's single point.
        x = np.concatenate([rng.normal(0.01, 1e-5, 500), [0.03]])
        y = np.concatenate([rng.normal(0.01, 1e-5, 500), [0.03]])
        text = ascii_scatter(x, y)
        assert "@" in text or "#" in text
        assert "." in text

    def test_boundary_lines_drawn(self):
        x = np.linspace(0.001, 0.02, 50)
        y = np.linspace(0.001, 0.02, 50)
        text = ascii_scatter(x, y, boundary=8e-3)
        assert "|" in text.replace("  |", "", text.count("\n") + 1) or "-" in text

    def test_boundary_outside_range_skipped(self):
        x = np.array([0.1, 0.2])
        y = np.array([0.1, 0.2])
        # Boundary far below the data range: no crash, no boundary rows.
        text = ascii_scatter(x, y, boundary=1e-6)
        assert "SM0" in text

    def test_explicit_ranges(self):
        x = np.array([0.01])
        y = np.array([0.01])
        text = ascii_scatter(x, y, x_range=(0.0, 0.1), y_range=(0.0, 0.1), scale=1.0)
        assert "0.1" in text

    def test_degenerate_single_point(self):
        text = ascii_scatter(np.array([0.01]), np.array([0.01]))
        assert text.count("\n") > 5

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            ascii_scatter(np.array([]), np.array([]))
        with pytest.raises(ConfigurationError):
            ascii_scatter(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ConfigurationError):
            ascii_scatter(np.array([1.0]), np.array([1.0]), width=2)

    def test_every_point_lands_on_grid(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0.01, 0.002, 200)
        y = rng.normal(0.01, 0.002, 200)
        text = ascii_scatter(x, y)
        # Total shaded cells > 0 and bounded by the grid size.
        shaded = sum(
            1 for ch in text if ch in ".:+*#@"
        )
        assert 0 < shaded <= 56 * 20 + 40  # grid + label dots
