"""Batch read kernel: bit-for-bit equivalence with the scalar path.

The contract under test (see ``repro/core/batch.py``): for every scheme,
``scheme.read_many`` over a population must equal the sequential loop of
scalar ``scheme.read`` calls — same sensed bits, margins, rail voltages,
destroyed-data flags, final stored states, and the same RNG stream
position afterwards — so batched and per-bit reads are interchangeable.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ber import expected_behavioral_ber, sample_read_ber
from repro.array.array import STTRAMArray
from repro.circuit.sense_amp import SenseAmplifier
from repro.core import (
    ConventionalSensing,
    DestructiveSelfReference,
    NondestructiveSelfReference,
    batch_from_scalar_reads,
)
from repro.core.batch import materialize_cell
from repro.device.variation import CellPopulation, VariationModel
from repro.errors import ConfigurationError

#: Wide-variation population: enough tail bits that misreads and (with a
#: loose sense amp) metastable comparisons actually occur.
POPULATION = CellPopulation.sample(
    160, VariationModel().scaled(2.0), rng=np.random.default_rng(7)
)

#: A resolution window wide enough to force metastable draws on this
#: population, exercising the RNG-consuming paths.
WIDE_WINDOW = 0.05


def make_scheme(kind: str, resolution: float = 8.0e-3):
    amp = SenseAmplifier(resolution=resolution)
    if kind == "conventional":
        return ConventionalSensing(v_ref=0.4, sense_amp=amp)
    if kind == "destructive":
        return DestructiveSelfReference(sense_amp=amp)
    if kind == "destructive-weak":
        # Marginal write driver: erase/write-back pulses fail stochastically.
        return DestructiveSelfReference(sense_amp=amp, write_overdrive=1.03)
    if kind == "nondestructive":
        return NondestructiveSelfReference(sense_amp=amp)
    raise ValueError(kind)


ALL_KINDS = ["conventional", "destructive", "destructive-weak", "nondestructive"]


def pattern(seed: int = 3) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 2, POPULATION.size).astype(np.uint8)


def assert_batches_equal(ref, vec, compare_metastable: bool = False) -> None:
    np.testing.assert_array_equal(ref.bits, vec.bits)
    np.testing.assert_array_equal(ref.expected_bits, vec.expected_bits)
    np.testing.assert_array_equal(ref.margins, vec.margins)
    assert set(ref.voltages) == set(vec.voltages)
    for name in ref.voltages:
        np.testing.assert_array_equal(
            ref.voltages[name], np.broadcast_to(vec.voltages[name], (ref.size,))
        )
    np.testing.assert_array_equal(ref.data_destroyed, vec.data_destroyed)
    assert ref.write_pulses == vec.write_pulses
    assert ref.read_pulses == vec.read_pulses
    if compare_metastable:
        np.testing.assert_array_equal(ref.metastable, vec.metastable)


class TestKernelEquivalence:
    """Vectorized ``read_many`` vs the sequential scalar reference loop."""

    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("resolution", [8.0e-3, WIDE_WINDOW])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_scalar_loop_with_rng(self, kind, resolution, seed):
        scheme = make_scheme(kind, resolution)
        states_ref = pattern()
        states_vec = pattern()
        ref = batch_from_scalar_reads(
            scheme, POPULATION, states_ref, rng=np.random.default_rng(seed)
        )
        rng_vec = np.random.default_rng(seed)
        vec = scheme.read_many(POPULATION, states_vec, rng=rng_vec)
        assert_batches_equal(ref, vec)
        np.testing.assert_array_equal(states_ref, states_vec)
        # Stream position: the next draw after the batch must also agree.
        rng_ref = np.random.default_rng(seed)
        batch_from_scalar_reads(scheme, POPULATION, pattern(), rng=rng_ref)
        assert rng_ref.random() == rng_vec.random()

    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("resolution", [8.0e-3, WIDE_WINDOW])
    def test_matches_scalar_loop_without_rng(self, kind, resolution):
        scheme = make_scheme(kind, resolution)
        states_ref = pattern()
        states_vec = pattern()
        ref = batch_from_scalar_reads(scheme, POPULATION, states_ref, rng=None)
        vec = scheme.read_many(POPULATION, states_vec, rng=None)
        # Without an RNG nothing resolves randomly, so the fallback's
        # unresolved-only metastable view matches the kernel's window mask.
        assert_batches_equal(ref, vec, compare_metastable=True)
        np.testing.assert_array_equal(states_ref, states_vec)

    @pytest.mark.parametrize(
        "phase", ["after_erase", "after_second_read", "after_compare"]
    )
    @pytest.mark.parametrize("kind", ["destructive", "destructive-weak"])
    def test_destructive_power_failure_phases(self, kind, phase):
        scheme = make_scheme(kind, WIDE_WINDOW)
        states_ref = pattern()
        states_vec = pattern()
        ref = batch_from_scalar_reads(
            scheme,
            POPULATION,
            states_ref,
            rng=np.random.default_rng(11),
            power_failure_at=phase,
        )
        vec = scheme.read_many(
            POPULATION,
            states_vec,
            rng=np.random.default_rng(11),
            power_failure_at=phase,
        )
        assert_batches_equal(ref, vec)
        np.testing.assert_array_equal(states_ref, states_vec)

    @pytest.mark.parametrize(
        "phase", ["after_erase", "after_second_read", "after_compare"]
    )
    def test_power_failure_destroyed_data_parity_with_scalar_loop(self, phase):
        """Regression: the batch kernel's ``data_destroyed`` under a
        power-failure abort must equal a raw loop of scalar ``scheme.read``
        calls — same flags, same surviving states, bit for bit."""
        scheme = make_scheme("destructive", WIDE_WINDOW)
        states_vec = pattern()
        vec = scheme.read_many(
            POPULATION, states_vec,
            rng=np.random.default_rng(13), power_failure_at=phase,
        )

        states_scalar = pattern()
        rng = np.random.default_rng(13)
        destroyed = np.zeros(POPULATION.size, dtype=bool)
        for index in range(POPULATION.size):
            cell = materialize_cell(POPULATION, index, int(states_scalar[index]))
            result = scheme.read(cell, rng, power_failure_at=phase)
            destroyed[index] = result.data_destroyed
            if phase != "after_compare":
                assert result.bit is None  # the abort beat the latch
            states_scalar[index] = cell.stored_bit

        np.testing.assert_array_equal(vec.data_destroyed, destroyed)
        np.testing.assert_array_equal(states_vec, states_scalar)
        # An erase-window abort genuinely loses data on this population.
        if phase == "after_erase":
            assert destroyed.any()

    def test_destructive_mutates_states_in_place(self):
        scheme = make_scheme("destructive")
        states = pattern()
        original = states.copy()
        result = scheme.read_many(POPULATION, states, rng=np.random.default_rng(0))
        # A solid erase/write-back driver restores correctly-sensed bits, so
        # destroyed bits are exactly the misread ones.
        np.testing.assert_array_equal(result.data_destroyed, states != original)
        assert result.write_pulses == 2 and result.read_pulses == 2

    def test_nondestructive_never_touches_states(self):
        scheme = make_scheme("nondestructive", WIDE_WINDOW)
        states = pattern()
        original = states.copy()
        result = scheme.read_many(POPULATION, states, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(states, original)
        assert not result.data_destroyed.any()
        assert result.write_pulses == 0

    @settings(max_examples=20, deadline=None)
    @given(
        kind=st.sampled_from(ALL_KINDS),
        seed=st.integers(min_value=0, max_value=2**31),
        pattern_seed=st.integers(min_value=0, max_value=2**31),
        size=st.integers(min_value=1, max_value=40),
        resolution=st.sampled_from([8.0e-3, WIDE_WINDOW]),
    )
    def test_equivalence_property(self, kind, seed, pattern_seed, size, resolution):
        """Any scheme, any seed, any pattern, any sub-population size."""
        scheme = make_scheme(kind, resolution)
        sub = POPULATION.subset(np.arange(size))
        states0 = (
            np.random.default_rng(pattern_seed).integers(0, 2, size).astype(np.uint8)
        )
        s_ref, s_vec = states0.copy(), states0.copy()
        ref = batch_from_scalar_reads(
            scheme, sub, s_ref, rng=np.random.default_rng(seed)
        )
        vec = scheme.read_many(sub, s_vec, rng=np.random.default_rng(seed))
        assert_batches_equal(ref, vec)
        np.testing.assert_array_equal(s_ref, s_vec)

    def test_conventional_scalar_vref_error_matches_scalar_loop(self):
        scheme = make_scheme("conventional", WIDE_WINDOW)
        ref = batch_from_scalar_reads(
            scheme,
            POPULATION,
            pattern(),
            rng=np.random.default_rng(2),
            v_ref_error=0.02,
        )
        vec = scheme.read_many(
            POPULATION, pattern(), rng=np.random.default_rng(2), v_ref_error=0.02
        )
        assert_batches_equal(ref, vec)

    def test_conventional_per_bit_vref_error(self):
        scheme = make_scheme("conventional")
        errors = POPULATION.vref_error
        vec = scheme.read_many(POPULATION, pattern(), rng=None, v_ref_error=errors)
        # Per-bit reference: each bit's scalar read with its own shifted
        # reference must agree.
        for index in (0, 11, 97):
            cell = materialize_cell(POPULATION, index, int(pattern()[index]))
            scalar = scheme.read(cell, None, v_ref_error=float(errors[index]))
            assert vec.margins[index] == scalar.margin
            assert vec.voltages["v_ref"][index] == scalar.voltages["v_ref"]

    def test_states_must_be_ndarray(self):
        scheme = make_scheme("conventional")
        with pytest.raises(ConfigurationError):
            scheme.read_many(POPULATION, [0] * POPULATION.size)

    def test_states_shape_must_match(self):
        scheme = make_scheme("conventional")
        with pytest.raises(ConfigurationError):
            scheme.read_many(POPULATION, np.zeros(3, dtype=np.uint8))


class TestBatchReadResult:
    def test_scalar_bridge_reconstructs_read_result(self):
        scheme = make_scheme("nondestructive")
        states = pattern()
        batch = scheme.read_many(POPULATION, states.copy(), rng=np.random.default_rng(5))
        index = 17
        cell = materialize_cell(POPULATION, index, int(states[index]))
        scalar = scheme.read(cell, np.random.default_rng(99))
        bridged = batch.result(index)
        # RNG-independent fields (this bit latched deterministically).
        assert bridged.expected_bit == scalar.expected_bit
        assert bridged.margin == scalar.margin
        assert bridged.voltages == scalar.voltages
        assert bridged.write_pulses == scalar.write_pulses
        with pytest.raises(IndexError):
            batch.result(POPULATION.size)

    def test_aggregates_and_rails(self):
        scheme = make_scheme("nondestructive", WIDE_WINDOW)
        batch = scheme.read_many(POPULATION, pattern(), rng=None)
        assert batch.size == POPULATION.size
        assert batch.metastable_count == int(np.count_nonzero(batch.metastable))
        np.testing.assert_array_equal(batch.unresolved_mask, batch.bits < 0)
        assert batch.bit_values().dtype == np.uint8
        assert (batch.bit_values()[batch.unresolved_mask] == 0).all()
        assert batch.error_count >= batch.metastable_count  # unresolved count as errors
        np.testing.assert_array_equal(batch.v_bl1, batch.voltages["v_bl1"])
        np.testing.assert_array_equal(batch.v_bl2, batch.voltages["v_bl2"])
        np.testing.assert_array_equal(batch.v_bo, batch.voltages["v_bo"])

    def test_conventional_rail_aliases(self):
        scheme = make_scheme("conventional")
        batch = scheme.read_many(POPULATION, pattern(), rng=None)
        np.testing.assert_array_equal(batch.v_bl1, batch.voltages["v_bl"])
        np.testing.assert_array_equal(batch.v_bo, batch.voltages["v_ref"])
        assert batch.v_bl2 is None


class TestArrayBatchAPI:
    def make_array(self) -> STTRAMArray:
        array = STTRAMArray(POPULATION, word_width=8)
        array._states[:] = pattern()
        return array

    def test_read_bit_is_batch_of_one(self):
        array = self.make_array()
        scheme = make_scheme("nondestructive")
        index = 42
        expected_cell = materialize_cell(
            POPULATION, index, int(array.stored_bits()[index])
        )
        scalar = scheme.read(expected_cell, np.random.default_rng(1))
        result = array.read_bit(index, scheme, np.random.default_rng(1))
        assert result.bit == scalar.bit
        assert result.margin == scalar.margin
        assert result.voltages == scalar.voltages

    def test_read_word_matches_sequential_scalar_reads(self):
        scheme = make_scheme("destructive-weak", WIDE_WINDOW)
        array = self.make_array()
        value = array.read_word(0, scheme, np.random.default_rng(4))

        states = pattern()[:8]
        rng = np.random.default_rng(4)
        expected_value = 0
        for offset in range(8):
            cell = materialize_cell(POPULATION, offset, int(states[offset]))
            result = scheme.read(cell, rng)
            expected_value |= (result.bit or 0) << offset
        assert value == expected_value

    def test_read_word_result_reports_metastability(self):
        # A hopeless sense amp: every comparison is metastable.
        scheme = NondestructiveSelfReference(sense_amp=SenseAmplifier(resolution=10.0))
        array = self.make_array()
        word = array.read_word_result(1, scheme, rng=None)
        assert word.metastable_bits == array.word_width
        assert not word.resolved
        assert word.value == 0  # unresolved bits pack as 0
        # With an RNG the bits resolve, but the count still flags them all.
        word = array.read_word_result(1, scheme, np.random.default_rng(0))
        assert word.metastable_bits == array.word_width
        assert word.batch.unresolved_mask.sum() == 0

    def test_read_words_and_read_all(self):
        scheme = make_scheme("conventional")
        array = self.make_array()
        words = array.read_words([0, 3, 5], scheme, np.random.default_rng(0))
        assert len(words) == 3
        everything = array.read_all(scheme, np.random.default_rng(0))
        assert everything.size == array.size_bits

    def test_read_all_updates_array_state_destructively(self):
        scheme = make_scheme("destructive-weak")
        array = self.make_array()
        before = array.stored_bits()
        batch = array.read_all(scheme, np.random.default_rng(9))
        after = array.stored_bits()
        np.testing.assert_array_equal(batch.data_destroyed, before != after)

    def test_read_bits_rejects_duplicates_and_bounds(self):
        array = self.make_array()
        scheme = make_scheme("conventional")
        with pytest.raises(ConfigurationError):
            array.read_bits([1, 1], scheme)
        with pytest.raises(IndexError):
            array.read_bits([0, array.size_bits], scheme)
        with pytest.raises(IndexError):
            array.read_bit(-1, scheme)


class TestBehavioralTestchip:
    def test_reproduces_fig11_outcome(self):
        from repro.array import run_testchip_behavioral

        summaries = run_testchip_behavioral()
        assert set(summaries) == {"conventional", "destructive", "nondestructive"}
        conventional = summaries["conventional"]
        assert conventional.bits == 16384
        # The shared-reference tail misreads; both self-reference schemes
        # read every bit — the paper's headline measurement, behaviourally.
        assert conventional.misreads > 0
        assert summaries["destructive"].misreads == 0
        assert summaries["nondestructive"].misreads == 0
        assert summaries["nondestructive"].data_destroyed == 0
        assert summaries["destructive"].batch.write_pulses == 2


class TestSampledBER:
    def test_empirical_matches_margin_prediction(self):
        scheme = make_scheme("conventional", WIDE_WINDOW)
        empirical = sample_read_ber(
            POPULATION, scheme, rng=np.random.default_rng(0), rounds=4
        )
        assert empirical.trials == 8 * POPULATION.size
        # Deterministic misreads floor the BER; metastable flips add
        # half their count in expectation.
        assert empirical.ber == pytest.approx(
            empirical.expected_ber, abs=4 * empirical.std_error + 1e-12
        )

    def test_nondestructive_reads_clean_population_perfectly(self):
        population = CellPopulation.sample(
            256, VariationModel(), rng=np.random.default_rng(1)
        )
        scheme = NondestructiveSelfReference()
        empirical = sample_read_ber(population, scheme, rng=np.random.default_rng(2))
        assert empirical.errors == 0
        assert empirical.ber == 0.0

    def test_expected_behavioral_ber_regions(self):
        margins = np.array([-0.1, -0.008, 0.0, 0.004, 0.1])
        assert expected_behavioral_ber(margins, 8.0e-3) == pytest.approx(
            (1.0 + 1.0 + 0.5 + 0.5 + 0.0) / 5
        )
        with pytest.raises(ConfigurationError):
            expected_behavioral_ber(margins, -1.0)
