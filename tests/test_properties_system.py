"""System-level hypothesis property tests spanning multiple layers."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit.mna import Circuit
from repro.core.margins import (
    population_destructive_margins,
    population_nondestructive_margins,
)
from repro.core.trim import trim_population_beta
from repro.device.variation import CellPopulation, VariationModel
from repro.ecc.hamming import DecodeStatus, HammingSECDED

I2 = 200e-6


class TestEccProperties:
    @given(
        k=st.sampled_from([4, 8, 16, 32, 64]),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_single_flip_is_corrected(self, k, data):
        code = HammingSECDED(k)
        bits = np.array(
            data.draw(st.lists(st.integers(0, 1), min_size=k, max_size=k)),
            dtype=np.uint8,
        )
        position = data.draw(st.integers(0, code.codeword_bits - 1))
        codeword = code.encode(bits)
        codeword[position] ^= 1
        result = code.decode(codeword)
        assert result.status is DecodeStatus.CORRECTED
        assert np.array_equal(result.data, bits)

    @given(
        k=st.sampled_from([8, 16, 64]),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_double_flip_is_detected_not_miscorrected(self, k, data):
        code = HammingSECDED(k)
        bits = np.array(
            data.draw(st.lists(st.integers(0, 1), min_size=k, max_size=k)),
            dtype=np.uint8,
        )
        a = data.draw(st.integers(0, code.codeword_bits - 1))
        b = data.draw(
            st.integers(0, code.codeword_bits - 1).filter(lambda x: x != a)
        )
        codeword = code.encode(bits)
        codeword[a] ^= 1
        codeword[b] ^= 1
        result = code.decode(codeword)
        assert result.status is DecodeStatus.DETECTED

    @given(st.integers(1, 100))
    @settings(max_examples=30)
    def test_code_rate_improves_with_width(self, k):
        # Wider data words amortize the check bits: overhead is
        # non-increasing when the parity count stays flat.
        code = HammingSECDED(k)
        assert code.codeword_bits > k
        assert code.parity_bits <= 8  # for k <= 100


class TestMnaProperties:
    @given(
        r1=st.floats(10.0, 1e5),
        r2=st.floats(10.0, 1e5),
        v=st.floats(0.1, 5.0),
    )
    @settings(max_examples=50)
    def test_divider_rule(self, r1, r2, v):
        circuit = Circuit()
        circuit.add_voltage_source("in", "gnd", v)
        circuit.add_resistor("in", "mid", r1)
        circuit.add_resistor("mid", "gnd", r2)
        result = circuit.solve_dc()
        assert result["mid"] == pytest.approx(v * r2 / (r1 + r2), rel=1e-9)

    @given(
        resistances=st.lists(st.floats(100.0, 1e4), min_size=2, max_size=6),
        current=st.floats(1e-6, 1e-3),
    )
    @settings(max_examples=40)
    def test_series_chain_sums(self, resistances, current):
        circuit = Circuit()
        nodes = [f"n{i}" for i in range(len(resistances))] + ["gnd"]
        circuit.add_current_source("gnd", nodes[0], current)
        for index, resistance in enumerate(resistances):
            circuit.add_resistor(nodes[index], nodes[index + 1], resistance)
        result = circuit.solve_dc()
        assert result[nodes[0]] == pytest.approx(
            current * sum(resistances), rel=1e-9
        )

    @given(scale=st.floats(0.1, 10.0))
    @settings(max_examples=30)
    def test_linearity_in_source(self, scale):
        def solve(current):
            circuit = Circuit()
            circuit.add_current_source("gnd", "n", current)
            circuit.add_resistor("n", "gnd", 1234.0)
            return circuit.solve_dc()["n"]

        base = solve(1e-4)
        assert solve(scale * 1e-4) == pytest.approx(scale * base, rel=1e-9)


class TestPopulationProperties:
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_margin_ordering_destructive_vs_nondestructive(self, seed):
        """For any sampled population at the paper's design points, the
        destructive margins dominate the nondestructive ones bit-by-bit."""
        rng = np.random.default_rng(seed)
        population = CellPopulation.sample(128, VariationModel(), rng=rng)
        d_sm0, d_sm1 = population_destructive_margins(
            population, I2, 1.24, with_beta_variation=False
        )
        n_sm0, n_sm1 = population_nondestructive_margins(
            population, I2, 2.136, alpha=0.5,
            with_beta_variation=False, with_alpha_variation=False,
        )
        assert np.all(np.minimum(d_sm0, d_sm1) > np.minimum(n_sm0, n_sm1))

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_trim_never_hurts(self, seed):
        """The trimmed β's worst-bit margin is never below the nominal β's."""
        rng = np.random.default_rng(seed)
        population = CellPopulation.sample(96, VariationModel(), rng=rng)
        trim = trim_population_beta(population, grid_points=24)
        sm0, sm1 = population_nondestructive_margins(population, I2, 2.136)
        nominal_worst = float(np.min(np.minimum(sm0, sm1)))
        assert trim.worst_margin >= nominal_worst - 1e-9
