"""Shared fixtures.

The calibration fit is deterministic and cached inside the library, but the
cell objects are mutable (they carry MTJ state), so cell fixtures are
function-scoped fresh copies.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

# Pinned hypothesis profiles: "ci" derandomizes so the fault-campaign smoke
# job and the equivalence properties are reproducible run to run; select
# with HYPOTHESIS_PROFILE=ci (default stays the local "dev" profile).
settings.register_profile("ci", max_examples=25, deadline=None, derandomize=True)
settings.register_profile("dev", max_examples=50, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

from repro.calibration import calibrate, calibrated_cell
from repro.core.cell import Cell1T1J
from repro.device.mtj import MTJDevice, MTJParams
from repro.device.rolloff import PowerLawRollOff
from repro.device.transistor import FixedResistanceTransistor
from repro.device.variation import CellPopulation, VariationModel


@pytest.fixture(scope="session")
def calibration():
    """The cached calibration result (paper-fitted device model)."""
    return calibrate()


@pytest.fixture
def paper_cell():
    """A fresh calibrated 1T1J cell (917 Ω transistor)."""
    return calibrated_cell()


@pytest.fixture
def linear_cell():
    """A cell with exactly linear roll-offs — the regime where the paper's
    closed-form Eqs. (5)/(10) are exact."""
    params = MTJParams(dr_low_max=100.0)
    device = MTJDevice(params, PowerLawRollOff(1.0), PowerLawRollOff(1.0))
    return Cell1T1J(device, FixedResistanceTransistor(917.0))


@pytest.fixture
def rng():
    """Deterministic RNG for stochastic tests."""
    return np.random.default_rng(42)


@pytest.fixture
def small_population(rng):
    """A modest sampled population for Monte-Carlo tests."""
    return CellPopulation.sample(
        size=512,
        variation=VariationModel(),
        rng=rng,
    )


@pytest.fixture
def nominal_population():
    """A variation-free population (used for scalar/vector consistency)."""
    return CellPopulation.nominal_population(16)
