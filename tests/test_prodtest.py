"""The wafer-scale production test & trim subsystem (``repro.prodtest``).

Four layers under test, bottom up: the march-test engine (element
algebra, fault detection/classification per the survey taxonomy), the
per-die binary-search characterizer (trim codes, sense-current trim,
retry budgets), the wafer Monte-Carlo driver (vectorized ≡ per-die
reference, deterministic on the reserved ``(seed, 8)`` stream), and the
economics report (ECC provisioning, yield/cost summaries, metrics).
"""

import dataclasses

import numpy as np
import pytest

from repro import obs
from repro.array.testchip import TESTCHIP_VARIATION
from repro.device.variation import CellPopulation
from repro.ecc import provision_ecc
from repro.errors import ConfigurationError
from repro.faults import FaultKind, StuckOpenFault, StuckShortFault
from repro.faults.campaign import build_scheme
from repro.faults.injector import FaultMap
from repro.prodtest import (
    DISTURB_THRESHOLD,
    MARCH_C_MINUS,
    MARCH_STTRAM,
    MARCH_TESTS,
    MATS_PLUS,
    CharacterizeConfig,
    CostModel,
    WaferConfig,
    build_wafer,
    characterize_dies,
    compare_schemes,
    knob_bounds,
    march_seconds,
    publish_wafer_report,
    run_march_test,
    run_wafer,
    summarize,
    trim_skew_experiment,
)


@pytest.fixture(scope="module")
def schemes(calibration):
    """The three calibrated paper schemes at the 917 Ω transistor corner."""
    return {
        name: build_scheme(name, calibration, 917.0)
        for name in ("conventional", "destructive", "nondestructive")
    }


def sample_population(calibration, size, seed=4):
    """A test-chip-variation population (all cells inside the margin
    window, so a clean march detects nothing)."""
    return CellPopulation.sample(
        size=size,
        variation=TESTCHIP_VARIATION,
        params=calibration.params,
        rolloff_high=calibration.rolloff_high(),
        rolloff_low=calibration.rolloff_low(),
        rng=np.random.default_rng(seed),
    )


def fault_map_of(size, **kinds):
    """A hand-built ground-truth map: ``transition_up=[3, 7]`` style."""
    indices = {
        FaultKind(kind.replace("_", "-")): np.asarray(sorted(cells), dtype=np.intp)
        for kind, cells in kinds.items()
    }
    return FaultMap(size=size, indices=indices)


# ---------------------------------------------------------------------------
# March algebra
# ---------------------------------------------------------------------------
class TestMarchAlgebra:
    def test_catalog_names(self):
        assert set(MARCH_TESTS) == {"mats+", "march-c-", "march-1t1j"}
        assert MARCH_TESTS["mats+"] is MATS_PLUS
        assert MARCH_TESTS["march-1t1j"] is MARCH_STTRAM

    def test_mats_plus_structure(self):
        # ⇕(w0); ⇑(r0,w1); ⇓(r1,w0) — 5 ops, 2 reads, 3 writes per cell.
        assert MATS_PLUS.ops_per_cell == 5
        assert MATS_PLUS.reads_per_cell == 2
        assert MATS_PLUS.writes_per_cell == 3
        assert "⇑(r0,w1)" in MATS_PLUS.describe()

    def test_march_c_minus_structure(self):
        assert MARCH_C_MINUS.ops_per_cell == 10
        assert MARCH_C_MINUS.reads_per_cell == 5

    def test_sttram_march_hammers_the_one_state(self):
        # The disturb-aware variant re-reads every r1; it is strictly
        # longer than the March C- it extends.
        assert MARCH_STTRAM.ops_per_cell > MARCH_C_MINUS.ops_per_cell
        assert MARCH_STTRAM.reads_per_cell - MARCH_C_MINUS.reads_per_cell >= (
            DISTURB_THRESHOLD
        )

    def test_compile_emits_operation_count_in_address_order(self):
        ops = list(MATS_PLUS.compile(4))
        assert len(ops) == MATS_PLUS.operation_count(4) == 20
        # First element ascends, last element descends to address 0.
        assert [address for _, address in ops[:4]] == [0, 1, 2, 3]
        assert ops[-2:] == [("r1", 0), ("w0", 0)]

    def test_march_seconds_orders_the_schemes(self):
        times = {
            scheme: march_seconds(MARCH_STTRAM, 4096, scheme)
            for scheme in ("conventional", "destructive", "nondestructive")
        }
        assert times["destructive"] > times["nondestructive"] > times["conventional"]

    def test_march_seconds_rejects_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            march_seconds(MATS_PLUS, 64, "heroic")


# ---------------------------------------------------------------------------
# March detection & classification
# ---------------------------------------------------------------------------
class TestMarchDetection:
    SIZE = 256

    def test_clean_population_detects_nothing(self, calibration, schemes):
        # The self-referenced schemes sense every test-chip cell outside
        # the metastable window; conventional sensing's narrower window
        # may flag a few cells, but only ever as sense-margin marginals.
        population = sample_population(calibration, self.SIZE)
        for name in ("destructive", "nondestructive"):
            result = run_march_test(population, MARCH_STTRAM, schemes[name])
            assert result.detected_count == 0, name
        conventional = run_march_test(
            population, MARCH_STTRAM, schemes["conventional"]
        )
        assert set(conventional.classified) <= {FaultKind.SENSE_MARGIN}

    def test_stuck_faults_detected_and_classified(self, calibration, schemes):
        population = sample_population(calibration, self.SIZE)
        short_at, open_at = [3, 100], [7, 200]
        StuckShortFault(rate=1.0).apply_population(
            population, np.isin(np.arange(self.SIZE), short_at)
        )
        StuckOpenFault(rate=1.0).apply_population(
            population, np.isin(np.arange(self.SIZE), open_at)
        )
        fault_map = fault_map_of(
            self.SIZE, stuck_short=short_at, stuck_open=open_at
        )
        result = run_march_test(
            population, MARCH_C_MINUS, schemes["nondestructive"], fault_map
        )
        assert result.detected[short_at].all() and result.detected[open_at].all()
        np.testing.assert_array_equal(
            result.classified_of(FaultKind.STUCK_SHORT), short_at
        )
        np.testing.assert_array_equal(
            result.classified_of(FaultKind.STUCK_OPEN), open_at
        )
        assert result.coverage(fault_map)["overall"] == 1.0

    def test_transition_coverage_separates_the_marches(self, calibration, schemes):
        # The classic differentiation: MATS+ never reads after its final
        # w0, so an up-transition fault is caught but a down-transition
        # fault escapes; March C- reads both polarities in both orders.
        population = sample_population(calibration, self.SIZE)
        fault_map = fault_map_of(
            self.SIZE, transition_up=[11], transition_down=[22]
        )
        scheme = schemes["nondestructive"]

        mats = run_march_test(population, MATS_PLUS, scheme, fault_map)
        assert mats.coverage(fault_map)[FaultKind.TRANSITION_UP.value] == 1.0
        assert mats.coverage(fault_map)[FaultKind.TRANSITION_DOWN.value] == 0.0

        c_minus = run_march_test(population, MARCH_C_MINUS, scheme, fault_map)
        assert c_minus.coverage(fault_map)["overall"] == 1.0
        np.testing.assert_array_equal(
            c_minus.classified_of(FaultKind.TRANSITION_UP), [11]
        )
        np.testing.assert_array_equal(
            c_minus.classified_of(FaultKind.TRANSITION_DOWN), [22]
        )

    def test_only_the_hammer_march_trips_read_disturb(self, calibration, schemes):
        population = sample_population(calibration, self.SIZE)
        fault_map = fault_map_of(self.SIZE, read_disturb=[5, 77])
        scheme = schemes["nondestructive"]
        for test in (MATS_PLUS, MARCH_C_MINUS):
            result = run_march_test(population, test, scheme, fault_map)
            assert result.coverage(fault_map)[FaultKind.READ_DISTURB.value] == 0.0
        hammer = run_march_test(population, MARCH_STTRAM, scheme, fault_map)
        assert hammer.coverage(fault_map)[FaultKind.READ_DISTURB.value] == 1.0
        # ...and the repeated-read signature keeps it from being
        # misclassified as a transition fault.
        np.testing.assert_array_equal(
            hammer.classified_of(FaultKind.READ_DISTURB), [5, 77]
        )

    def test_coverage_scores_absent_kind_as_covered(self, calibration, schemes):
        population = sample_population(calibration, self.SIZE)
        result = run_march_test(
            population, MARCH_STTRAM, schemes["nondestructive"],
            fault_map_of(self.SIZE),
        )
        assert result.coverage(fault_map_of(self.SIZE))["overall"] == 1.0

    def test_rejects_non_population_target(self, schemes):
        with pytest.raises(ConfigurationError):
            run_march_test(object(), MATS_PLUS, schemes["nondestructive"])


# ---------------------------------------------------------------------------
# Per-die characterization
# ---------------------------------------------------------------------------
class TestCharacterize:
    DIES, CELLS = 6, 64

    def stacked_population(self, calibration, skews):
        population = sample_population(
            calibration, len(skews) * self.CELLS, seed=12
        )
        population.alpha_deviation = population.alpha_deviation + np.repeat(
            np.asarray(skews), self.CELLS
        )
        return population

    def test_knob_bounds_per_scheme(self, schemes):
        assert knob_bounds(schemes["nondestructive"])[0] == "beta"
        assert knob_bounds(schemes["destructive"])[0] == "beta"
        knob, low, high = knob_bounds(schemes["conventional"])
        assert knob == "v_ref" and low < schemes["conventional"].v_ref < high

    def test_nominal_dies_pass_with_margin(self, calibration, schemes):
        population = self.stacked_population(calibration, [0.0] * self.DIES)
        result = characterize_dies(
            population, self.CELLS, schemes["nondestructive"]
        )
        config = CharacterizeConfig()
        assert result.dies == self.DIES
        assert result.passes.all()
        assert (result.binding_margins > config.required_margin).all()
        assert (result.retry_budgets <= config.max_retry_budget).all()

    def test_trim_recovers_systematically_skewed_dies(self, calibration, schemes):
        # ±4% divider skew kills the untrimmed margin; the per-die trim
        # must recover every die above the shipping window.
        from repro.core.margins import population_nondestructive_margins

        skews = [-0.04, -0.02, 0.0, +0.02, +0.04, +0.04]
        population = self.stacked_population(calibration, skews)
        sm0, sm1 = population_nondestructive_margins(
            population, 200e-6, calibration.beta_nondestructive
        )
        untrimmed = np.minimum(sm0, sm1).reshape(self.DIES, self.CELLS)
        result = characterize_dies(
            population, self.CELLS, schemes["nondestructive"]
        )
        assert untrimmed.min(axis=1).min() < 0.0
        assert result.passes.all()
        assert (result.binding_margins >= untrimmed.min(axis=1) - 1e-12).all()
        # Skewed dies land on different trim codes than nominal ones.
        assert result.codes[0] != result.codes[4]

    def test_batch_invariance(self, calibration, schemes):
        # Characterizing the stack matches characterizing each die alone.
        skews = [-0.03, 0.0, +0.03]
        population = self.stacked_population(calibration, skews)
        scheme = schemes["destructive"]
        stacked = characterize_dies(population, self.CELLS, scheme)
        for die in range(len(skews)):
            alone = characterize_dies(
                population.subset(
                    np.arange(die * self.CELLS, (die + 1) * self.CELLS)
                ),
                self.CELLS,
                scheme,
            )
            record = stacked.record(die)
            assert record.code == alone.record(0).code
            assert record.value == alone.record(0).value
            assert record.binding_margin == alone.record(0).binding_margin
            assert record.sense_factor == alone.record(0).sense_factor

    def test_records_round_trip(self, calibration, schemes):
        population = self.stacked_population(calibration, [0.0, 0.02])
        result = characterize_dies(
            population, self.CELLS, schemes["conventional"]
        )
        records = list(result.records())
        assert len(records) == 2
        assert records[1].die == 1
        assert records[1].knob == "v_ref"
        assert records[1].code == int(result.codes[1])
        assert records[1].passes == bool(result.passes[1])

    def test_divisibility_validated(self, calibration, schemes):
        population = sample_population(calibration, 100)
        with pytest.raises(ConfigurationError):
            characterize_dies(population, 64, schemes["nondestructive"])
        with pytest.raises(ConfigurationError):
            characterize_dies(population, 0, schemes["nondestructive"])

    def test_config_validated(self):
        with pytest.raises(ConfigurationError):
            CharacterizeConfig(code_bits=0)
        with pytest.raises(ConfigurationError):
            CharacterizeConfig(required_margin=-1.0)
        with pytest.raises(ConfigurationError):
            CharacterizeConfig(sense_factors=())


# ---------------------------------------------------------------------------
# Wafer driver
# ---------------------------------------------------------------------------
class TestWafer:
    def test_config_geometry(self):
        config = WaferConfig(dies=10, die_rows=8, die_columns=8, word_cells=16)
        assert config.cells == 64 and config.words == 4
        assert config.wafer_cells == 640
        assert config.characterize_config().fail_budget == 16

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dies": 0},
            {"word_cells": 7},          # 64 cells not divisible
            {"spare_words": 4},         # no data words left
            {"scheme": "psychic"},
            {"march": "march-b"},
            {"chunk_dies": 0},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            WaferConfig(**kwargs)

    def test_vectorized_equals_reference(self):
        config = WaferConfig(dies=48, seed=2010, chunk_dies=16)
        wafer = build_wafer(config)
        vectorized = run_wafer(wafer, engine="vectorized")
        reference = run_wafer(wafer, engine="reference")
        assert vectorized.equals(reference)

    def test_same_seed_is_bit_identical(self):
        config = WaferConfig(dies=24, seed=7)
        one = run_wafer(build_wafer(config))
        two = run_wafer(build_wafer(config))
        assert one.equals(two)
        assert not one.equals(
            run_wafer(build_wafer(dataclasses.replace(config, seed=8)))
        )

    def test_nominal_wafer_ships_with_coverage(self):
        result = run_wafer(build_wafer(WaferConfig(dies=64, seed=2010)))
        assert result.dies == 64
        assert result.ship_rate >= 0.95
        assert result.coverage["overall"] >= 0.99
        assert set(result.classified_counts()) <= {
            kind.value for kind in FaultKind
        }
        # Every shipped die passed characterization and ECC provisioning.
        assert not (result.ships & ~result.char_passes).any()
        assert not (result.ships & ~result.ecc_covered).any()

    def test_gross_fails_skip_characterization_time(self):
        # Crank the defect rate until dies gross-fail: they are scrapped
        # after the incoming march alone, so their tester time is the
        # march, not the shmoo.
        config = WaferConfig(dies=32, seed=3, fault_rate=0.25)
        result = run_wafer(build_wafer(config))
        assert result.gross_fail.any()
        march_only = march_seconds(
            MARCH_TESTS[config.march], config.cells, config.scheme
        )
        gross_times = result.test_seconds[result.gross_fail]
        np.testing.assert_allclose(gross_times, march_only)
        assert not result.ships[result.gross_fail].any()
        full_times = result.test_seconds[~result.gross_fail]
        assert (full_times > march_only).all()

    def test_unknown_engine_rejected(self):
        wafer = build_wafer(WaferConfig(dies=2))
        with pytest.raises(ConfigurationError):
            run_wafer(wafer, engine="quantum")


# ---------------------------------------------------------------------------
# ECC provisioning
# ---------------------------------------------------------------------------
class TestEccProvisioning:
    def test_clean_dies_carry_no_parity(self):
        provision = provision_ecc(np.zeros((3, 4), dtype=np.int64), 16)
        assert provision.dies == 3
        assert (provision.levels == 0).all()
        assert (provision.parity_bits == 0).all()
        assert provision.covered.all()

    def test_parity_ladder_secded_dected(self):
        residual = np.array([[0, 0], [1, 0], [2, 1], [3, 0]])
        provision = provision_ecc(residual, 16, max_correctable=2)
        np.testing.assert_array_equal(provision.levels, [0, 1, 2, 3])
        # 16-cell words: SECDED needs 6 parity bits, DECTED 11.
        np.testing.assert_array_equal(provision.parity_bits, [0, 6, 11, 11])
        np.testing.assert_array_equal(provision.covered, [True, True, True, False])
        np.testing.assert_allclose(
            provision.overhead, np.array([0, 6, 11, 11]) / 16.0
        )

    def test_validation_and_single_die_promotion(self):
        with pytest.raises(ConfigurationError):
            provision_ecc(np.zeros((2, 2), dtype=np.int64), 0)
        with pytest.raises(ConfigurationError):
            provision_ecc(np.zeros((2, 2), dtype=np.int64), 16, max_correctable=-1)
        # A bare per-word vector is one die.
        assert provision_ecc(np.zeros(4, dtype=np.int64), 16).dies == 1


# ---------------------------------------------------------------------------
# Economics & reporting
# ---------------------------------------------------------------------------
class TestReporting:
    def test_summary_reconciles_with_result(self):
        result = run_wafer(build_wafer(WaferConfig(dies=32, seed=2010)))
        summary = summarize(result)
        assert summary.dies == 32
        assert summary.shipped == int(result.ships.sum())
        assert summary.ship_rate == pytest.approx(result.ship_rate)
        assert summary.total_test_seconds == pytest.approx(
            float(result.test_seconds.sum())
        )
        assert 0 < summary.good_bits <= summary.shipped * result.data_cells_per_die
        assert summary.cost_per_good_bit > 0.0

    def test_cost_model(self):
        cost = CostModel(wafer_dollars=1000.0, tester_dollars_per_hour=360.0)
        # Wafer cost splits across the dies; each die pays its own tester
        # seconds at $0.1/s.
        assert cost.die_cost(dies=10, test_seconds=10.0) == pytest.approx(
            1000.0 / 10 + 10.0 * 0.1
        )
        with pytest.raises(ConfigurationError):
            CostModel(wafer_dollars=-1.0)

    def test_compare_schemes_sweeps_all_three(self):
        records = compare_schemes(
            dies=16, variation_scales=(1.0,), seed=2010,
            config=WaferConfig(fault_rate=2e-3),
        )
        assert {record["scheme"] for record in records} == {
            "conventional", "destructive", "nondestructive"
        }
        for record in records:
            assert record["dies"] == 16
            assert 0.0 <= record["yield"] <= 1.0
            assert record["coverage"] >= 0.99

    def test_publish_wafer_report_sets_gauges(self):
        obs.reset()
        try:
            obs.configure(enabled=True)
            result = run_wafer(build_wafer(WaferConfig(dies=8, seed=2010)))
            publish_wafer_report(result)
            registry = obs.get_registry()
            scheme = result.config.scheme
            assert registry.gauge(
                "prodtest.yield", scheme=scheme
            ) == pytest.approx(result.ship_rate)
            assert registry.gauge(
                "prodtest.test_seconds_per_die", scheme=scheme
            ) > 0.0
            assert registry.gauge("prodtest.coverage", kind="overall") >= 0.99
            shipped = registry.counter("prodtest.dies", outcome="shipped")
            scrapped = registry.counter("prodtest.dies", outcome="scrapped")
            assert shipped + scrapped == result.dies
        finally:
            obs.reset()


# ---------------------------------------------------------------------------
# The re-homed legacy flow
# ---------------------------------------------------------------------------
class TestFlowCompatibility:
    def test_testflow_shim_reexports(self):
        from repro.array import testflow
        from repro.prodtest import flow

        for name in ("DieResult", "TestFlowConfig", "run_test_flow", "yield_curve"):
            assert getattr(testflow, name) is getattr(flow, name)

    def test_trim_skew_experiment_recovers_margin(self, calibration):
        results = trim_skew_experiment(
            calibration, alpha_skews=(-0.05, 0.0), bits=256
        )
        assert len(results) == 2
        for skew, untrimmed, trim in results:
            assert trim.worst_margin >= untrimmed - 1e-9
        skewed, nominal = results[0], results[1]
        assert skewed[1] < nominal[1]          # skew hurts untrimmed margin
        assert skewed[2].worst_margin > 7e-3   # trim recovers the window
