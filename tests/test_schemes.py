"""Behavioural tests of the three sensing schemes' full read operations."""

import numpy as np
import pytest

from repro.circuit.divider import VoltageDivider
from repro.circuit.sense_amp import SenseAmplifier
from repro.core.cell import Cell1T1J
from repro.core.conventional import ConventionalSensing, shared_reference_voltage
from repro.core.destructive import DestructiveSelfReference
from repro.core.nondestructive import NondestructiveSelfReference
from repro.device.mtj import MTJDevice, MTJParams, MTJState
from repro.device.transistor import FixedResistanceTransistor
from repro.errors import ConfigurationError


def make_cell(r_scale: float = 1.0) -> Cell1T1J:
    """A cell whose resistances are scaled by ``r_scale`` (variation)."""
    params = MTJParams(
        r_low=1220.0 * r_scale,
        r_high=2500.0 * r_scale,
        dr_low_max=10.0 * r_scale,
        dr_high_max=600.0 * r_scale,
    )
    return Cell1T1J(MTJDevice(params), FixedResistanceTransistor(917.0))


class TestConventional:
    def test_reads_both_bits_on_nominal_cell(self):
        cell = make_cell()
        scheme = ConventionalSensing(nominal_cell=cell)
        for bit in (0, 1):
            cell.write(bit)
            result = scheme.read(cell)
            assert result.bit == bit
            assert result.correct
            assert not result.data_destroyed
            assert result.read_pulses == 1
            assert result.write_pulses == 0

    def test_reference_midpoint(self):
        cell = make_cell()
        v_ref = shared_reference_voltage(cell, 200e-6)
        v_low = cell.bitline_voltage(200e-6, MTJState.PARALLEL)
        v_high = cell.bitline_voltage(200e-6, MTJState.ANTIPARALLEL)
        assert v_low < v_ref < v_high

    def test_tail_cell_misreads(self):
        # A bit whose resistances sit 40% high: its LOW voltage exceeds the
        # shared reference, so "0" always reads as "1" — the paper's §I
        # failure mode.
        nominal = make_cell()
        scheme = ConventionalSensing(nominal_cell=nominal)
        tail = make_cell(r_scale=1.4)
        tail.write(0)
        result = scheme.read(tail)
        assert result.bit == 1
        assert not result.correct

    def test_requires_reference_or_cell(self):
        with pytest.raises(ConfigurationError):
            ConventionalSensing()

    def test_explicit_reference(self):
        scheme = ConventionalSensing(v_ref=0.45)
        assert scheme.v_ref == 0.45

    def test_margin_sign_matches_correctness(self):
        nominal = make_cell()
        scheme = ConventionalSensing(nominal_cell=nominal)
        tail = make_cell(r_scale=1.4)
        tail.write(0)
        assert scheme.read(tail).margin < 0

    def test_is_readable(self):
        nominal = make_cell()
        scheme = ConventionalSensing(nominal_cell=nominal)
        assert scheme.is_readable(nominal)
        assert not scheme.is_readable(make_cell(r_scale=1.4))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ConventionalSensing(i_read=0.0, v_ref=0.4)
        with pytest.raises(ConfigurationError):
            ConventionalSensing(v_ref=-0.1)


class TestDestructive:
    def test_reads_and_restores_both_bits(self, rng):
        scheme = DestructiveSelfReference(beta=1.22)
        for bit in (0, 1):
            cell = make_cell()
            cell.write(bit)
            result = scheme.read(cell, rng)
            assert result.bit == bit
            assert result.correct
            assert cell.stored_bit == bit  # write-back restored it
            assert not result.data_destroyed
            assert result.read_pulses == 2
            assert result.write_pulses == 2

    def test_immune_to_resistance_scaling(self, rng):
        # Self-reference: even the 40%-high tail cell reads correctly.
        scheme = DestructiveSelfReference(beta=1.22)
        cell = make_cell(r_scale=1.4)
        cell.write(0)
        assert scheme.read(cell, rng).correct
        cell = make_cell(r_scale=0.7)
        cell.write(1)
        assert scheme.read(cell, rng).correct

    def test_power_failure_after_erase_destroys_one(self, rng):
        scheme = DestructiveSelfReference(beta=1.22)
        cell = make_cell()
        cell.write(1)
        result = scheme.read(cell, rng, power_failure_at="after_erase")
        assert result.data_destroyed
        assert cell.stored_bit == 0  # erased value stuck

    def test_power_failure_after_erase_keeps_zero(self, rng):
        # A stored "0" survives by luck: the erase writes the same value.
        scheme = DestructiveSelfReference(beta=1.22)
        cell = make_cell()
        cell.write(0)
        result = scheme.read(cell, rng, power_failure_at="after_erase")
        assert not result.data_destroyed

    def test_power_failure_after_second_read(self, rng):
        scheme = DestructiveSelfReference(beta=1.22)
        cell = make_cell()
        cell.write(1)
        result = scheme.read(cell, rng, power_failure_at="after_second_read")
        assert result.data_destroyed
        assert result.bit is None  # never compared

    def test_power_failure_after_compare_still_loses_storage(self, rng):
        scheme = DestructiveSelfReference(beta=1.22)
        cell = make_cell()
        cell.write(1)
        result = scheme.read(cell, rng, power_failure_at="after_compare")
        assert result.bit == 1        # the latch had the value...
        assert result.data_destroyed  # ...but the cell lost it

    def test_rejects_unknown_failure_phase(self, rng):
        scheme = DestructiveSelfReference()
        with pytest.raises(ConfigurationError):
            scheme.read(make_cell(), rng, power_failure_at="before_coffee")

    def test_misread_propagates_into_storage(self, rng):
        # Force a misread by a broken (huge-offset) sense amp: the scheme
        # writes back what it sensed, corrupting the cell.
        amp = SenseAmplifier(offset=-1.0, resolution=1e-3)
        scheme = DestructiveSelfReference(beta=1.22, sense_amp=amp)
        cell = make_cell()
        cell.write(1)
        result = scheme.read(cell, rng)
        assert result.bit == 0
        assert cell.stored_bit == 0
        assert result.data_destroyed

    def test_rejects_beta_at_most_one(self):
        with pytest.raises(ConfigurationError):
            DestructiveSelfReference(beta=1.0)

    def test_margins_match_module_function(self):
        from repro.core.margins import destructive_margins

        scheme = DestructiveSelfReference(beta=1.22)
        cell = make_cell()
        assert scheme.sense_margins(cell) == destructive_margins(cell, 200e-6, 1.22)


class TestNondestructive:
    def test_reads_both_bits_without_touching_state(self, rng):
        scheme = NondestructiveSelfReference(beta=2.13)
        for bit in (0, 1):
            cell = make_cell()
            cell.write(bit)
            result = scheme.read(cell, rng)
            assert result.bit == bit
            assert result.correct
            assert cell.stored_bit == bit
            assert not result.data_destroyed
            assert result.write_pulses == 0
            assert result.read_pulses == 2

    def test_immune_to_resistance_scaling(self, rng):
        # The nondestructive margin scales *with* the bit's resistance
        # (≈12 mV × scale), so a 30%-low cell drops under the default 8 mV
        # sense window even though its margin stays positive.  Use a finer
        # amplifier to test the self-referencing property itself.
        scheme = NondestructiveSelfReference(
            beta=2.13, sense_amp=SenseAmplifier(resolution=2e-3)
        )
        for scale in (0.7, 1.0, 1.4):
            cell = make_cell(r_scale=scale)
            cell.write(1)
            assert scheme.read(cell, rng).correct
            cell.write(0)
            assert scheme.read(cell, rng).correct

    def test_scaled_cell_margin_positive_but_below_default_window(self, rng):
        scheme = NondestructiveSelfReference(beta=2.13)
        cell = make_cell(r_scale=0.7)
        cell.write(1)
        result = scheme.read(cell, rng)
        assert 0.0 < result.margin < scheme.sense_amp.resolution

    def test_voltages_reported(self, rng):
        scheme = NondestructiveSelfReference(beta=2.13)
        cell = make_cell()
        cell.write(1)
        result = scheme.read(cell, rng)
        assert set(result.voltages) == {"v_bl1", "v_bl2", "v_bo"}
        assert result.voltages["v_bo"] == pytest.approx(
            0.5 * result.voltages["v_bl2"], rel=1e-6
        )

    def test_read_margin_matches_analytic(self, rng):
        scheme = NondestructiveSelfReference(beta=2.13)
        cell = make_cell()
        cell.write(1)
        result = scheme.read(cell, rng)
        analytic = scheme.sense_margins(cell).sm1
        # The behavioural read includes divider loading and capacitor
        # droop — tiny corrections on the analytic margin.
        assert result.margin == pytest.approx(analytic, rel=0.02)

    def test_divider_deviation_shifts_margin(self, rng):
        skewed = NondestructiveSelfReference(
            beta=2.13, divider=VoltageDivider(ratio=0.5, ratio_deviation=0.03)
        )
        nominal = NondestructiveSelfReference(beta=2.13)
        cell = make_cell()
        cell.write(1)
        assert skewed.read(cell, rng).margin < nominal.read(cell, rng).margin

    def test_excessive_divider_deviation_breaks_read(self, rng):
        # Beyond the Fig. 8 window (+4.3%) the "1" margin goes negative.
        skewed = NondestructiveSelfReference(
            beta=2.13, divider=VoltageDivider(ratio=0.5, ratio_deviation=0.10)
        )
        cell = make_cell()
        cell.write(1)
        result = skewed.read(cell, rng)
        assert result.margin < 0

    def test_alpha_property(self):
        scheme = NondestructiveSelfReference(divider=VoltageDivider(ratio=0.4))
        assert scheme.alpha == 0.4

    def test_i_read1(self):
        scheme = NondestructiveSelfReference(i_read2=200e-6, beta=2.0)
        assert scheme.i_read1 == pytest.approx(100e-6)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            NondestructiveSelfReference(i_read2=0.0)
        with pytest.raises(ConfigurationError):
            NondestructiveSelfReference(beta=0.9)
