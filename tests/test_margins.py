"""Sense-margin mathematics tests, incl. scalar/vector consistency and
hypothesis property tests on the paper's linearity structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cell import Cell1T1J
from repro.core.margins import (
    MarginPair,
    conventional_margins,
    destructive_margins,
    nondestructive_margins,
    population_conventional_margins,
    population_destructive_margins,
    population_nondestructive_margins,
)
from repro.device.mtj import MTJDevice, MTJState
from repro.device.transistor import FixedResistanceTransistor
from repro.device.variation import CellPopulation
from repro.errors import ConfigurationError

I2 = 200e-6


@pytest.fixture
def cell():
    return Cell1T1J(MTJDevice(), FixedResistanceTransistor(917.0))


class TestMarginPair:
    def test_min_margin(self):
        assert MarginPair(0.01, 0.02).min_margin == pytest.approx(0.01)

    def test_imbalance(self):
        assert MarginPair(0.01, 0.02).imbalance == pytest.approx(0.01)

    def test_is_balanced(self):
        assert MarginPair(0.01, 0.01).is_balanced
        assert not MarginPair(0.01, 0.02).is_balanced


class TestConventional:
    def test_midpoint_reference_balances(self, cell):
        v_low = cell.bitline_voltage(I2, MTJState.PARALLEL)
        v_high = cell.bitline_voltage(I2, MTJState.ANTIPARALLEL)
        margins = conventional_margins(cell, I2, 0.5 * (v_low + v_high))
        assert margins.is_balanced
        assert margins.sm0 == pytest.approx(0.5 * (v_high - v_low))

    def test_margin_equals_half_swing(self, cell):
        v_low = cell.bitline_voltage(I2, MTJState.PARALLEL)
        v_high = cell.bitline_voltage(I2, MTJState.ANTIPARALLEL)
        margins = conventional_margins(cell, I2, 0.5 * (v_low + v_high))
        # Half the resistance swing times the read current.
        r_split = cell.mtj.resistance(I2, MTJState.ANTIPARALLEL) - cell.mtj.resistance(
            I2, MTJState.PARALLEL
        )
        assert margins.sm0 == pytest.approx(0.5 * I2 * r_split)

    def test_shifted_reference_trades_margins(self, cell):
        v_low = cell.bitline_voltage(I2, MTJState.PARALLEL)
        v_high = cell.bitline_voltage(I2, MTJState.ANTIPARALLEL)
        mid = 0.5 * (v_low + v_high)
        shifted = conventional_margins(cell, I2, mid + 0.01)
        balanced = conventional_margins(cell, I2, mid)
        assert shifted.sm0 == pytest.approx(balanced.sm0 + 0.01)
        assert shifted.sm1 == pytest.approx(balanced.sm1 - 0.01)

    def test_rejects_nonpositive_current(self, cell):
        with pytest.raises(ConfigurationError):
            conventional_margins(cell, 0.0, 0.4)


class TestDestructive:
    def test_sm0_zero_at_beta_one_limit(self, cell):
        margins = destructive_margins(cell, I2, 1.0 + 1e-9)
        assert margins.sm0 == pytest.approx(0.0, abs=1e-6)

    def test_margins_positive_at_paper_beta(self, cell):
        margins = destructive_margins(cell, I2, 1.22)
        assert margins.sm0 > 0
        assert margins.sm1 > 0

    def test_sm0_grows_with_beta(self, cell):
        m1 = destructive_margins(cell, I2, 1.1)
        m2 = destructive_margins(cell, I2, 1.4)
        assert m2.sm0 > m1.sm0

    def test_sm1_shrinks_with_beta(self, cell):
        m1 = destructive_margins(cell, I2, 1.1)
        m2 = destructive_margins(cell, I2, 1.4)
        assert m2.sm1 < m1.sm1

    def test_explicit_equation(self, cell):
        # SM1 = I_R1 (R_H1 + R_T) - I_R2 (R_L2 + R_T), paper Eq. 3.
        beta = 1.3
        i1 = I2 / beta
        r_h1 = cell.mtj.resistance(i1, MTJState.ANTIPARALLEL)
        r_l2 = cell.mtj.resistance(I2, MTJState.PARALLEL)
        expected = i1 * (r_h1 + 917.0) - I2 * (r_l2 + 917.0)
        assert destructive_margins(cell, I2, beta).sm1 == pytest.approx(expected)

    def test_rtr_shift_linear(self, cell):
        base = destructive_margins(cell, I2, 1.22)
        shifted = destructive_margins(cell, I2, 1.22, rtr_shift=100.0)
        i1 = I2 / 1.22
        assert shifted.sm0 == pytest.approx(base.sm0 - i1 * 100.0)
        assert shifted.sm1 == pytest.approx(base.sm1 + i1 * 100.0)

    def test_rejects_bad_currents(self, cell):
        with pytest.raises(ConfigurationError):
            destructive_margins(cell, -1e-6, 1.2)
        with pytest.raises(ConfigurationError):
            destructive_margins(cell, I2, 0.0)


class TestNondestructive:
    def test_margins_positive_at_paper_point(self, cell):
        margins = nondestructive_margins(cell, I2, 2.13, alpha=0.5)
        assert margins.sm0 > 0
        assert margins.sm1 > 0

    def test_explicit_equation(self, cell):
        # Paper Eqs. 8–9 with α I_R2 scaling.
        beta, alpha = 2.13, 0.5
        i1 = I2 / beta
        r_h1 = cell.mtj.resistance(i1, MTJState.ANTIPARALLEL)
        r_h2 = cell.mtj.resistance(I2, MTJState.ANTIPARALLEL)
        expected_sm1 = i1 * (r_h1 + 917.0) - alpha * I2 * (r_h2 + 917.0)
        assert nondestructive_margins(cell, I2, beta, alpha).sm1 == pytest.approx(
            expected_sm1
        )

    def test_alpha_deviation_linear(self, cell):
        beta, alpha = 2.13, 0.5
        base = nondestructive_margins(cell, I2, beta, alpha)
        dev = nondestructive_margins(cell, I2, beta, alpha, alpha_deviation=0.02)
        r_h2 = cell.mtj.resistance(I2, MTJState.ANTIPARALLEL)
        delta_sm1 = -0.02 * alpha * I2 * (r_h2 + 917.0)
        assert dev.sm1 - base.sm1 == pytest.approx(delta_sm1)

    def test_alpha_beta_product_one_gives_pure_rolloff_margin(self, cell):
        # Paper Eq. 8: with α = 1/β and equal transistor resistances, the
        # "1" margin is exactly I_R1 (R_H1 - R_H2).
        beta = 2.0
        alpha = 1.0 / beta
        i1 = I2 / beta
        r_h1 = cell.mtj.resistance(i1, MTJState.ANTIPARALLEL)
        r_h2 = cell.mtj.resistance(I2, MTJState.ANTIPARALLEL)
        margins = nondestructive_margins(cell, I2, beta, alpha=alpha)
        assert margins.sm1 == pytest.approx(i1 * (r_h1 - r_h2))

    def test_rejects_bad_alpha(self, cell):
        with pytest.raises(ConfigurationError):
            nondestructive_margins(cell, I2, 2.13, alpha=0.0)
        with pytest.raises(ConfigurationError):
            nondestructive_margins(cell, I2, 2.13, alpha=1.0)

    @given(st.floats(-200.0, 200.0))
    @settings(max_examples=30)
    def test_rtr_shift_slope_is_i_read1(self, shift):
        cell = Cell1T1J(MTJDevice(), FixedResistanceTransistor(917.0))
        beta = 2.13
        base = nondestructive_margins(cell, I2, beta)
        shifted = nondestructive_margins(cell, I2, beta, rtr_shift=shift)
        i1 = I2 / beta
        assert shifted.sm1 - base.sm1 == pytest.approx(i1 * shift, abs=1e-12)
        assert shifted.sm0 - base.sm0 == pytest.approx(-i1 * shift, abs=1e-12)


class TestScalarVectorConsistency:
    """The vectorized population margins must reduce to the scalar ones for
    a variation-free population."""

    def test_destructive(self, nominal_population):
        cell = Cell1T1J(MTJDevice(), FixedResistanceTransistor(917.0))
        scalar = destructive_margins(cell, I2, 1.22)
        sm0, sm1 = population_destructive_margins(nominal_population, I2, 1.22)
        assert np.allclose(sm0, scalar.sm0)
        assert np.allclose(sm1, scalar.sm1)

    def test_nondestructive(self, nominal_population):
        cell = Cell1T1J(MTJDevice(), FixedResistanceTransistor(917.0))
        scalar = nondestructive_margins(cell, I2, 2.13, alpha=0.5)
        sm0, sm1 = population_nondestructive_margins(
            nominal_population, I2, 2.13, alpha=0.5
        )
        assert np.allclose(sm0, scalar.sm0)
        assert np.allclose(sm1, scalar.sm1)

    def test_conventional(self, nominal_population):
        cell = Cell1T1J(MTJDevice(), FixedResistanceTransistor(917.0))
        v_ref = 0.45
        scalar = conventional_margins(cell, I2, v_ref)
        sm0, sm1 = population_conventional_margins(nominal_population, I2, v_ref)
        assert np.allclose(sm0, scalar.sm0)
        assert np.allclose(sm1, scalar.sm1)

    def test_population_beta_variation_disabled(self, small_population):
        a = population_destructive_margins(
            small_population, I2, 1.22, with_beta_variation=False
        )
        b = population_destructive_margins(
            small_population, I2, 1.22, with_beta_variation=True
        )
        assert not np.allclose(a[0], b[0])

    def test_population_vref_error_applies(self, small_population):
        sm0, sm1 = population_conventional_margins(small_population, I2, 0.45)
        # Re-compute without vref error: margins differ by exactly it.
        clean = small_population.subset(np.arange(small_population.size))
        clean.vref_error = np.zeros(small_population.size)
        sm0_clean, _ = population_conventional_margins(clean, I2, 0.45)
        assert np.allclose(sm0 - sm0_clean, small_population.vref_error)

    def test_rejects_bad_inputs(self, small_population):
        with pytest.raises(ConfigurationError):
            population_conventional_margins(small_population, 0.0, 0.4)
        with pytest.raises(ConfigurationError):
            population_nondestructive_margins(small_population, I2, 2.13, alpha=1.5)
