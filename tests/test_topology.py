"""Topology layer: interleavers, shard routing, merged reports, executors.

The load-bearing properties here are the ones the serving claims stand on:

* every interleaver is a **bijection** on ``[0, capacity)`` (hypothesis
  round-trip plus an exhaustive small-topology permutation check), and
  its vectorized path agrees with the scalar path;
* channel striping spreads Zipf-hot traffic per the **analytic** shares
  from :meth:`ZipfianAddresses.probabilities`, while row-major
  concentrates the same traffic on channel 0;
* a 1×1×B topology run is **exactly** a flat
  :func:`~repro.service.controller.simulate_service` run — the anchor
  tying the sharded layer back to the single-controller reference;
* the multiprocess executor is **bit-identical** to the sequential one
  (the determinism contract in ``docs/TOPOLOGY.md``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.errors import ConfigurationError
from repro.service import (
    BANK_XOR,
    CHANNEL_STRIPED,
    INTERLEAVINGS,
    ROW_MAJOR,
    ControllerConfig,
    Coord,
    DiscreteEventEngine,
    FailoverStats,
    MemoryController,
    Request,
    ShardRouter,
    Topology,
    bank_offline,
    channel_outage,
    ZipfianAddresses,
    build_interleaver,
    build_workload,
    publish_topology_report,
    shard_seeds,
    simulate_service,
    simulate_topology,
)

# Fixed service times: interleaving/merging properties are timing-model
# independent, so skip the calibrated latency stack for speed.
READ_TIME = 12.6e-9
WRITE_TIME = 22.0e-9


def zipf_requests(count=400, addresses=2048, seed=2010, write_fraction=0.0,
                  rate=5.0e7):
    stream = build_workload(
        kind="poisson", addressing="zipfian", rate=rate,
        addresses=addresses, write_fraction=write_fraction,
    )
    return stream.generate(count, np.random.default_rng((seed, 0)))


def run_topology(requests, topology, **kwargs):
    kwargs.setdefault("read_time", READ_TIME)
    kwargs.setdefault("write_time", WRITE_TIME)
    return simulate_topology(requests, topology, **kwargs)


topologies = st.builds(
    Topology,
    channels=st.integers(1, 5),
    ranks=st.integers(1, 4),
    banks=st.integers(1, 8),
    rows=st.integers(1, 64),
)


class TestTopology:
    def test_parse_round_trips_describe(self):
        topology = Topology.parse("4x2x8", rows=128)
        assert topology == Topology(channels=4, ranks=2, banks=8, rows=128)
        assert topology.describe() == "4x2x8"
        assert Topology.parse(topology.describe(), rows=128) == topology

    def test_derived_sizes(self):
        topology = Topology(channels=4, ranks=2, banks=4, rows=128)
        assert topology.banks_per_channel == 8
        assert topology.total_banks == 32
        assert topology.capacity == 32 * 128

    @pytest.mark.parametrize("spec", ["abc", "4x2", "4x2x4x1", "", "4x0x2"])
    def test_parse_rejects_malformed(self, spec):
        with pytest.raises(ConfigurationError):
            Topology.parse(spec)

    @pytest.mark.parametrize(
        "field", ["channels", "ranks", "banks", "rows"]
    )
    def test_rejects_nonpositive_dimensions(self, field):
        with pytest.raises(ConfigurationError):
            Topology(**{field: 0})


class TestInterleavers:
    @given(topology=topologies, scheme=st.sampled_from(INTERLEAVINGS),
           data=st.data())
    @settings(max_examples=60)
    def test_round_trip_with_bounded_coordinates(self, topology, scheme, data):
        address = data.draw(st.integers(0, topology.capacity - 1))
        interleaver = build_interleaver(scheme, topology)
        coord = interleaver.decompose(address)
        assert 0 <= coord.channel < topology.channels
        assert 0 <= coord.rank < topology.ranks
        assert 0 <= coord.bank < topology.banks
        assert 0 <= coord.row < topology.rows
        assert interleaver.compose(*coord) == address

    @pytest.mark.parametrize("scheme", INTERLEAVINGS)
    def test_vectorized_bijection_matches_scalar(self, scheme):
        topology = Topology(channels=3, ranks=2, banks=4, rows=8)
        interleaver = build_interleaver(scheme, topology)
        addresses = np.arange(topology.capacity)
        coords = interleaver.decompose(addresses)
        assert np.array_equal(interleaver.compose(*coords), addresses)
        # Bijection: every (channel, rank, bank, row) tuple is distinct.
        packed = (
            (coords.channel * topology.ranks + coords.rank) * topology.banks
            + coords.bank
        ) * topology.rows + coords.row
        assert len(np.unique(packed)) == topology.capacity
        for address in (0, 1, topology.capacity // 2, topology.capacity - 1):
            assert interleaver.decompose(address) == Coord(
                *(int(axis[address]) for axis in coords)
            )

    def test_bank_xor_falls_back_for_non_power_of_two_banks(self):
        topology = Topology(channels=2, ranks=1, banks=3, rows=9)
        interleaver = build_interleaver(BANK_XOR, topology)
        addresses = np.arange(topology.capacity)
        assert np.array_equal(
            interleaver.compose(*interleaver.decompose(addresses)), addresses
        )

    def test_channel_striping_spreads_hot_prefix(self):
        # The Zipf-hottest addresses 0..C-1 land on C distinct channels
        # under striping, and all on channel 0 under row-major.
        topology = Topology(channels=4, ranks=1, banks=4, rows=16)
        striped = build_interleaver(CHANNEL_STRIPED, topology)
        row_major = build_interleaver(ROW_MAJOR, topology)
        hot = range(topology.channels)
        assert sorted(int(striped.decompose(a).channel) for a in hot) == [0, 1, 2, 3]
        assert {int(row_major.decompose(a).channel) for a in hot} == {0}

    def test_bank_xor_breaks_same_bank_stride(self):
        # A scan strided by channels*ranks*banks hammers one bank under
        # pure striping; the XOR permutation walks every bank instead.
        topology = Topology(channels=2, ranks=1, banks=4, rows=32)
        stride = topology.channels * topology.ranks * topology.banks
        addresses = np.arange(0, topology.capacity, stride)
        striped = build_interleaver(CHANNEL_STRIPED, topology).decompose(addresses)
        xored = build_interleaver(BANK_XOR, topology).decompose(addresses)
        assert len(set(striped.bank.tolist())) == 1
        assert set(xored.bank.tolist()) == set(range(topology.banks))

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            build_interleaver("diagonal", Topology())


class TestZipfianSpread:
    def test_probabilities_normalized_and_consistent_with_cdf(self):
        distribution = ZipfianAddresses(512, s=1.1)
        probabilities = distribution.probabilities()
        assert probabilities.shape == (512,)
        assert probabilities[0] > probabilities[-1] > 0.0
        assert np.isclose(probabilities.sum(), 1.0)
        # probabilities() must agree with the draw stream's pinned CDF.
        assert np.allclose(np.cumsum(probabilities), distribution._cdf())

    def test_striped_channel_shares_match_analytic(self):
        topology = Topology(channels=4, ranks=1, banks=4, rows=128)
        distribution = ZipfianAddresses(topology.capacity, s=1.1)
        draws = distribution.draw(20_000, np.random.default_rng((2010, 4)))
        striped = build_interleaver(CHANNEL_STRIPED, topology)
        channels = striped.decompose(draws % topology.capacity).channel
        empirical = np.bincount(channels, minlength=4) / draws.size
        probabilities = distribution.probabilities()
        analytic = np.array(
            [probabilities[c::topology.channels].sum() for c in range(4)]
        )
        assert np.all(np.abs(empirical - analytic) < 0.02)
        # Striping genuinely spreads the skew: no channel dominates.
        assert analytic.max() < 0.5

    def test_row_major_concentrates_the_same_traffic(self):
        topology = Topology(channels=4, ranks=1, banks=4, rows=128)
        distribution = ZipfianAddresses(topology.capacity, s=1.1)
        probabilities = distribution.probabilities()
        words_per_channel = topology.capacity // topology.channels
        row_major_hot = probabilities[:words_per_channel].sum()
        striped_max = max(
            probabilities[c::topology.channels].sum()
            for c in range(topology.channels)
        )
        # Channel 0 under row-major absorbs the whole hot prefix.
        assert row_major_hot > 0.8
        assert row_major_hot > 2.0 * striped_max


class TestShardRouter:
    def test_split_partitions_and_preserves_order(self):
        requests = zipf_requests(600)
        topology = Topology(channels=4, ranks=2, banks=2, rows=64)
        router = ShardRouter(topology, CHANNEL_STRIPED)
        shards = router.split(requests)
        assert len(shards) == topology.channels
        assert sum(len(shard) for shard in shards) == len(requests)
        for channel, shard in enumerate(shards):
            ids = [request.request_id for request in shard]
            assert ids == sorted(ids)
            for request in shard:
                assert router.channel_of(request.address) == channel

    def test_local_bank_matches_coordinate(self):
        topology = Topology(channels=2, ranks=2, banks=4, rows=32)
        router = ShardRouter(topology, BANK_XOR)
        for address in range(0, topology.capacity, 7):
            coord = router.coordinate(address)
            local = router.local_bank(address)
            assert local == coord.rank * topology.banks + coord.bank
            assert 0 <= local < topology.banks_per_channel

    def test_addresses_wrap_modulo_capacity(self):
        topology = Topology(channels=3, ranks=1, banks=2, rows=16)
        router = ShardRouter(topology, CHANNEL_STRIPED)
        for address in (0, 5, topology.capacity - 1):
            assert router.coordinate(address + topology.capacity) == \
                router.coordinate(address)


class TestBankMap:
    def test_bank_map_overrides_flat_modulo(self):
        engine = DiscreteEventEngine()
        config = ControllerConfig(
            read_time=READ_TIME, write_time=WRITE_TIME, banks=4
        )
        controller = MemoryController(engine, config, bank_map=lambda a: 3)
        assert controller.bank_of(17) == 3
        controller.submit_all([Request(0, 0.0, 17)])
        engine.run()
        assert controller.bank_served_counts() == (0, 0, 0, 1)

    def test_default_stays_flat_modulo(self):
        engine = DiscreteEventEngine()
        config = ControllerConfig(
            read_time=READ_TIME, write_time=WRITE_TIME, banks=4
        )
        controller = MemoryController(engine, config)
        assert controller.bank_of(17) == 1


class TestShardSeeds:
    def test_deterministic_distinct_and_prefix_stable(self):
        seeds = shard_seeds(2010, 4)
        assert seeds == shard_seeds(2010, 4)
        assert len(set(seeds)) == 4
        # Channel c's seed is independent of the channel count.
        assert shard_seeds(2010, 2) == seeds[:2]
        assert shard_seeds(2011, 4) != seeds

    def test_rejects_nonpositive_channel_count(self):
        with pytest.raises(ConfigurationError):
            shard_seeds(2010, 0)


class TestSimulateTopology:
    def test_single_channel_matches_flat_controller(self):
        # The anchor: a 1x1x4 topology IS the single-controller reference.
        topology = Topology(channels=1, ranks=1, banks=4, rows=512)
        requests = zipf_requests(300, addresses=topology.capacity,
                                 write_fraction=0.2)
        report = run_topology(requests, topology, offered_rate=5.0e7)
        flat = simulate_service(
            requests,
            ControllerConfig(read_time=READ_TIME, write_time=WRITE_TIME,
                             banks=4),
            offered_rate=5.0e7,
        )
        assert report.merged == flat
        assert report.channel_reports == (flat,)

    def test_merged_accounting_is_consistent(self):
        topology = Topology(channels=4, ranks=2, banks=2, rows=64)
        requests = zipf_requests(500, write_fraction=0.1)
        report = run_topology(requests, topology, cache_capacity=32,
                              offered_rate=5.0e7)
        merged = report.merged
        assert merged.requests == len(requests)
        assert merged.completed == len(requests)
        assert merged.banks == topology.total_banks
        assert len(merged.bank_served) == topology.total_banks
        assert sum(report.channel_served) == merged.completed
        assert sum(report.rank_served) == sum(merged.bank_served)
        assert len(report.rank_served) == topology.channels * topology.ranks
        assert sum(r.requests for r in report.channel_reports) == len(requests)
        assert sum(r.cache_hits for r in report.channel_reports) == \
            merged.cache_hits
        # Per-channel offered rate is the fair split of the global rate.
        for channel_report in report.channel_reports:
            assert channel_report.offered_rate == pytest.approx(
                5.0e7 / topology.channels
            )

    def test_same_seed_runs_compare_equal(self):
        topology = Topology(channels=2, ranks=1, banks=4, rows=64)
        requests = zipf_requests(200)
        first = run_topology(requests, topology, seed=7)
        second = run_topology(requests, topology, seed=7)
        assert first == second
        assert first.to_dict() == second.to_dict()

    def test_multiprocess_is_bit_identical_to_sequential(self):
        topology = Topology(channels=4, ranks=1, banks=4, rows=64)
        requests = zipf_requests(400, write_fraction=0.1)
        sequential = run_topology(requests, topology, processes=1)
        multiprocess = run_topology(requests, topology, processes=2)
        assert multiprocess == sequential

    def test_backed_multiprocess_bit_identical_and_seed_split(self):
        topology = Topology(channels=2, ranks=1, banks=4, rows=64)
        requests = zipf_requests(120)
        sequential = run_topology(
            requests, topology, scheme="nondestructive",
            fault_rate=1e-3, seed=2010,
        )
        multiprocess = run_topology(
            requests, topology, scheme="nondestructive",
            fault_rate=1e-3, seed=2010, processes=2,
        )
        assert multiprocess == sequential
        assert sequential.merged.retried_words == sum(
            r.retried_words for r in sequential.channel_reports
        )

    def test_interleave_changes_channel_balance(self):
        topology = Topology(channels=4, ranks=1, banks=4, rows=128)
        requests = zipf_requests(800, addresses=topology.capacity)
        striped = run_topology(requests, topology, interleave=CHANNEL_STRIPED)
        row_major = run_topology(requests, topology, interleave=ROW_MAJOR)
        assert max(striped.channel_served) < max(row_major.channel_served)

    def test_validation_errors(self):
        topology = Topology(channels=2, ranks=1, banks=2, rows=16)
        requests = zipf_requests(50)
        with pytest.raises(ConfigurationError):
            run_topology((), topology)
        with pytest.raises(ConfigurationError):
            run_topology(requests, topology, processes=0)
        with pytest.raises(ConfigurationError):
            run_topology(requests, topology, interleave="diagonal")
        with pytest.raises(ConfigurationError):
            run_topology(requests, topology, backed=True)  # no scheme
        with pytest.raises(ConfigurationError):
            run_topology(requests, topology, policy="lifo")


class TestTopologyObs:
    def test_publish_topology_report_gauges(self):
        topology = Topology(channels=2, ranks=2, banks=2, rows=64)
        report = run_topology(
            zipf_requests(200), topology, scheme="nondestructive",
            offered_rate=5.0e7,
        )
        with obs.capture() as (registry, _tracer):
            publish_topology_report(report)
            gauges = registry.snapshot()["gauges"]
        assert gauges["service.topology.channels"] == topology.channels
        assert gauges["service.topology.total_banks"] == topology.total_banks
        for channel in range(topology.channels):
            key = f"service.topology.channel_served{{channel={channel}}}"
            assert gauges[key] == report.channel_served[channel]
        rank_keys = [k for k in gauges if k.startswith(
            "service.topology.rank_served"
        )]
        assert len(rank_keys) == topology.channels * topology.ranks
        # The merged report's plain service.* gauges ride along.
        assert any(k.startswith("service.throughput_rps") for k in gauges)

    def test_publish_is_noop_when_obs_off(self):
        topology = Topology(channels=1, ranks=1, banks=2, rows=32)
        report = run_topology(zipf_requests(40), topology)
        publish_topology_report(report)  # must not raise


class TestSplitOrderPreservation:
    """Sharding must preserve per-channel arrival order — the property
    the engines' deterministic tie-breaking (and thus every merged
    report) stands on, even when addresses repeat within a stream."""

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=60))
    def test_duplicate_addresses_preserve_arrival_order(self, addresses):
        topology = Topology(channels=4, ranks=1, banks=2, rows=2)
        router = ShardRouter(topology)
        requests = [
            Request(i, i * 1.0e-9, address, "read")
            for i, address in enumerate(addresses)
        ]
        shards = router.split(requests)
        for shard in shards:
            ids = [request.request_id for request in shard]
            assert ids == sorted(ids)
        routed = sorted(r.request_id for shard in shards for r in shard)
        assert routed == list(range(len(requests)))

    def test_failover_split_without_outages_is_plain_split(self):
        topology = Topology(channels=2, ranks=1, banks=2, rows=4)
        router = ShardRouter(topology)
        requests = zipf_requests(80, addresses=topology.capacity,
                                 write_fraction=0.3)
        shards, frontend, stats = router.split_with_failover(requests, ())
        assert shards == router.split(requests)
        assert frontend == ()
        assert stats == FailoverStats(
            outages=(), unreachable_requests=0, rerouted_writes=0,
            remapped_words=0, restored_words=0, residual_remaps=0,
        )


class TestDegradedModeFailover:
    """Channel-outage failover: writes reroute additively to a surviving
    channel, reads follow the relocated data, detected loss is loud, and
    post-heal writes restore the home mapping."""

    def _router(self):
        topology = Topology(channels=2, ranks=1, banks=2, rows=4)
        router = ShardRouter(topology)
        # An address resident on channel 1, so the outage below hits it.
        address = next(
            a for a in range(topology.capacity) if router.channel_of(a) == 1
        )
        return router, address

    def test_write_reroutes_read_follows_heal_restores(self):
        router, address = self._router()
        outages = ((1, 0.0, 100.0e-9),)
        requests = [
            Request(0, 10.0e-9, address, "write"),    # rerouted to ch 0
            Request(1, 20.0e-9, address, "read"),     # follows the remap
            Request(2, 150.0e-9, address, "write"),   # post-heal: restores
            Request(3, 160.0e-9, address, "read"),    # back home on ch 1
        ]
        shards, frontend, stats = router.split_with_failover(
            requests, outages
        )
        assert [r.request_id for r in shards[0]] == [0, 1]
        assert [r.request_id for r in shards[1]] == [2, 3]
        assert frontend == ()
        assert stats.rerouted_writes == 1
        assert stats.remapped_words == 1
        assert stats.restored_words == 1
        assert stats.residual_remaps == 0
        assert stats.unreachable_requests == 0

    def test_read_of_down_resident_data_fails_loudly(self):
        router, address = self._router()
        requests = [Request(0, 10.0e-9, address, "read")]
        shards, frontend, stats = router.split_with_failover(
            requests, ((1, 0.0, 100.0e-9),)
        )
        assert all(not shard for shard in shards)
        (record,) = frontend
        assert record.failed and record.unreachable
        assert record.start == record.finish == 10.0e-9
        assert stats.unreachable_requests == 1
        assert stats.rerouted_writes == 0

    def test_write_with_every_channel_down_is_unreachable(self):
        router, address = self._router()
        outages = ((0, 0.0, 100.0e-9), (1, 0.0, 100.0e-9))
        shards, frontend, stats = router.split_with_failover(
            [Request(0, 10.0e-9, address, "write")], outages
        )
        assert all(not shard for shard in shards)
        (record,) = frontend
        assert record.unreachable
        assert stats.unreachable_requests == 1

    def test_outage_channel_range_validated(self):
        router, _ = self._router()
        with pytest.raises(ConfigurationError):
            router.split_with_failover([], ((5, 0.0, 1.0),))

    def test_topology_run_under_outage_conserves(self):
        topology = Topology(channels=2, ranks=1, banks=2, rows=16)
        requests = zipf_requests(300, addresses=topology.capacity,
                                 write_fraction=0.3, rate=2.0e8)
        span = max(r.time for r in requests)
        scenario = channel_outage(0.25 * span, 0.5 * span, channel=1)
        report = run_topology(requests, topology, failures=scenario)
        merged = report.merged
        assert merged.requests == len(requests)
        assert merged.requests == (
            merged.completed + merged.shed + merged.timed_out
            + merged.failed_requests
        )
        assert report.failover is not None
        assert merged.failed_requests == report.failover.unreachable_requests
        assert report.failover.rerouted_writes > 0
        assert report.to_dict()["failover"] is not None

    def test_non_outage_scenarios_rejected_at_the_topology_layer(self):
        topology = Topology(channels=2, ranks=1, banks=2, rows=16)
        requests = zipf_requests(40, addresses=topology.capacity)
        with pytest.raises(ConfigurationError):
            run_topology(
                requests, topology, failures=bank_offline(1.0e-9, 1.0e-9)
            )
