"""Verilog-A export tests plus edge-case tests for under-exercised paths."""

import numpy as np
import pytest

from repro.calibration import calibrate
from repro.circuit.sense_amp import SenseAmplifier
from repro.circuit.storage import SampleCapacitor
from repro.core.destructive import DestructiveSelfReference
from repro.core.nondestructive import NondestructiveSelfReference
from repro.device.mtj import MTJParams
from repro.device.veriloga import export_veriloga
from repro.errors import ConfigurationError


class TestVerilogaExport:
    def test_contains_module_and_parameters(self, calibration):
        text = export_veriloga(calibration.params)
        assert "module mtj_sttram" in text
        assert "endmodule" in text
        assert f"{calibration.params.r_high:.6g}" in text
        assert f"{calibration.params.r_low:.6g}" in text
        assert f"{calibration.params.i_c0:.6g}" in text

    def test_quadratic_conductance_law_present(self, calibration):
        text = export_veriloga(calibration.params)
        assert "(vmtj / v_half)" in text
        assert "I(t1, t2) <+ g * vmtj;" in text

    def test_initial_state_parameter(self, calibration):
        zero = export_veriloga(calibration.params, initial_bit=0)
        one = export_veriloga(calibration.params, initial_bit=1)
        assert "parameter integer init_state = 0" in zero
        assert "parameter integer init_state = 1" in one

    def test_balanced_braces(self, calibration):
        # The template must not leak unformatted placeholders.
        text = export_veriloga(calibration.params)
        assert "{" not in text.replace("from", "")  # no stray format braces

    def test_rejects_invalid(self, calibration):
        with pytest.raises(ConfigurationError):
            export_veriloga(calibration.params, initial_bit=2)
        with pytest.raises(ConfigurationError):
            export_veriloga(calibration.params, v_half_high=0.0)

    def test_custom_params(self):
        params = MTJParams(r_low=1000.0, r_high=2000.0)
        text = export_veriloga(params)
        assert "1000" in text and "2000" in text


class TestHoldTimeDroop:
    def test_leaky_capacitor_erodes_destructive_margin(self, rng, calibration):
        # A badly leaky C1 held for a long second-read phase: the stored
        # "1" voltage droops below the reference and the read fails.
        leaky = SampleCapacitor(
            capacitance=50e-15, switch_resistance=2e3, leakage_resistance=1e6
        )
        scheme = DestructiveSelfReference(
            beta=calibration.beta_destructive, capacitor=leaky
        )
        cell = calibration.cell(917.0)
        cell.write(1)
        # tau_leak = 1e6 * 50e-15 = 50 ns; hold for 10 tau → ~full droop.
        result = scheme.read(cell, rng, hold_time=500e-9)
        assert result.bit == 0
        assert not result.correct

    def test_healthy_capacitor_survives_hold(self, rng, calibration):
        scheme = DestructiveSelfReference(beta=calibration.beta_destructive)
        cell = calibration.cell(917.0)
        cell.write(1)
        result = scheme.read(cell, rng, hold_time=500e-9)
        assert result.correct

    def test_nondestructive_hold_time_parameter(self, rng, calibration):
        scheme = NondestructiveSelfReference(beta=calibration.beta_nondestructive)
        cell = calibration.cell(917.0)
        cell.write(1)
        assert scheme.read(cell, rng, hold_time=100e-9).correct


class TestMetastableWriteBack:
    def test_metastable_destructive_read_writes_zero(self, calibration):
        # A dead sense amp (huge resolution window) returns None; the
        # write-back defaults to 0 — the stored '1' is lost and reported.
        dead_amp = SenseAmplifier(resolution=10.0)
        scheme = DestructiveSelfReference(
            beta=calibration.beta_destructive, sense_amp=dead_amp
        )
        cell = calibration.cell(917.0)
        cell.write(1)
        result = scheme.read(cell, rng=None)
        assert result.bit is None
        assert cell.stored_bit == 0
        assert result.data_destroyed

    def test_metastable_nondestructive_read_keeps_data(self, calibration):
        dead_amp = SenseAmplifier(resolution=10.0)
        scheme = NondestructiveSelfReference(
            beta=calibration.beta_nondestructive, sense_amp=dead_amp
        )
        cell = calibration.cell(917.0)
        cell.write(1)
        result = scheme.read(cell, rng=None)
        assert result.bit is None
        assert cell.stored_bit == 1       # nothing was written
        assert not result.data_destroyed


class TestRenderSeriesEdges:
    def test_two_point_series(self):
        from repro.analysis.report import render_series

        text = render_series(np.array([0.0, 1.0]), {"y": np.array([1.0, 2.0])}, "x")
        assert "y" in text and "2" in text

    def test_single_series_many_points_includes_endpoints(self):
        from repro.analysis.report import render_series

        x = np.linspace(0, 9, 10)
        text = render_series(x, {"y": x}, "x", max_rows=3)
        lines = text.splitlines()
        assert lines[2].startswith("0")     # first point kept
        assert lines[-1].startswith("9")    # last point kept


class TestFormatSiMoreCases:
    def test_sub_femto_clamps_to_smallest_prefix(self):
        from repro.units import format_si

        assert "f" in format_si(1e-16, "F")

    def test_tera_scale_uses_giga(self):
        from repro.units import format_si

        # Beyond the table the largest prefix is used with a big mantissa.
        assert "G" in format_si(5e12, "bit/s")
