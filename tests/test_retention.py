"""Retention and read-disturb accumulation tests."""

import math

import pytest

from repro.device.mtj import MTJParams
from repro.device.retention import SECONDS_PER_YEAR, RetentionAnalysis
from repro.errors import ConfigurationError


@pytest.fixture
def analysis():
    return RetentionAnalysis(MTJParams())


class TestRetention:
    def test_zero_bake_is_safe(self, analysis):
        assert analysis.retention_failure_probability(0.0) == 0.0

    def test_probability_grows_with_time(self, analysis):
        p1 = analysis.retention_failure_probability(SECONDS_PER_YEAR)
        p10 = analysis.retention_failure_probability(10 * SECONDS_PER_YEAR)
        assert p10 > p1

    def test_retention_time_inverts_probability(self, analysis):
        target = 1e-9
        time = analysis.retention_time(target)
        assert analysis.retention_failure_probability(time) == pytest.approx(
            target, rel=1e-3
        )

    def test_delta_sizing_rule(self, analysis):
        # The classic result: 10-year retention at 1e-9 needs Δ ≈ 60.
        delta = analysis.thermal_stability_for_retention(10.0, 1e-9)
        assert 55.0 < delta < 65.0

    def test_delta_sizing_consistent(self):
        # A device built with exactly the required Δ hits the target.
        base = RetentionAnalysis(MTJParams())
        delta = base.thermal_stability_for_retention(10.0, 1e-9)
        sized = RetentionAnalysis(MTJParams(thermal_stability=delta))
        p = sized.retention_failure_probability(10 * SECONDS_PER_YEAR)
        assert p == pytest.approx(1e-9, rel=0.05)

    def test_rejects_invalid(self, analysis):
        with pytest.raises(ConfigurationError):
            analysis.retention_failure_probability(-1.0)
        with pytest.raises(ConfigurationError):
            analysis.retention_time(0.0)
        with pytest.raises(ConfigurationError):
            analysis.thermal_stability_for_retention(-1.0)
        with pytest.raises(ConfigurationError):
            RetentionAnalysis(MTJParams(), read_pulse_width=0.0)


class TestDisturbAccumulation:
    def test_single_read_negligible_at_paper_point(self, analysis):
        assert analysis.disturb_probability_per_read(200e-6) < 1e-12

    def test_accumulation_monotone_in_reads(self, analysis):
        current = 0.85 * analysis.params.i_c0
        p1 = analysis.accumulated_disturb_probability(current, 1e3)
        p2 = analysis.accumulated_disturb_probability(current, 1e6)
        assert p2 > p1

    def test_accumulation_stable_for_tiny_probabilities(self, analysis):
        # 1e9 reads in the linear (p·N ≪ 1) regime: the accumulator must
        # equal N·p instead of rounding to zero.
        p = analysis.accumulated_disturb_probability(200e-6, 1e9)
        expected = 1e9 * analysis.disturb_probability_per_read(200e-6)
        assert 0.0 < p == pytest.approx(expected, rel=1e-3)

    def test_extreme_read_counts_saturate_honestly(self, analysis):
        # 1e15 reads at 40% I_c0 is 200 days of *continuous* current —
        # comparable to the thermal mean-flip time, so the cumulative
        # probability is O(1).  This is the real read-disturb wall.
        p = analysis.accumulated_disturb_probability(200e-6, 1e15)
        assert 0.5 < p < 1.0

    def test_accumulation_approaches_one(self, analysis):
        current = 0.95 * analysis.params.i_c0
        assert analysis.accumulated_disturb_probability(current, 1e12) > 0.999

    def test_max_safe_current_below_critical(self, analysis):
        safe = analysis.max_safe_read_current(reads=1e15, target_probability=1e-9)
        assert 0.0 < safe < analysis.params.i_c0

    def test_paper_operating_point_is_safe_for_realistic_lifetimes(self, analysis):
        # A hot cell sees ~1e9 reads over a product lifetime; 40% of I_c0
        # keeps the cumulative flip probability under 1e-4 there.
        safe = analysis.max_safe_read_current(reads=1e9, target_probability=1e-4)
        assert safe > 0.4 * analysis.params.i_c0
        assert analysis.lifetime_reads(200e-6, target_probability=1e-4) > 1e9

    def test_max_safe_current_shrinks_with_reads(self, analysis):
        few = analysis.max_safe_read_current(reads=1e6)
        many = analysis.max_safe_read_current(reads=1e18)
        assert many <= few

    def test_lifetime_reads_inverse_of_accumulation(self, analysis):
        current = 0.8 * analysis.params.i_c0
        reads = analysis.lifetime_reads(current, target_probability=1e-6)
        assert analysis.accumulated_disturb_probability(
            current, reads
        ) == pytest.approx(1e-6, rel=1e-3)

    def test_lifetime_reads_infinite_at_zero_current(self, analysis):
        assert analysis.lifetime_reads(0.0) == math.inf

    def test_rejects_invalid(self, analysis):
        with pytest.raises(ConfigurationError):
            analysis.accumulated_disturb_probability(100e-6, -1.0)
        with pytest.raises(ConfigurationError):
            analysis.max_safe_read_current(0.0)
        with pytest.raises(ConfigurationError):
            analysis.lifetime_reads(100e-6, target_probability=2.0)
