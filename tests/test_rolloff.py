"""Roll-off model tests (incl. hypothesis property tests on the contract)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.rolloff import (
    PowerLawRollOff,
    RationalRollOff,
    TabulatedRollOff,
)
from repro.errors import ConfigurationError


class TestPowerLaw:
    def test_boundaries(self):
        model = PowerLawRollOff(1.5)
        assert model.fraction(0.0) == pytest.approx(0.0)
        assert model.fraction(1.0) == pytest.approx(1.0)

    def test_linear_is_identity(self):
        model = PowerLawRollOff(1.0)
        x = np.linspace(0, 1, 11)
        assert np.allclose(model.fraction(x), x)

    def test_quadratic(self):
        model = PowerLawRollOff(2.0)
        assert model.fraction(0.5) == pytest.approx(0.25)

    def test_negative_current_uses_magnitude(self):
        model = PowerLawRollOff(2.0)
        assert model.fraction(-0.5) == model.fraction(0.5)

    def test_scalar_in_scalar_out(self):
        assert isinstance(PowerLawRollOff(1.0).fraction(0.3), float)

    def test_array_in_array_out(self):
        out = PowerLawRollOff(1.0).fraction(np.array([0.1, 0.2]))
        assert isinstance(out, np.ndarray)

    def test_derivative_analytic(self):
        model = PowerLawRollOff(2.0)
        assert model.derivative(0.5) == pytest.approx(1.0)

    def test_derivative_at_zero_sublinear(self):
        model = PowerLawRollOff(0.5)
        assert model.derivative(0.0) == np.inf

    def test_invalid_exponent(self):
        with pytest.raises(ConfigurationError):
            PowerLawRollOff(0.0)
        with pytest.raises(ConfigurationError):
            PowerLawRollOff(-1.0)

    def test_validate_passes(self):
        PowerLawRollOff(2.0).validate()

    def test_repr(self):
        assert "1.5" in repr(PowerLawRollOff(1.5))

    @given(st.floats(0.1, 4.0), st.floats(0.0, 1.0))
    @settings(max_examples=50)
    def test_bounded_on_unit_interval(self, exponent, x):
        value = PowerLawRollOff(exponent).fraction(x)
        assert -1e-12 <= value <= 1.0 + 1e-12

    @given(st.floats(0.1, 4.0))
    @settings(max_examples=25)
    def test_monotone(self, exponent):
        model = PowerLawRollOff(exponent)
        grid = np.linspace(0, 1.5, 64)
        values = model.fraction(grid)
        assert np.all(np.diff(values) >= -1e-12)


class TestRational:
    def test_boundaries(self):
        model = RationalRollOff(2.0, 1.0)
        assert model.fraction(0.0) == pytest.approx(0.0)
        assert model.fraction(1.0) == pytest.approx(1.0)

    def test_large_knee_approaches_power_law(self):
        rational = RationalRollOff(2.0, 1e6)
        power = PowerLawRollOff(2.0)
        x = np.linspace(0, 1, 9)
        assert np.allclose(rational.fraction(x), power.fraction(x), atol=1e-5)

    def test_small_knee_saturates_early(self):
        model = RationalRollOff(2.0, 0.05)
        # Half-current already develops most of the full roll-off.
        assert model.fraction(0.5) > 0.8

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            RationalRollOff(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            RationalRollOff(2.0, 0.0)

    @given(st.floats(0.3, 4.0), st.floats(0.02, 100.0))
    @settings(max_examples=50)
    def test_contract(self, exponent, knee):
        RationalRollOff(exponent, knee).validate()


class TestTabulated:
    def test_interpolates_through_points(self):
        model = TabulatedRollOff([0.0, 0.5, 1.0], [0.0, 0.3, 1.0])
        assert model.fraction(0.5) == pytest.approx(0.3)
        assert model.fraction(1.0) == pytest.approx(1.0)

    def test_normalizes_ohm_valued_tables(self):
        # A table in ohms (e.g. digitized ΔR values) is normalized to f(1)=1.
        model = TabulatedRollOff([0.0, 0.5, 1.0], [0.0, 180.0, 600.0])
        assert model.fraction(1.0) == pytest.approx(1.0)
        assert model.fraction(0.5) == pytest.approx(0.3)

    def test_extrapolates_linearly_beyond_table(self):
        model = TabulatedRollOff([0.0, 1.0], [0.0, 1.0])
        assert model.fraction(1.2) == pytest.approx(1.2)

    def test_monotone_contract(self):
        TabulatedRollOff([0.0, 0.3, 1.0], [0.0, 0.1, 1.0]).validate()

    def test_rejects_decreasing_fractions(self):
        with pytest.raises(ConfigurationError):
            TabulatedRollOff([0.0, 0.5, 1.0], [0.0, 0.8, 0.5])

    def test_rejects_non_increasing_ratios(self):
        with pytest.raises(ConfigurationError):
            TabulatedRollOff([0.0, 0.5, 0.5, 1.0], [0.0, 0.2, 0.3, 1.0])

    def test_rejects_missing_origin(self):
        with pytest.raises(ConfigurationError):
            TabulatedRollOff([0.1, 1.0], [0.0, 1.0])

    def test_rejects_short_table(self):
        with pytest.raises(ConfigurationError):
            TabulatedRollOff([0.0], [0.0])

    def test_rejects_table_not_reaching_one(self):
        with pytest.raises(ConfigurationError):
            TabulatedRollOff([0.0, 0.9], [0.0, 1.0])
