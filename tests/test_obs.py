"""Observability layer (`repro.obs`): units + stack integration.

Three groups of guarantees, matching the contract in
``docs/OBSERVABILITY.md``:

* **registry/trace/runtime units** — canonical key rendering, fixed-edge
  bucket semantics, ring-buffer eviction, global-state save/restore;
* **non-interference** — enabling observability changes nothing the
  simulation computes: enabled and disabled runs of the same seed return
  bit-identical data and leave the RNG stream in the same position;
* **reconciliation & determinism** — campaign counters equal the campaign
  result's own totals exactly, and ``snapshot(profile=False)`` is
  identical across same-seed runs.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro import calibrated_cell, obs
from repro.circuit.sense_amp import SenseAmplifier
from repro.core import NondestructiveSelfReference, batch_from_scalar_reads
from repro.device.variation import CellPopulation, VariationModel
from repro.errors import ConfigurationError
from repro.faults import run_fault_campaign
from repro.obs import (
    ATTEMPTS_EDGES,
    FAULT_INJECTED,
    READ_ISSUED,
    MetricsRegistry,
    TraceBuffer,
    metric_key,
)

#: Wide-variation population + loose sense amp: forces metastable draws so
#: the RNG-consuming resolution path runs under instrumentation.
POPULATION = CellPopulation.sample(
    96, VariationModel().scaled(2.0), rng=np.random.default_rng(7)
)
WIDE_WINDOW = 0.05


def make_scheme() -> NondestructiveSelfReference:
    return NondestructiveSelfReference(sense_amp=SenseAmplifier(resolution=WIDE_WINDOW))


def pattern(seed: int = 3) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 2, POPULATION.size).astype(np.uint8)


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with observability globally disabled."""
    obs.reset()
    yield
    obs.reset()


class TestMetricKey:
    def test_bare_name_without_labels(self):
        assert metric_key("core.reads.batch") == "core.reads.batch"

    def test_labels_sorted_and_stringified(self):
        key = metric_key("ecc.words", {"status": "clean", "attempt": 2})
        assert key == "ecc.words{attempt=2,status=clean}"


class TestMetricsRegistry:
    def test_counter_defaults_and_amounts(self):
        registry = MetricsRegistry()
        assert registry.counter("x") == 0
        registry.inc("x")
        registry.inc("x", 4)
        assert registry.counter("x") == 5

    def test_counter_label_series_are_independent(self):
        registry = MetricsRegistry()
        registry.inc("campaign.words", outcome="recovered")
        registry.inc("campaign.words", 2, outcome="detected")
        assert registry.counter("campaign.words", outcome="recovered") == 1
        assert registry.counter("campaign.words", outcome="detected") == 2
        assert registry.counter("campaign.words") == 0
        assert registry.merge_counters(["campaign.words"]) == 3

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        assert registry.gauge("campaign.rate") is None
        registry.set_gauge("campaign.rate", 1e-4)
        registry.set_gauge("campaign.rate", 1e-3)
        assert registry.gauge("campaign.rate") == pytest.approx(1e-3)

    def test_histogram_bucket_semantics(self):
        # counts[0] <= edges[0]; counts[i] in (edges[i-1], edges[i]];
        # final slot is the overflow > edges[-1].
        registry = MetricsRegistry()
        for value in (0.5, 1.0, 1.5, 3.0, 99.0):
            registry.observe("h", value, edges=(1.0, 2.0, 3.0))
        snap = registry.histogram("h")
        assert snap["edges"] == [1.0, 2.0, 3.0]
        assert snap["counts"] == [2, 1, 1, 1]
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(105.0)
        assert snap["min"] == 0.5
        assert snap["max"] == 99.0

    def test_observe_many_matches_scalar_observes(self):
        values = np.random.default_rng(0).uniform(0.0, 10.0, 257)
        one, many = MetricsRegistry(), MetricsRegistry()
        for v in values:
            one.observe("h", v, edges=ATTEMPTS_EDGES)
        many.observe_many("h", values, edges=ATTEMPTS_EDGES)
        scalar, vectorized = one.histogram("h"), many.histogram("h")
        # Summation order differs between the loop and np.sum.
        assert vectorized["sum"] == pytest.approx(scalar.pop("sum"))
        del vectorized["sum"]
        assert scalar == vectorized

    def test_edges_fixed_at_first_registration(self):
        registry = MetricsRegistry()
        registry.observe("h", 1.0, edges=(1.0, 2.0), scheme="a")
        # Later observations (even new label series) may omit edges and
        # inherit the registered ones.
        registry.observe("h", 5.0, scheme="b")
        assert registry.histogram("h", scheme="b")["edges"] == [1.0, 2.0]

    def test_unregistered_histogram_requires_edges(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().observe("h", 1.0)

    def test_non_increasing_edges_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().observe("h", 1.0, edges=(2.0, 1.0))

    def test_snapshot_profile_segregation(self):
        registry = MetricsRegistry()
        registry.inc("x")
        registry.observe_profile("slow", 0.25)
        full = registry.snapshot()
        assert full["profile"]["slow"]["count"] == 1
        bare = registry.snapshot(profile=False)
        assert "profile" not in bare
        assert bare["counters"] == {"x": 1}

    def test_snapshot_keys_sorted(self):
        registry = MetricsRegistry()
        registry.inc("b.metric")
        registry.inc("a.metric", scheme="z")
        registry.inc("a.metric", scheme="a")
        keys = list(registry.snapshot()["counters"])
        assert keys == sorted(keys)

    def test_counters_with_prefix(self):
        registry = MetricsRegistry()
        registry.inc("retry.rounds", 2, scheme="s")
        registry.inc("retry.escalations", scheme="s")
        registry.inc("core.reads.batch")
        flat = registry.counters_with_prefix("retry.")
        assert flat == {
            "retry.escalations{scheme=s}": 1,
            "retry.rounds{scheme=s}": 2,
        }

    def test_write_json_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("x", 3, scheme="s")
        path = tmp_path / "metrics.json"
        registry.write_json(path, profile=False)
        assert json.loads(path.read_text()) == registry.snapshot(profile=False)


class TestTraceBuffer:
    def test_seq_monotonic_and_kind_filter(self):
        buffer = TraceBuffer()
        buffer.emit(READ_ISSUED, bits=7)
        buffer.emit(FAULT_INJECTED, cells=2)
        buffer.emit(READ_ISSUED, bits=9)
        assert [e.seq for e in buffer.events()] == [0, 1, 2]
        assert [e.fields["bits"] for e in buffer.events(READ_ISSUED)] == [7, 9]
        assert buffer.counts_by_kind() == {FAULT_INJECTED: 1, READ_ISSUED: 2}

    def test_ring_eviction_counts_dropped(self):
        buffer = TraceBuffer(capacity=3)
        for i in range(5):
            buffer.emit(READ_ISSUED, i=i)
        assert len(buffer) == 3
        assert buffer.dropped == 2
        assert [e.fields["i"] for e in buffer.events()] == [2, 3, 4]

    def test_field_may_itself_be_named_kind(self):
        # The fault-injection events label the fault kind this way; emit's
        # own parameter is positional-only precisely to allow it.
        event = TraceBuffer().emit(FAULT_INJECTED, kind="stuck-short", cells=3)
        assert event.kind == FAULT_INJECTED
        assert event.fields["kind"] == "stuck-short"

    def test_write_jsonl(self, tmp_path):
        buffer = TraceBuffer()
        buffer.emit(READ_ISSUED, scheme="s", bits=72)
        path = tmp_path / "events.jsonl"
        assert buffer.write_jsonl(path) == 1
        (line,) = path.read_text().splitlines()
        assert json.loads(line) == {
            "seq": 0,
            "kind": READ_ISSUED,
            "scheme": "s",
            "bits": 72,
        }

    def test_clear(self):
        buffer = TraceBuffer(capacity=1)
        buffer.emit(READ_ISSUED)
        buffer.emit(READ_ISSUED)
        buffer.clear()
        assert len(buffer) == 0 and buffer.dropped == 0
        assert buffer.emit(READ_ISSUED).seq == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            TraceBuffer(capacity=0)


class TestRuntime:
    def test_off_by_default(self):
        assert not obs.active()

    def test_configure_installs_fresh_stores(self):
        stale = obs.get_registry()
        registry, tracer = obs.configure(enabled=True)
        assert obs.active()
        assert registry is obs.get_registry() and registry is not stale
        assert tracer is obs.get_tracer()

    def test_configure_fresh_false_keeps_stores(self):
        registry, _ = obs.configure(enabled=True)
        registry.inc("x")
        kept, _ = obs.configure(enabled=True, fresh=False)
        assert kept is registry and kept.counter("x") == 1

    def test_capture_restores_previous_state(self):
        outer = obs.get_registry()
        with obs.capture(trace_capacity=8) as (registry, tracer):
            assert obs.active()
            assert tracer.capacity == 8
            obs.trace(READ_ISSUED, bits=1)
        assert not obs.active()
        assert obs.get_registry() is outer
        assert len(tracer.events()) == 1

    def test_trace_is_noop_when_disabled(self):
        obs.trace(READ_ISSUED, bits=1)
        assert len(obs.get_tracer().events()) == 0

    def test_profiled_decorator(self):
        @obs.profiled("test.func")
        def add(a, b):
            return a + b

        assert add.__obs_profiled__ == "test.func"
        assert add(1, 2) == 3  # disabled: plain tail call, nothing recorded
        with obs.capture() as (registry, _):
            assert add(1, 2) == 3
            assert registry.profile("test.func")["count"] == 1
        assert obs.get_registry().profile("test.func") is None

    def test_profile_block(self):
        with obs.capture() as (registry, _):
            with obs.profile_block("test.block"):
                pass
            assert registry.profile("test.block")["count"] == 1

    def test_reset_disables_and_discards(self):
        registry, _ = obs.configure(enabled=True)
        registry.inc("x")
        obs.reset()
        assert not obs.active()
        assert obs.get_registry().counter("x") == 0


class TestBatchReadInstrumentation:
    """Metering a batched read: counters, traces, and non-interference."""

    def test_enabled_run_bit_exact_with_disabled(self):
        scheme = make_scheme()
        rng_off = np.random.default_rng(11)
        off = scheme.read_many(POPULATION, pattern(), rng=rng_off)
        rng_on = np.random.default_rng(11)
        with obs.capture():
            on = scheme.read_many(POPULATION, pattern(), rng=rng_on)
        np.testing.assert_array_equal(off.bits, on.bits)
        np.testing.assert_array_equal(off.margins, on.margins)
        np.testing.assert_array_equal(off.metastable, on.metastable)
        # Instrumentation never consumes RNG draws: the streams agree on
        # the next value after the batch.
        assert rng_off.random() == rng_on.random()

    def test_batch_counters_and_trace(self):
        scheme = make_scheme()
        with obs.capture() as (registry, tracer):
            batch = scheme.read_many(
                POPULATION, pattern(), rng=np.random.default_rng(11)
            )
        assert registry.counter("core.reads.batch", scheme=scheme.name) == 1
        assert registry.counter("core.reads.bits", scheme=scheme.name) == batch.size
        assert (
            registry.counter("core.reads.metastable_bits", scheme=scheme.name)
            == batch.metastable_count
        )
        assert registry.profile("core.read_many")["count"] == 1
        (event,) = tracer.events(READ_ISSUED)
        assert event.fields["bits"] == batch.size
        assert event.fields["scheme"] == scheme.name

    def test_scalar_read_counters_and_result_metrics(self):
        cell = calibrated_cell()
        cell.write(1)
        scheme = NondestructiveSelfReference()
        with obs.capture() as (registry, _):
            result = scheme.read(cell, rng=np.random.default_rng(0))
        assert registry.counter("core.reads.scalar", scheme=scheme.name) == 1
        assert result.metrics["correct"] == 1.0
        assert result.metrics["write_pulses"] == 0.0

    def test_scalar_reference_loop_profiles(self):
        scheme = make_scheme()
        with obs.capture() as (registry, _):
            batch_from_scalar_reads(
                scheme, POPULATION, pattern(), rng=np.random.default_rng(1)
            )
        assert registry.profile("core.batch_from_scalar_reads")["count"] == 1


#: One small campaign configuration shared by the integration tests below
#: (32 SECDED words; heavy enough to exercise retry/ECC, light enough for CI).
CAMPAIGN_KW = dict(rates=(1e-3,), bits=2304, seed=7)


@pytest.fixture(scope="module")
def metered_campaigns():
    """Two independent same-seed metered runs (for determinism checks)."""
    runs = []
    for _ in range(2):
        with obs.capture() as (registry, tracer):
            result = run_fault_campaign(**CAMPAIGN_KW)
        runs.append((result, registry, tracer))
    return runs


@pytest.fixture(scope="module")
def plain_campaign():
    """The same campaign with observability left disabled."""
    obs.reset()
    return run_fault_campaign(**CAMPAIGN_KW)


class TestCampaignIntegration:
    def test_disabled_run_has_no_metrics(self, plain_campaign):
        assert plain_campaign.metrics is None

    def test_metering_does_not_change_the_campaign(
        self, metered_campaigns, plain_campaign
    ):
        (metered, _, _), _ = metered_campaigns
        assert len(metered.rows) == len(plain_campaign.rows)
        for on, off in zip(metered.rows, plain_campaign.rows):
            assert dataclasses.asdict(on) == dataclasses.asdict(off)

    def test_same_seed_runs_snapshot_identically(self, metered_campaigns):
        (r1, reg1, t1), (r2, reg2, t2) = metered_campaigns
        snap1 = reg1.snapshot(profile=False)
        assert snap1 == reg2.snapshot(profile=False)
        assert r1.metrics == snap1 == r2.metrics
        # The serialized artifact (what --metrics-out writes) is
        # byte-identical too.
        assert reg1.to_json(profile=False) == reg2.to_json(profile=False)
        assert t1.counts_by_kind() == t2.counts_by_kind()

    def test_counters_reconcile_with_result(self, metered_campaigns):
        (result, registry, _), _ = metered_campaigns
        (row,) = result.rows
        detected = registry.counter("campaign.words", outcome="detected")
        escaped = registry.counter("campaign.words", outcome="escaped")
        recovered = registry.counter("campaign.words", outcome="recovered")
        assert detected == row.detected_words
        assert escaped == row.escaped_words
        assert recovered == row.words - row.detected_words - row.escaped_words
        assert registry.merge_counters(["campaign.words"]) == row.words
        assert registry.gauge("campaign.rate") == pytest.approx(1e-3)

    def test_tier_counters_reconcile_with_ladder(self, metered_campaigns):
        (result, registry, _), _ = metered_campaigns
        (row,) = result.rows
        for tier, count in row.tier_counts.items():
            assert registry.counter("recovery.words", tier=tier) == count, tier

    def test_exercised_instrumentation_recorded_something(
        self, metered_campaigns
    ):
        (_, registry, tracer), _ = metered_campaigns
        assert registry.merge_counters(["core.reads.batch"]) > 0
        assert registry.merge_counters(["faults.injected_cells"]) > 0
        assert registry.histogram("retry.attempts", scheme="nondestructive self-reference")
        assert tracer.events(READ_ISSUED)
