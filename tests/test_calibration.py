"""Calibration tests: targets, fit quality, Table I derivation."""

import pytest

from repro.calibration.fit import calibrate, calibrated_cell, calibrated_device
from repro.calibration.table1 import derive_table1
from repro.calibration.targets import PAPER_TARGETS, PaperTargets


class TestTargets:
    def test_tmr_about_105_percent(self):
        assert PAPER_TARGETS.tmr == pytest.approx(1.049, abs=1e-3)

    def test_read_disturb_fraction(self):
        assert PAPER_TARGETS.i_read_max / PAPER_TARGETS.i_switching == pytest.approx(
            PAPER_TARGETS.read_disturb_fraction
        )

    def test_frozen(self):
        with pytest.raises(Exception):
            PAPER_TARGETS.r_high = 3000.0

    def test_consistency_of_rtr_windows(self):
        # DESIGN.md §2 cross-check: window ≈ SM / I_R1.
        t = PAPER_TARGETS
        i_r1 = t.i_read_max / t.beta_destructive
        assert t.margin_destructive / i_r1 == pytest.approx(
            t.rtr_window_destructive, rel=0.01
        )
        i_r1 = t.i_read_max / t.beta_nondestructive
        assert t.margin_nondestructive / i_r1 == pytest.approx(
            t.rtr_window_nondestructive, rel=0.01
        )


class TestFit:
    def test_margins_hit_paper_values(self, calibration):
        assert calibration.margin_destructive == pytest.approx(76.6e-3, rel=0.005)
        assert calibration.margin_nondestructive == pytest.approx(12.1e-3, rel=0.005)

    def test_betas_near_paper_values(self, calibration):
        assert calibration.beta_destructive == pytest.approx(1.22, abs=0.03)
        assert calibration.beta_nondestructive == pytest.approx(2.13, abs=0.02)

    def test_anchored_parameters_unchanged(self, calibration):
        assert calibration.params.r_high == PAPER_TARGETS.r_high
        assert calibration.params.r_low == PAPER_TARGETS.r_low
        assert calibration.params.dr_high_max == PAPER_TARGETS.dr_high_max

    def test_low_state_rolloff_small(self, calibration):
        # "R_L1 is close to R_L2" (paper Eq. 9's justification).
        assert calibration.params.dr_low_max < 0.5 * calibration.params.dr_high_max

    def test_cached(self):
        assert calibrate() is calibrate()

    def test_device_construction(self, calibration):
        device = calibration.device()
        assert device.resistance(0.0) == pytest.approx(1220.0)

    def test_cell_construction(self, calibration):
        cell = calibration.cell(917.0)
        assert cell.transistor.resistance(0.0) == pytest.approx(917.0)

    def test_convenience_wrappers(self):
        assert calibrated_device().params.r_high == 2500.0
        assert calibrated_cell().stored_bit == 0

    def test_rolloff_shapes_valid(self, calibration):
        calibration.rolloff_high().validate()
        calibration.rolloff_low().validate()

    def test_custom_targets_produce_different_fit(self):
        custom = PaperTargets(margin_nondestructive=15e-3)
        result = calibrate(custom)
        assert result.margin_nondestructive == pytest.approx(15e-3, rel=0.02)


class TestTable1:
    def test_operating_points_consistent_with_fit(self, calibration):
        table = derive_table1()
        assert table.destructive.beta == pytest.approx(calibration.beta_destructive)
        assert table.nondestructive.beta == pytest.approx(
            calibration.beta_nondestructive
        )

    def test_resistances_ordered(self):
        table = derive_table1()
        for point in (table.destructive, table.nondestructive):
            assert point.r_high_1 > point.r_low_1
            assert point.r_high_2 > point.r_low_2
            assert point.r_high_1 > point.r_high_2  # roll-off

    def test_rolloff_between_reads_larger_for_high_state(self):
        table = derive_table1()
        n = table.nondestructive
        assert n.dr_high_12 > 10 * abs(n.dr_low_12)

    def test_nondestructive_uses_larger_beta(self):
        table = derive_table1()
        assert table.nondestructive.beta > table.destructive.beta

    def test_read_currents(self):
        table = derive_table1()
        assert table.destructive.i_read2 == pytest.approx(200e-6)
        assert table.destructive.i_read1 == pytest.approx(
            200e-6 / table.destructive.beta
        )
