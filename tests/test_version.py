"""Version single-sourcing: every declared version must agree.

``repro.__version__`` resolves through ``importlib.metadata`` with the
``src/repro/__init__.py`` literal as fallback; ``pyproject.toml`` and
``CITATION.cff`` each carry their own copy for packaging and citation
tooling.  This test pins all of them together so a release bump cannot
drift one surface out of sync (the failure mode: a wheel that reports a
different version than its citation metadata).
"""

from __future__ import annotations

import re
from pathlib import Path

import repro
from repro.cli import package_version

ROOT = Path(__file__).resolve().parent.parent


def _pyproject_version() -> str:
    text = (ROOT / "pyproject.toml").read_text(encoding="utf-8")
    match = re.search(r'^version = "([^"]+)"$', text, flags=re.MULTILINE)
    assert match, "pyproject.toml lost its version field"
    return match.group(1)


def _citation_version() -> str:
    text = (ROOT / "CITATION.cff").read_text(encoding="utf-8")
    match = re.search(r"^version: (\S+)$", text, flags=re.MULTILINE)
    assert match, "CITATION.cff lost its version field"
    return match.group(1)


def _fallback_literal() -> str:
    text = (ROOT / "src" / "repro" / "__init__.py").read_text(encoding="utf-8")
    match = re.search(r'__version__ = "([^"]+)"', text)
    assert match, "src/repro/__init__.py lost its fallback version literal"
    return match.group(1)


class TestVersionAgreement:
    def test_every_surface_reports_one_version(self):
        assert (
            repro.__version__
            == package_version()
            == _pyproject_version()
            == _citation_version()
            == _fallback_literal()
        )

    def test_version_is_semver_shaped(self):
        assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)
