"""Resilience layer: structural failures, deadlines, hedging, journal.

The load-bearing properties:

* failure-scenario geometry draws only from the **reserved** ``(seed, 7)``
  stream and is deterministic — the same seed rebuilds the same calendar,
  which is what makes ``repro serve --failures ... --check`` pass;
* the conservation invariant
  ``requests == completed + shed + timed_out + failed`` holds under every
  scenario — nothing escapes the accounting silently;
* deadlines bound *service start* (an expired request never occupies a
  bank), hedge twins never complete twice, and the controller retry
  budget terminates in an ``unreachable`` record, never a hang;
* the write-ahead journal replays acknowledged writes **bit-exactly**
  after a mid-trace crash (:func:`run_crash_restart`), and the chaos
  campaign gates all of the above (:func:`run_chaos_campaign`).
"""

from __future__ import annotations

import dataclasses
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, FaultError
from repro.service import (
    CHAOS_SCENARIOS,
    FAILURE_KINDS,
    ChaosRow,
    ControllerConfig,
    CrashRestartResult,
    DiscreteEventEngine,
    FailureEvent,
    FailureScenario,
    JournalRecord,
    MemoryController,
    Request,
    WriteAheadJournal,
    bank_offline,
    build_failure_scenario,
    build_workload,
    channel_outage,
    controller_stall,
    install_failures,
    load_trace,
    run_chaos_campaign,
    run_crash_restart,
    save_trace,
    sense_amp_lockup,
    simulate_service,
)

# Fixed service times: resilience properties are timing-model independent,
# so skip the calibrated latency stack for speed (same idiom as
# tests/test_topology.py).
READ_TIME = 12.6e-9
WRITE_TIME = 22.0e-9


def _config(**kwargs) -> ControllerConfig:
    kwargs.setdefault("banks", 4)
    return ControllerConfig(READ_TIME, WRITE_TIME, **kwargs)


def _requests(count=200, rate=2.0e8, addresses=256, write_fraction=0.0,
              seed=2010):
    stream = build_workload(
        rate=rate, addresses=addresses, write_fraction=write_fraction,
    )
    return stream.generate(count, np.random.default_rng((seed, 0)))


def _with_deadline(requests, slack):
    return [
        dataclasses.replace(request, deadline=request.time + slack)
        for request in requests
    ]


def _span(requests) -> float:
    return max(request.time for request in requests)


class TestFailureEvents:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureEvent("meteor-strike", 0.0, 1.0)

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            FailureEvent("bank-offline", -1.0, 1.0)
        with pytest.raises(ConfigurationError):
            FailureEvent("bank-offline", 0.0, 0.0)
        with pytest.raises(ConfigurationError):
            FailureEvent("bank-offline", 0.0, 1.0, target=-1)

    def test_stall_needs_inflation(self):
        with pytest.raises(ConfigurationError):
            FailureEvent("controller-stall", 0.0, 1.0, stall_factor=1.0)
        event = FailureEvent("controller-stall", 1.0, 2.0, stall_factor=4.0)
        assert event.end == pytest.approx(3.0)

    def test_scenario_validation(self):
        event = FailureEvent("bank-offline", 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            FailureScenario("", (event,))
        with pytest.raises(ConfigurationError):
            FailureScenario("empty", ())
        late = FailureEvent("bank-offline", 0.5, 1.0)
        with pytest.raises(ConfigurationError):
            FailureScenario("unordered", (event, late))

    def test_kinds_and_outage_windows(self):
        scenario = FailureScenario("mixed", (
            FailureEvent("channel-outage", 1.0, 2.0, target=1),
            FailureEvent("bank-offline", 2.0, 1.0, target=0),
            FailureEvent("channel-outage", 5.0, 1.0, target=0),
        ))
        assert scenario.kinds == ("channel-outage", "bank-offline")
        assert scenario.outage_windows() == ((1, 1.0, 3.0), (0, 5.0, 6.0))


class TestScenarioBuilders:
    def test_geometry_is_deterministic(self):
        first = build_failure_scenario("bank-offline", 1e-6, seed=7)
        second = build_failure_scenario("bank-offline", 1e-6, seed=7)
        assert first == second
        assert first != build_failure_scenario("bank-offline", 1e-6, seed=8)

    def test_all_kinds_share_one_window_per_seed(self):
        # Three draws regardless of kind: every scenario under one seed
        # gets the identical window, so comparisons isolate the kind.
        spans = [
            build_failure_scenario(name, 1e-6, seed=11, channels=4)
            for name in FAILURE_KINDS
        ]
        starts = {scenario.events[0].start for scenario in spans}
        durations = {scenario.events[0].duration for scenario in spans}
        assert len(starts) == 1 and len(durations) == 1

    def test_window_lands_mid_trace(self):
        scenario = build_failure_scenario("controller-stall", 1e-6, seed=3)
        (event,) = scenario.events
        assert 0.25e-6 <= event.start <= 0.40e-6
        assert 0.25e-6 <= event.duration <= 0.40e-6

    def test_bad_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            build_failure_scenario("bank-offline", 0.0)
        with pytest.raises(ConfigurationError):
            build_failure_scenario("crash-restart", 1e-6)

    def test_builders_produce_single_window_scenarios(self):
        assert controller_stall(1.0, 2.0).kinds == ("controller-stall",)
        assert bank_offline(1.0, 2.0, bank=3).events[0].target == 3
        assert sense_amp_lockup(1.0, 2.0).kinds == ("sense-lockup",)
        assert channel_outage(1.0, 2.0, channel=1).outage_windows() == (
            (1, 1.0, 3.0),
        )


class TestInstallFailures:
    def test_each_window_schedules_onset_and_heal(self):
        engine = DiscreteEventEngine()
        controller = MemoryController(engine, _config())
        scenario = bank_offline(1.0e-6, 1.0e-6, bank=2)
        assert install_failures(engine, controller, scenario) == 2
        assert engine.pending == 2

    def test_channel_outage_rejected_on_flat_controller(self):
        engine = DiscreteEventEngine()
        controller = MemoryController(engine, _config())
        with pytest.raises(ConfigurationError, match="topology"):
            install_failures(engine, controller, channel_outage(1.0, 1.0))


class TestControllerStall:
    def test_stall_inflates_latency_and_conserves(self):
        requests = _requests(300)
        baseline = simulate_service(requests, _config())
        scenario = build_failure_scenario(
            "controller-stall", _span(requests), seed=2010
        )
        stalled = simulate_service(requests, _config(), failures=scenario)
        assert stalled.requests == stalled.completed == baseline.completed
        assert stalled.read_latency.p99 > baseline.read_latency.p99
        assert stalled.timed_out == stalled.failed_requests == 0

    def test_stall_factor_validated(self):
        engine = DiscreteEventEngine()
        controller = MemoryController(engine, _config())
        with pytest.raises(ConfigurationError):
            controller.set_stall_factor(0.0)


class TestDeadlines:
    def test_expired_requests_drop_instead_of_serving(self):
        requests = _with_deadline(_requests(300), 25.0 * READ_TIME)
        scenario = build_failure_scenario(
            "controller-stall", _span(requests), seed=2010
        )
        report = simulate_service(requests, _config(), failures=scenario)
        assert report.timed_out > 0
        assert report.requests == report.completed + report.timed_out
        assert report.availability < 1.0

    def test_loose_deadlines_change_nothing(self):
        requests = _requests(200)
        baseline = simulate_service(requests, _config())
        relaxed = simulate_service(
            _with_deadline(requests, 1.0), _config()
        )
        assert relaxed.timed_out == 0
        assert relaxed.completed == baseline.completed
        assert relaxed.read_latency == baseline.read_latency

    def test_timeout_records_never_occupy_a_bank(self):
        engine = DiscreteEventEngine()
        controller = MemoryController(engine, _config(banks=1))
        # Two reads on one bank: the second's deadline expires while the
        # first is in service, so it must drop at dequeue with
        # start == finish (no occupancy) rather than being served late.
        controller.submit_all([
            Request(0, 0.0, 0, "read"),
            Request(1, 0.0, 1, "read", deadline=0.5 * READ_TIME),
        ])
        engine.run()
        by_id = {c.request.request_id: c for c in controller.completions}
        assert not by_id[0].timed_out
        assert by_id[1].timed_out
        assert by_id[1].start == by_id[1].finish

    def test_negative_deadline_rejected(self):
        with pytest.raises(ConfigurationError):
            Request(0, 0.0, 0, "read", deadline=-1.0)


class TestBankOffline:
    def test_outage_queues_then_drains(self):
        requests = _requests(300)
        scenario = build_failure_scenario(
            "bank-offline", _span(requests), seed=2010
        )
        (event,) = scenario.events
        report = simulate_service(requests, _config(), failures=scenario)
        assert report.completed == report.requests
        assert report.read_latency.max >= event.duration * 0.5

    def test_no_service_starts_during_the_window(self):
        engine = DiscreteEventEngine()
        controller = MemoryController(engine, _config(banks=2))
        scenario = bank_offline(1.0e-9, 100.0e-9, bank=0)
        install_failures(engine, controller, scenario)
        controller.submit_all([
            Request(0, 2.0e-9, 0, "read"),   # bank 0: must wait for heal
            Request(1, 2.0e-9, 1, "read"),   # bank 1: unaffected
        ])
        engine.run()
        by_id = {c.request.request_id: c for c in controller.completions}
        assert by_id[0].start == pytest.approx(101.0e-9)
        assert by_id[1].start == pytest.approx(2.0e-9)

    def test_bank_index_validated(self):
        engine = DiscreteEventEngine()
        controller = MemoryController(engine, _config())
        with pytest.raises(ConfigurationError):
            controller.set_bank_offline(9)


class TestSenseLockup:
    def test_locked_reads_are_detected_losses(self):
        engine = DiscreteEventEngine()
        controller = MemoryController(engine, _config(banks=2))
        install_failures(
            engine, controller, sense_amp_lockup(0.0, 50.0e-9, bank=0)
        )
        controller.submit_all([
            Request(0, 1.0e-9, 0, "read"),    # in the window: lost loudly
            Request(1, 60.0e-9, 0, "read"),   # after release: clean
        ])
        engine.run()
        by_id = {c.request.request_id: c for c in controller.completions}
        assert by_id[0].failed and not by_id[0].unreachable
        assert not by_id[1].failed

    def test_retry_budget_rides_out_the_window(self):
        engine = DiscreteEventEngine()
        config = _config(
            banks=2, request_retries=1, retry_backoff=100.0e-9
        )
        controller = MemoryController(engine, config)
        install_failures(
            engine, controller, sense_amp_lockup(0.0, 50.0e-9, bank=0)
        )
        # The first attempt lands in the window and fails; the backoff
        # pushes the retry past the release, where it succeeds.
        controller.submit(Request(0, 1.0e-9, 0, "read"))
        engine.run()
        (completed,) = controller.completions
        assert not completed.failed
        assert completed.retries == 1
        assert controller.retries_performed == 1

    def test_exhausted_budget_is_terminal_unreachable(self):
        engine = DiscreteEventEngine()
        config = _config(banks=2, request_retries=1, retry_backoff=1.0e-9)
        controller = MemoryController(engine, config)
        install_failures(
            engine, controller, sense_amp_lockup(0.0, 1.0e-3, bank=0)
        )
        controller.submit(Request(0, 1.0e-9, 0, "read"))
        engine.run()
        (completed,) = controller.completions
        assert completed.unreachable and completed.failed
        assert completed.retries == 1


class TestHedgedReads:
    def test_hedge_rides_around_a_dead_bank(self):
        engine = DiscreteEventEngine()
        config = _config(banks=2, hedge_after=5.0e-9)
        controller = MemoryController(engine, config)
        install_failures(
            engine, controller, bank_offline(0.0, 1.0e-6, bank=0)
        )
        controller.submit(Request(0, 1.0e-9, 0, "read"))
        engine.run()
        (completed,) = controller.completions
        assert completed.bank == 1          # served by the hedge twin
        assert completed.finish < 1.0e-6    # long before the heal
        assert controller.hedged == 1
        assert controller.hedge_wins == 1

    def test_no_request_completes_twice(self):
        requests = _requests(300)
        scenario = build_failure_scenario(
            "bank-offline", _span(requests), seed=2010
        )
        report = simulate_service(
            requests, _config(hedge_after=10.0 * READ_TIME),
            failures=scenario,
        )
        assert report.requests == report.completed
        assert report.hedged >= report.hedge_wins

    def test_idle_hedge_never_fires(self):
        # An unloaded run finishes every read before the hedge timer.
        report = simulate_service(
            _requests(100, rate=1.0e6), _config(hedge_after=50.0 * READ_TIME)
        )
        assert report.hedged == 0


class _StubBackend:
    """Minimal write/replay surface for journal unit tests."""

    def __init__(self):
        self.values = {}
        self.writes = 0

    def write(self, address, value):
        self.values[address] = value
        self.writes += 1


class TestWriteAheadJournal:
    def test_append_acknowledge_partition(self):
        journal = WriteAheadJournal()
        assert journal.append(0, 5, 111, 1.0e-9) == 0
        assert journal.append(1, 6, 222, 2.0e-9) == 1
        journal.acknowledge(0, 3.0e-9)
        assert journal.appended == 2 and journal.acknowledged == 1
        assert [r.request_id for r in journal.acknowledged_records()] == [0]
        assert [r.request_id for r in journal.unacknowledged_records()] == [1]

    def test_replay_applies_only_acked_in_order(self):
        journal = WriteAheadJournal()
        journal.append(0, 5, 111, 1.0e-9)
        journal.append(1, 5, 222, 2.0e-9)   # same address, later write
        journal.append(2, 6, 333, 3.0e-9)   # never acknowledged
        journal.acknowledge(0, 4.0e-9)
        journal.acknowledge(1, 5.0e-9)
        backend = _StubBackend()
        backend.writes = 7
        assert journal.replay(backend) == 2
        assert backend.values == {5: 222}   # append order won
        assert backend.writes == 7          # replay is not workload traffic

    def test_jsonl_round_trip(self, tmp_path):
        journal = WriteAheadJournal()
        journal.append(0, 5, 111, 1.0e-9)
        journal.append(1, 6, 222, 2.0e-9)
        journal.acknowledge(1, 3.0e-9)
        path = tmp_path / "journal.jsonl"
        assert journal.write_jsonl(path) == 2
        loaded = WriteAheadJournal.load_jsonl(path)
        assert loaded.appended == 2 and loaded.acknowledged == 1
        assert loaded.acknowledged_records() == journal.acknowledged_records()
        assert (loaded.unacknowledged_records()
                == journal.unacknowledged_records())

    def test_record_validation(self):
        with pytest.raises(ConfigurationError):
            JournalRecord(-1, 0, 0, 0, 0.0)
        with pytest.raises(ConfigurationError):
            JournalRecord(0, 0, 0, -5, 0.0)


class TestCrashRestart:
    @pytest.fixture(scope="class")
    def result(self) -> CrashRestartResult:
        stream = build_workload(rate=2.0e8, addresses=80, write_fraction=0.35)
        requests = stream.generate(150, np.random.default_rng((2010, 0)))
        return run_crash_restart(
            requests,
            crash_time=0.5 * _span(requests),
            bits=720,
            config=_config(),
        )

    def test_invariants_hold(self, result):
        result.check()
        assert result.conserved and result.bit_exact
        assert result.corrupted_words == 0

    def test_two_phases_account_for_everything(self, result):
        assert result.requests == (
            result.completed + result.shed + result.timed_out
            + result.failed_requests
        )
        assert result.completed == (
            result.pre_crash_completed + result.resumed_completed
        )
        assert result.pre_crash_completed > 0
        assert result.resumed_completed > 0

    def test_journal_accounting(self, result):
        assert result.journaled_writes > 0
        assert result.replayed_writes == result.acknowledged_writes
        # journaled_writes spans both phases; acknowledged/lost are
        # crash-time snapshots, so the total bounds their sum.
        assert result.journaled_writes >= (
            result.acknowledged_writes + result.lost_writes
        )
        assert result.durable_addresses > 0
        assert result.mismatched_addresses == 0

    def test_inputs_validated(self):
        with pytest.raises(ConfigurationError):
            run_crash_restart([], crash_time=1.0)
        with pytest.raises(ConfigurationError):
            run_crash_restart(
                [Request(0, 0.0, 0, "read")], crash_time=0.0
            )


class TestChaosCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        return run_chaos_campaign(150, bits=720, seed=2010)

    def test_every_scenario_swept(self, campaign):
        assert tuple(row.scenario for row in campaign.rows) == CHAOS_SCENARIOS

    def test_gates_pass(self, campaign):
        campaign.check()
        for row in campaign.rows:
            assert row.conserved and row.bit_exact
            assert row.corrupted_words == 0
            assert row.availability >= campaign.availability_floor

    def test_to_dict_is_artifact_shaped(self, campaign):
        payload = campaign.to_dict()
        assert set(payload["scenarios"]) == set(CHAOS_SCENARIOS)
        for section in payload["scenarios"].values():
            assert "requests" in section and "availability" in section

    def test_check_rejects_broken_rows(self, campaign):
        broken = dataclasses.replace(
            campaign, rows=(dataclasses.replace(
                campaign.rows[0], corrupted_words=1,
            ),)
        )
        with pytest.raises(FaultError, match="silent escapes"):
            broken.check()
        starved = dataclasses.replace(
            campaign, availability_floor=1.01,
        )
        with pytest.raises(FaultError, match="below floor"):
            starved.check()

    def test_scenario_subset_runs(self):
        result = run_chaos_campaign(
            80, bits=720, scenarios=("sense-lockup",)
        )
        (row,) = result.rows
        assert isinstance(row, ChaosRow)
        assert row.scenario == "sense-lockup"


class TestConservationInvariant:
    def test_mismatch_raises(self):
        report = simulate_service(_requests(50), _config())
        report.check_conservation()     # clean run chains through
        broken = dataclasses.replace(report, requests=report.requests + 1)
        with pytest.raises(FaultError, match="conservation"):
            broken.check_conservation()

    def test_availability_counts_real_responses_only(self):
        report = simulate_service(_requests(50), _config())
        assert report.availability == 1.0
        degraded = dataclasses.replace(
            report, requests=100, completed=80, timed_out=15,
            failed_requests=5,
        )
        assert degraded.availability == pytest.approx(0.8)
        degraded.check_conservation()


class TestTraceDeadlines:
    def test_deadlines_round_trip(self, tmp_path):
        requests = _with_deadline(_requests(120), 30.0 * READ_TIME)
        path = tmp_path / "trace.jsonl"
        save_trace(path, requests)
        assert list(load_trace(path)) == list(requests)

    def test_zero_deadline_traces_omit_the_key(self, tmp_path):
        requests = _requests(60)
        path = tmp_path / "trace.jsonl"
        save_trace(path, requests)
        assert '"dl"' not in path.read_text()
        assert all(r.deadline == 0.0 for r in load_trace(path))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1.0e-3, allow_nan=False),
            st.integers(min_value=0, max_value=1 << 40),
            st.sampled_from(["read", "write"]),
            st.integers(min_value=0, max_value=3),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        ),
        min_size=1, max_size=40,
    ))
    def test_round_trip_is_exact_for_any_field_mix(self, rows):
        requests = [
            Request(i, time, address, op, priority=priority,
                    deadline=deadline)
            for i, (time, address, op, priority, deadline) in enumerate(rows)
        ]
        with tempfile.NamedTemporaryFile("w", suffix=".jsonl") as handle:
            save_trace(handle.name, requests)
            assert list(load_trace(handle.name)) == requests


class TestEngineDropPending:
    def test_drop_discards_everything_and_keeps_the_clock(self):
        engine = DiscreteEventEngine()
        fired = []
        engine.schedule_at(1.0e-9, fired.append, "early")
        engine.run()
        engine.schedule_at(5.0e-9, fired.append, "late")
        engine.schedule_at(6.0e-9, fired.append, "later")
        assert engine.drop_pending() == 2
        engine.run()
        assert fired == ["early"]
        assert engine.now == pytest.approx(1.0e-9)
        assert engine.drop_pending() == 0
