"""Capacity-scaling projection and write-error-rate tests."""

import math

import numpy as np
import pytest

from repro.analysis.scaling import project_fail_fraction, project_scaling
from repro.array.montecarlo import run_margin_monte_carlo
from repro.array.yield_analysis import MarginStatistics, analyze_margins
from repro.device.mtj import MTJParams
from repro.device.switching import SwitchingModel
from repro.device.variation import CellPopulation
from repro.errors import ConfigurationError


def make_stats(mean, std, scheme="x") -> MarginStatistics:
    return MarginStatistics(
        scheme=scheme, bits=1000, fail_count=0, fail_fraction=0.0,
        yield_fraction=1.0, mean_margin=mean, std_margin=std,
        min_margin=mean - 3 * std, percentile_1=mean - 2.3 * std,
        mean_sm0=mean, mean_sm1=mean,
    )


class TestProjectFailFraction:
    def test_zero_std_pass(self):
        assert project_fail_fraction(12e-3, 0.0, 8e-3) == 0.0

    def test_zero_std_fail(self):
        assert project_fail_fraction(5e-3, 0.0, 8e-3) == 1.0

    def test_gaussian_tail(self):
        # Mean 2σ above the window: P ≈ 2.28%.
        p = project_fail_fraction(10e-3, 1e-3, 8e-3)
        assert p == pytest.approx(0.02275, rel=0.01)

    def test_monotone_in_margin(self):
        p_tight = project_fail_fraction(9e-3, 1e-3, 8e-3)
        p_loose = project_fail_fraction(15e-3, 1e-3, 8e-3)
        assert p_loose < p_tight

    def test_rejects_negative_std(self):
        with pytest.raises(ConfigurationError):
            project_fail_fraction(10e-3, -1.0, 8e-3)


class TestProjection:
    def test_clean_capacity_inverse_of_probability(self):
        stats = make_stats(12e-3, 1e-3)
        projection = project_scaling(stats)
        assert projection.clean_capacity_bits == pytest.approx(
            1.0 / projection.bit_fail_probability
        )

    def test_infinite_capacity_for_perfect_margins(self):
        projection = project_scaling(make_stats(1.0, 0.0))
        assert projection.clean_capacity_bits == math.inf
        assert projection.supports_gigabit_without_repair

    def test_per_capacity_counts(self):
        projection = project_scaling(make_stats(11e-3, 1e-3))
        assert projection.expected_fails_per_gigabit == pytest.approx(
            projection.expected_fails_per_megabit * 1024
        )

    def test_destructive_scales_furthest(self, rng, calibration):
        from repro.array.testchip import TESTCHIP_VARIATION

        population = CellPopulation.sample(
            8192,
            TESTCHIP_VARIATION,
            params=calibration.params,
            rolloff_high=calibration.rolloff_high(),
            rolloff_low=calibration.rolloff_low(),
            rng=rng,
        )
        report = analyze_margins(
            run_margin_monte_carlo(
                population,
                beta_destructive=calibration.beta_destructive,
                beta_nondestructive=calibration.beta_nondestructive,
                include_sa_offset=False,
            )
        )
        destructive = project_scaling(report["destructive"])
        nondestructive = project_scaling(report["nondestructive"])
        conventional = project_scaling(report["conventional"])
        assert destructive.clean_capacity_bits > nondestructive.clean_capacity_bits
        assert nondestructive.clean_capacity_bits > conventional.clean_capacity_bits
        # The paper's 16kb chip is comfortably inside the nondestructive
        # scheme's clean capacity — consistent with its all-pass measurement.
        assert nondestructive.clean_capacity_bits > 16384


class TestWriteErrorRate:
    @pytest.fixture
    def model(self):
        return SwitchingModel(MTJParams())

    def test_wer_complements_switch_probability(self, model):
        current = 700e-6
        assert model.write_error_rate(current) == pytest.approx(
            1.0 - model.switch_probability(current, 4e-9)
        )

    def test_wer_tiny_at_nominal_overdrive(self, model):
        # The destructive scheme's 1.5x overdrive writes: ~2e-9 WER per
        # pulse — negligible against its sense margins, but nonzero (every
        # destructive read rolls these dice twice).
        assert model.write_error_rate(1.5 * model.params.i_c0) < 1e-8

    def test_wer_monotone_decreasing_in_current(self, model):
        currents = np.linspace(0.9, 2.0, 12) * model.params.i_c0
        wers = [model.write_error_rate(float(c)) for c in currents]
        assert all(b <= a for a, b in zip(wers, wers[1:]))

    def test_wer_half_at_marginal_current(self, model):
        # Just below I_c0 with the nominal pulse: unreliable writes.
        assert model.write_error_rate(0.98 * model.params.i_c0) > 0.1

    def test_longer_pulse_reduces_wer(self, model):
        current = 1.02 * model.params.i_c0
        assert model.write_error_rate(current, 40e-9) < model.write_error_rate(
            current, 4e-9
        )
