"""Final coverage batch: remaining behavioural corners across layers."""

import numpy as np
import pytest

from repro.array.array import STTRAMArray
from repro.circuit.nonlinear import NonlinearCircuit, mtj_branch_current
from repro.circuit.sense_amp import SenseAmplifier
from repro.core.nondestructive import NondestructiveSelfReference
from repro.device.variation import CellPopulation, VariationModel
from repro.errors import ConfigurationError


class TestArrayMetastableReads:
    def test_metastable_bits_resolve_to_zero_in_words(self, rng, calibration):
        # A dead sense amp makes every comparison metastable with rng=None;
        # read_word must still return (all-zero) instead of crashing.
        population = CellPopulation.sample(
            16,
            VariationModel(sigma_alpha_frac=0.0, sigma_beta_frac=0.0),
            params=calibration.params,
            rolloff_high=calibration.rolloff_high(),
            rolloff_low=calibration.rolloff_low(),
            rng=rng,
        )
        array = STTRAMArray(population, word_width=8)
        array.write_word(0, 0xFF)
        dead = NondestructiveSelfReference(
            beta=calibration.beta_nondestructive,
            sense_amp=SenseAmplifier(resolution=10.0),
        )
        assert array.read_word(0, dead, rng=None) == 0
        # The stored data is untouched despite the broken read.
        assert array.stored_bits()[:8].sum() == 8


class TestNonlinearSolverOptions:
    def test_damped_newton_converges_on_stiff_law(self):
        # Full-step Newton overshoots on a steep law from a bad seed; a
        # damped iteration still lands on the junction solution.
        circuit = NonlinearCircuit(damping=0.5, max_iterations=200)
        circuit.add_current_source("gnd", "n", 300e-6)
        circuit.add_nonlinear_resistor("n", "gnd", mtj_branch_current(2500.0, 0.2))
        result = circuit.solve_dc()
        law = mtj_branch_current(2500.0, 0.2)
        assert law(result["n"]) == pytest.approx(300e-6, rel=1e-6)

    def test_tolerance_parameter_respected(self):
        coarse = NonlinearCircuit(tolerance=1e-3)
        coarse.add_current_source("gnd", "n", 200e-6)
        coarse.add_nonlinear_resistor("n", "gnd", mtj_branch_current(2500.0, 0.7))
        fine = NonlinearCircuit(tolerance=1e-12)
        fine.add_current_source("gnd", "n", 200e-6)
        fine.add_nonlinear_resistor("n", "gnd", mtj_branch_current(2500.0, 0.7))
        # Both converge; the fine solve is at least as accurate.
        law = mtj_branch_current(2500.0, 0.7)
        coarse_err = abs(law(coarse.solve_dc()["n"]) - 200e-6)
        fine_err = abs(law(fine.solve_dc()["n"]) - 200e-6)
        assert fine_err <= coarse_err + 1e-18


class TestSchedulerDeterminism:
    def test_same_seed_same_result(self):
        from repro.array.scheduler import simulate_read_queue

        a = simulate_read_queue(15e-9, 1e8, rng=np.random.default_rng(11))
        b = simulate_read_queue(15e-9, 1e8, rng=np.random.default_rng(11))
        assert a.mean_latency == b.mean_latency
        assert a.p99_latency == b.p99_latency

    def test_offered_load_formula(self):
        from repro.array.scheduler import simulate_read_queue

        result = simulate_read_queue(
            10e-9, 1e8, banks=4, requests=256, rng=np.random.default_rng(0)
        )
        assert result.offered_load == pytest.approx(1e8 * 10e-9 / 4)


class TestOptimizerEdges:
    def test_tight_bracket_around_optimum_converges(self, linear_cell):
        from repro.core.optimize import optimize_beta_destructive

        # A bracket barely straddling the optimum still converges to it.
        optimum = optimize_beta_destructive(linear_cell)
        again = optimize_beta_destructive(
            linear_cell,
            beta_bounds=(optimum.beta - 1e-3, optimum.beta + 1e-3),
        )
        assert again.beta == pytest.approx(optimum.beta, abs=1e-6)

    def test_bracket_missing_optimum_raises(self, linear_cell):
        from repro.core.optimize import optimize_beta_destructive
        from repro.errors import ConvergenceError

        optimum = optimize_beta_destructive(linear_cell)
        with pytest.raises(ConvergenceError):
            optimize_beta_destructive(
                linear_cell,
                beta_bounds=(optimum.beta + 0.1, optimum.beta + 0.6),
            )


class TestLatencyOverdriveIndependence:
    def test_write_overdrive_changes_energy_not_latency(self, paper_cell):
        # The write pulse width is fixed by the device; a hotter driver
        # changes the energy, not the schedule.
        from repro.timing.energy import scheme_read_energy
        from repro.timing.latency import destructive_read_latency

        mild = destructive_read_latency(paper_cell, write_overdrive=1.2)
        hot = destructive_read_latency(paper_cell, write_overdrive=2.0)
        assert mild.total == pytest.approx(hot.total)
        e_mild = scheme_read_energy(paper_cell, mild)
        e_hot = scheme_read_energy(paper_cell, hot)
        assert e_hot.write_energy > e_mild.write_energy


class TestPopulationSubsetConsistency:
    def test_subset_margins_match_full(self, small_population):
        from repro.core.margins import population_nondestructive_margins

        indices = np.array([3, 17, 42])
        sub = small_population.subset(indices)
        full_sm0, full_sm1 = population_nondestructive_margins(
            small_population, 200e-6, 2.13
        )
        sub_sm0, sub_sm1 = population_nondestructive_margins(sub, 200e-6, 2.13)
        assert np.allclose(sub_sm0, full_sm0[indices])
        assert np.allclose(sub_sm1, full_sm1[indices])
