"""Tests for the read-BER budget and the stochastic LLG extension."""

import numpy as np
import pytest

from repro.analysis.ber import read_error_budget
from repro.array.montecarlo import run_margin_monte_carlo
from repro.array.testchip import TESTCHIP_VARIATION
from repro.device.llg import MacrospinLLG
from repro.device.variation import CellPopulation
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def budget():
    from repro.calibration import calibrate

    calibration = calibrate()
    rng = np.random.default_rng(23)
    population = CellPopulation.sample(
        8192,
        TESTCHIP_VARIATION,
        params=calibration.params,
        rolloff_high=calibration.rolloff_high(),
        rolloff_low=calibration.rolloff_low(),
        rng=rng,
    )
    monte_carlo = run_margin_monte_carlo(
        population,
        beta_destructive=calibration.beta_destructive,
        beta_nondestructive=calibration.beta_nondestructive,
        include_sa_offset=False,
    )
    return read_error_budget(monte_carlo)


class TestReadErrorBudget:
    def test_all_schemes_present(self, budget):
        assert set(budget) == {"conventional", "destructive", "nondestructive"}

    def test_conventional_dominated_by_margin_failures(self, budget):
        conventional = budget["conventional"]
        assert conventional.margin_failure > 0.0
        assert conventional.margin_failure > conventional.noise_flip

    def test_self_reference_sensing_ber_far_below_conventional(self, budget):
        assert budget["destructive"].sensing_ber < budget["conventional"].sensing_ber
        assert (
            budget["nondestructive"].sensing_ber
            < budget["conventional"].sensing_ber
        )

    def test_only_destructive_has_write_term(self, budget):
        assert budget["destructive"].write_error > 0.0
        assert budget["nondestructive"].write_error == 0.0
        assert budget["conventional"].write_error == 0.0

    def test_noise_negligible_for_self_reference(self, budget):
        # The variation-limited claim: noise contributes << the margin and
        # metastability terms for the destructive scheme (76 mV margins).
        destructive = budget["destructive"]
        assert destructive.noise_flip < 1e-12

    def test_totals_are_bounded(self, budget):
        for entry in budget.values():
            assert 0.0 <= entry.sensing_ber <= 1.0
            assert entry.total_per_read >= entry.sensing_ber

    def test_rejects_negative_window(self, budget):
        from repro.calibration import calibrate

        calibration = calibrate()
        rng = np.random.default_rng(5)
        population = CellPopulation.sample(
            256, TESTCHIP_VARIATION,
            params=calibration.params,
            rolloff_high=calibration.rolloff_high(),
            rolloff_low=calibration.rolloff_low(),
            rng=rng,
        )
        monte_carlo = run_margin_monte_carlo(population)
        with pytest.raises(ConfigurationError):
            read_error_budget(monte_carlo, resolution_window=-1.0)


class TestStochasticLLG:
    @pytest.fixture(scope="class")
    def llg(self):
        return MacrospinLLG()

    def test_probability_grows_with_duration(self, llg):
        rng = np.random.default_rng(1)
        short = llg.switching_probability_mc(1.3, 5e-9, rng, trials=12)
        rng = np.random.default_rng(1)
        long = llg.switching_probability_mc(1.3, 40e-9, rng, trials=12)
        assert long >= short

    def test_subcritical_never_switches(self, llg):
        rng = np.random.default_rng(2)
        assert llg.switching_probability_mc(0.7, 30e-9, rng, trials=8) == 0.0

    def test_strong_overdrive_always_switches(self, llg):
        rng = np.random.default_rng(3)
        assert llg.switching_probability_mc(2.5, 15e-9, rng, trials=8) == 1.0

    def test_thermal_spread_produces_intermediate_probabilities(self, llg):
        # Near the threshold the thermal initial-angle spread produces
        # genuinely probabilistic switching — the physical origin of WER.
        rng = np.random.default_rng(4)
        p = llg.switching_probability_mc(1.3, 9e-9, rng, trials=24)
        assert 0.05 < p < 0.95

    def test_reproducible_with_seed(self, llg):
        a = llg.switching_probability_mc(1.3, 9e-9, np.random.default_rng(7), trials=8)
        b = llg.switching_probability_mc(1.3, 9e-9, np.random.default_rng(7), trials=8)
        assert a == b

    def test_rejects_invalid(self, llg):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            llg.switching_probability_mc(1.3, 9e-9, rng, trials=0)
        with pytest.raises(ConfigurationError):
            llg.integrate_stochastic(1.3, 9e-9, rng, thermal_angle=0.0)
