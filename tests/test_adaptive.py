"""Tests for closed-loop adaptive serving: drift scenarios, windowed
signals, the admission gate, the feedback controller, the zero-drift
determinism guard, trace priorities, and the adaptive CLI surface."""

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.errors import ConfigurationError
from repro.faults import (
    DriftPoint,
    DriftScenario,
    aging_rolloff_shift,
    field_disturbance_window,
    install_drift,
    sense_amp_drift_step,
    temperature_ramp,
)
from repro.obs import DeltaTracker, RollingWindow
from repro.service import (
    AdaptiveConfig,
    AdaptiveController,
    AdmissionGate,
    ControllerConfig,
    DiscreteEventEngine,
    MemoryController,
    Request,
    SLOTarget,
    build_backend,
    build_workload,
    load_trace,
    save_trace,
    scheme_service_times,
    simulate_adaptive_service,
    simulate_service,
)

SEED = 31


def _backed_config(banks=2):
    read_time, write_time = scheme_service_times("nondestructive")
    return ControllerConfig(read_time=read_time, write_time=write_time,
                            banks=banks)


def _small_backend(seed=SEED, **kw):
    return build_backend("nondestructive", seed, bits=2304, **kw)


def _requests(n=200, rate=5e7, seed=SEED, **kw):
    stream = build_workload(rate=rate, addresses=32, **kw)
    return stream.generate(n, np.random.default_rng((seed, 3)))


class TestDriftScenarios:
    def test_point_validation(self):
        with pytest.raises(ConfigurationError):
            DriftPoint(time=-1e-9, sense_offset=0.0)
        with pytest.raises(ConfigurationError):
            DriftPoint(time=float("nan"), sense_offset=0.0)
        with pytest.raises(ConfigurationError):
            DriftPoint(time=0.0, sense_offset=float("inf"))
        with pytest.raises(ConfigurationError):
            DriftPoint(time=0.0, sense_offset=0.0, flip_fraction=1.5)

    def test_scenario_validation(self):
        point = DriftPoint(time=1e-6, sense_offset=1e-3)
        with pytest.raises(ConfigurationError):
            DriftScenario(name="", points=(point,))
        with pytest.raises(ConfigurationError):
            DriftScenario(name="empty", points=())
        with pytest.raises(ConfigurationError):
            DriftScenario(name="unordered", points=(
                point, DriftPoint(time=0.5e-6, sense_offset=0.0),
            ))

    def test_offset_at_is_a_step_function(self):
        scenario = DriftScenario(name="steps", points=(
            DriftPoint(time=1e-6, sense_offset=2e-3),
            DriftPoint(time=2e-6, sense_offset=5e-3),
            DriftPoint(time=3e-6, sense_offset=0.0),
        ))
        assert scenario.offset_at(0.0) == 0.0
        assert scenario.offset_at(1.5e-6) == 2e-3
        assert scenario.offset_at(2e-6) == 5e-3
        assert scenario.offset_at(10e-6) == 0.0
        assert scenario.max_offset == 5e-3
        assert not scenario.needs_rng

    def test_temperature_ramp_rises_and_recovers(self):
        scenario = temperature_ramp(1e-6, 2e-6, 8e-3, steps=4)
        offsets = [p.sense_offset for p in scenario.points]
        assert scenario.name == "temperature-ramp"
        assert max(offsets) == pytest.approx(8e-3)
        assert offsets[-1] == pytest.approx(0.0)
        assert scenario.offset_at(2e-6) == pytest.approx(8e-3)

    def test_rolloff_shift_is_monotonic_and_permanent(self):
        scenario = aging_rolloff_shift(1e-6, 2e-6, 6e-3, steps=5)
        offsets = [p.sense_offset for p in scenario.points]
        assert offsets == sorted(offsets)
        assert offsets[-1] == pytest.approx(6e-3)
        # Permanent: long after the ramp the offset is still in force.
        assert scenario.offset_at(1.0) == pytest.approx(6e-3)

    def test_field_window_clears_but_needs_rng_for_strikes(self):
        scenario = field_disturbance_window(1e-6, 2e-6, 5e-3,
                                            flip_fraction=0.01)
        assert scenario.needs_rng
        assert scenario.offset_at(2e-6) == pytest.approx(5e-3)
        assert scenario.offset_at(4e-6) == 0.0
        assert not field_disturbance_window(1e-6, 2e-6, 5e-3).needs_rng

    def test_builder_validation(self):
        with pytest.raises(ConfigurationError):
            temperature_ramp(0.0, -1e-6, 1e-3)
        with pytest.raises(ConfigurationError):
            temperature_ramp(0.0, 1e-6, 1e-3, steps=0)
        with pytest.raises(ConfigurationError):
            aging_rolloff_shift(0.0, 0.0, 1e-3)
        assert len(sense_amp_drift_step(1e-6, 1e-3).points) == 1


class TestInstallDrift:
    def test_strikes_require_a_dedicated_rng(self):
        backend, _ = _small_backend()
        scenario = field_disturbance_window(1e-6, 2e-6, 0.0,
                                            flip_fraction=0.01)
        with pytest.raises(ConfigurationError):
            install_drift(DiscreteEventEngine(), backend, scenario)

    def test_offset_lands_at_the_scheduled_instant(self):
        backend, _ = _small_backend()
        engine = DiscreteEventEngine()
        count = install_drift(engine, backend,
                              sense_amp_drift_step(1e-6, 3e-3))
        assert count == 1
        assert backend.drift_offset == 0.0
        engine.run()
        assert backend.drift_offset == pytest.approx(3e-3)

    def test_strikes_are_deterministic_per_rng_seed(self):
        scenario = field_disturbance_window(1e-6, 2e-6, 0.0,
                                            flip_fraction=0.02)
        states = []
        for _ in range(2):
            backend, _ = _small_backend()
            engine = DiscreteEventEngine()
            install_drift(engine, backend, scenario,
                          rng=np.random.default_rng((SEED, 5)))
            engine.run()
            states.append(backend.memory.memory.array._states.copy())
            assert backend.drift_flips > 0
        assert np.array_equal(states[0], states[1])

    def test_drift_events_are_metered(self):
        backend, _ = _small_backend()
        engine = DiscreteEventEngine()
        scenario = temperature_ramp(1e-6, 2e-6, 4e-3, steps=3)
        with obs.capture() as (registry, _):
            install_drift(engine, backend, scenario)
            engine.run()
            events = registry.counter("faults.drift.events",
                                      scenario="temperature-ramp")
            assert events == len(scenario.points)


class TestRollingWindow:
    def test_capacity_evicts_oldest(self):
        window = RollingWindow(3)
        for value in (1.0, 2.0, 3.0, 4.0):
            window.push(value)
        assert len(window) == 3
        assert window.pushed == 4
        assert list(window.values()) == [2.0, 3.0, 4.0]
        assert window.mean() == pytest.approx(3.0)
        assert window.maximum() == 4.0
        assert window.fraction_above(2.5) == pytest.approx(2 / 3)

    def test_empty_and_validation(self):
        window = RollingWindow(4)
        assert window.mean() == 0.0
        assert window.maximum() == 0.0
        assert window.percentile(99.0) == 0.0
        assert window.fraction_above(0.0) == 0.0
        with pytest.raises(ConfigurationError):
            RollingWindow(0)
        with pytest.raises(ConfigurationError):
            window.percentile(101.0)

    def test_clear_preserves_pushed(self):
        window = RollingWindow(2)
        window.push(1.0)
        window.clear()
        assert len(window) == 0 and window.pushed == 1

    def test_delta_tracker_returns_per_interval_deltas(self):
        tracker = DeltaTracker()
        assert tracker.update(reads=10, retried=2) == {
            "reads": 10.0, "retried": 2.0,
        }
        assert tracker.update(reads=25, retried=2) == {
            "reads": 15.0, "retried": 0.0,
        }
        # A key appearing later starts from 0.
        assert tracker.update(reads=25, failed=3)["failed"] == 3.0


class TestAdmissionGate:
    def test_disengaged_gate_is_invisible(self):
        gate = AdmissionGate(burst=2.0, low_priority_reserve=1.0)
        request = Request(request_id=0, time=0.0, address=0, op="read", priority=1)
        with obs.capture() as (registry, _):
            for _ in range(100):
                assert gate.admit(request, depth=10**6, now=0.0)
            assert gate.admitted == 0 and gate.shed == 0
            assert registry.counter("service.admission.admitted") == 0

    def test_low_priority_sheds_first(self):
        gate = AdmissionGate(burst=8.0, low_priority_reserve=4.0)
        gate.engage(rate=1.0, now=0.0)
        low = Request(request_id=0, time=0.0, address=0, op="read", priority=1)
        high = Request(request_id=0, time=0.0, address=0, op="read", priority=0)
        # Drain below the reserve: low is shed while high still admits.
        for _ in range(4):
            assert gate.admit(high, depth=0, now=0.0)
        assert not gate.admit(low, depth=0, now=0.0)
        assert gate.admit(high, depth=0, now=0.0)
        assert gate.shed_low_priority == 1
        assert gate.statistics()["admitted"] == 5

    def test_backpressure_sheds_regardless_of_tokens(self):
        gate = AdmissionGate(burst=8.0, backpressure_depth=4)
        gate.engage(rate=1.0, now=0.0)
        high = Request(request_id=0, time=0.0, address=0, op="read", priority=0)
        assert not gate.admit(high, depth=4, now=0.0)
        assert gate.shed_backpressure == 1

    def test_refill_is_capped_at_burst(self):
        gate = AdmissionGate(burst=2.0, low_priority_reserve=0.0)
        gate.engage(rate=1e9, now=0.0)
        high = Request(request_id=0, time=0.0, address=0, op="read", priority=0)
        assert gate.admit(high, depth=0, now=0.0)
        assert gate.admit(high, depth=0, now=0.0)
        assert not gate.admit(high, depth=0, now=0.0)
        # A long quiet interval refills to the burst cap, not beyond.
        assert gate.admit(high, depth=0, now=1.0)
        assert gate.admit(high, depth=0, now=1.0)
        assert not gate.admit(high, depth=0, now=1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionGate(burst=0.5)
        with pytest.raises(ConfigurationError):
            AdmissionGate(burst=4.0, low_priority_reserve=4.0)
        with pytest.raises(ConfigurationError):
            AdmissionGate(backpressure_depth=0)
        with pytest.raises(ConfigurationError):
            AdmissionGate().engage(rate=0.0, now=0.0)


class TestAdaptiveControllerConstruction:
    def test_requires_backend_retry_policy_and_line_rate(self):
        slo = SLOTarget(1e-6)
        engine = DiscreteEventEngine()
        bare = MemoryController(engine, _backed_config())
        with pytest.raises(ConfigurationError):
            AdaptiveController(bare, slo, line_rate=1e8)
        backend, retry = _small_backend()
        backed = MemoryController(engine, _backed_config(), backend=backend,
                                  retry_policy=retry)
        with pytest.raises(ConfigurationError):
            AdaptiveController(backed, slo, line_rate=0.0)

    def test_slo_and_config_validation(self):
        with pytest.raises(ConfigurationError):
            SLOTarget(-1e-6)
        with pytest.raises(ConfigurationError):
            SLOTarget(1e-6, guardband=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(window=0)
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(retry_rate_alarm=0.01, retry_rate_clear=0.05)
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(burst=4.0, low_priority_reserve=8.0)


class TestAdaptiveSimulation:
    def test_zero_drift_slack_slo_equals_static_run(self):
        requests = _requests(300)
        backend, retry = _small_backend()
        adaptive = simulate_adaptive_service(
            requests, _backed_config(), backend=backend, retry_policy=retry,
            slo=SLOTarget(1e-3), scheme="nondestructive", offered_rate=5e7,
        )
        backend, retry = _small_backend()
        static = simulate_service(
            requests, _backed_config(), backend=backend, retry_policy=retry,
            scheme="nondestructive", offered_rate=5e7,
        )
        assert adaptive == static
        assert adaptive.shed == 0
        assert adaptive.adaptive_actions == 0

    def test_controller_escalates_against_a_drift_step(self):
        requests = _requests(400, rate=1e8)
        span = max(r.time for r in requests)
        scenario = sense_amp_drift_step(0.25 * span, 6e-3)
        reports = {}
        for adaptive in (False, True):
            backend, retry = _small_backend()
            reports[adaptive] = simulate_adaptive_service(
                requests, _backed_config(), backend=backend,
                retry_policy=retry, adaptive=adaptive,
                slo=SLOTarget(1e-6, guardband=0.6) if adaptive else None,
                scenario=scenario, scheme="nondestructive", offered_rate=1e8,
            )
        static, closed = reports[False], reports[True]
        assert closed.adaptive_actions > 0
        assert closed.adaptive_alarms >= 1
        assert closed.failed_words < static.failed_words
        for report in (static, closed):
            assert report.requests == report.completed + report.shed

    def test_replay_is_bit_exact_with_strikes(self):
        requests = _requests(300, rate=1e8,
                             low_priority_fraction=0.25)
        span = max(r.time for r in requests)
        scenario = field_disturbance_window(0.25 * span, 0.5 * span, 5e-3,
                                            flip_fraction=0.01)

        def run():
            backend, retry = _small_backend()
            return simulate_adaptive_service(
                requests, _backed_config(), backend=backend,
                retry_policy=retry, slo=SLOTarget(1e-6, guardband=0.6),
                scenario=scenario,
                drift_rng=np.random.default_rng((SEED, 5)),
                scheme="nondestructive", offered_rate=1e8,
            )

        assert run() == run()

    def test_validation(self):
        backend, retry = _small_backend()
        with pytest.raises(ConfigurationError):
            simulate_adaptive_service([], _backed_config(), backend=backend)
        with pytest.raises(ConfigurationError):
            simulate_adaptive_service(
                _requests(10), _backed_config(), backend=None,
            )
        with pytest.raises(ConfigurationError):
            simulate_adaptive_service(
                _requests(10), _backed_config(), backend=backend,
                retry_policy=retry, slo=None,
            )


class TestTracePriority:
    def test_priority_round_trips_through_the_trace(self, tmp_path):
        requests = _requests(200, low_priority_fraction=0.4)
        assert any(r.priority > 0 for r in requests)
        path = tmp_path / "trace.jsonl"
        save_trace(path, requests)
        loaded = load_trace(path)
        assert list(loaded) == list(requests)

    def test_priority_zero_traces_omit_the_key(self, tmp_path):
        requests = _requests(50)
        path = tmp_path / "trace.jsonl"
        save_trace(path, requests)
        assert '"pri"' not in path.read_text()
        assert all(r.priority == 0 for r in load_trace(path))

    def test_request_priority_validation(self):
        with pytest.raises(ConfigurationError):
            Request(request_id=0, time=0.0, address=0, op="read", priority=-1)
        with pytest.raises(ConfigurationError):
            build_workload(rate=1e7, addresses=8, low_priority_fraction=1.5)


class TestAdaptiveCLI:
    _BASE = ["serve", "--requests", "150", "--rate", "1e8",
             "--addresses", "64", "--seed", "7"]

    def test_invalid_slo_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            main(self._BASE + ["--adaptive", "--slo-p99-ns", "-5"])
        assert excinfo.value.code == 2

    def test_negative_window_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            main(self._BASE + ["--adaptive", "--window", "-3"])
        assert excinfo.value.code == 2

    def test_contradictory_shed_thresholds_exit_two(self):
        with pytest.raises(SystemExit) as excinfo:
            main(self._BASE + ["--adaptive", "--burst", "4",
                               "--low-priority-reserve", "8"])
        assert excinfo.value.code == 2

    def test_adaptive_drift_serve_runs(self, capsys):
        assert main(self._BASE + [
            "--adaptive", "--drift", "sense-step",
            "--drift-offset-mv", "5", "--low-priority-fraction", "0.25",
        ]) == 0
        out = capsys.readouterr().out
        assert "drift scenario" in out
        assert "adaptation" in out
