"""System-level integration: the library layers composed end to end."""

import numpy as np
import pytest

from repro.array.array import STTRAMArray
from repro.array.repair import allocate_repair
from repro.calibration import calibrate
from repro.core.destructive import DestructiveSelfReference
from repro.core.nondestructive import NondestructiveSelfReference
from repro.device.variation import CellPopulation, VariationModel
from repro.ecc.array import EccArray
from repro.ecc.hamming import DecodeStatus


@pytest.fixture(scope="module")
def calibration():
    return calibrate()


def make_population(rng, calibration, size, variation=None):
    if variation is None:
        variation = VariationModel(sigma_alpha_frac=0.001, sigma_beta_frac=0.001)
    return CellPopulation.sample(
        size,
        variation,
        params=calibration.params,
        rolloff_high=calibration.rolloff_high(),
        rolloff_low=calibration.rolloff_low(),
        rng=rng,
    )


class TestEccProtectedMemory:
    def test_message_survives_full_pipeline(self, rng, calibration):
        """Write → fault injection → nondestructive reads → SECDED →
        scrub → verify: a complete memory-controller round trip."""
        memory = EccArray(
            STTRAMArray(make_population(rng, calibration, 16 * 72)), data_bits=64
        )
        scheme = NondestructiveSelfReference(beta=calibration.beta_nondestructive)

        payload = [int(rng.integers(0, 2**63)) for _ in range(memory.size_words)]
        for address, word in enumerate(payload):
            memory.write_word(address, word)

        # Inject one stuck bit in every other word.
        for address in range(0, memory.size_words, 2):
            memory.array._states[address * 72 + (address % 72)] ^= 1

        recovered = [
            memory.read_word(address, scheme, rng) for address in range(memory.size_words)
        ]
        assert all(result.reliable for result in recovered)
        assert [result.value for result in recovered] == payload
        corrected = sum(
            result.status is DecodeStatus.CORRECTED for result in recovered
        )
        assert corrected == memory.size_words // 2

        # Scrub heals the stored image.
        memory.scrub(scheme, rng)
        post = [
            memory.read_word(address, scheme, rng) for address in range(memory.size_words)
        ]
        assert all(result.status is DecodeStatus.CLEAN for result in post)

    def test_destructive_scheme_through_ecc_layer(self, rng, calibration):
        """The ECC layer is scheme-agnostic: destructive reads restore the
        codewords they consume."""
        memory = EccArray(
            STTRAMArray(make_population(rng, calibration, 4 * 72)), data_bits=64
        )
        scheme = DestructiveSelfReference(beta=calibration.beta_destructive)
        memory.write_word(0, 0xFEEDFACE)
        first = memory.read_word(0, scheme, rng)
        second = memory.read_word(0, scheme, rng)
        assert first.value == second.value == 0xFEEDFACE
        assert first.status is DecodeStatus.CLEAN


class TestRepairPlusEcc:
    def test_heavily_varied_chip_shippable_with_repair_and_ecc(self, rng, calibration):
        """At 2x test-chip variation the nondestructive scheme has failing
        bits; spares + SECDED together make the array shippable."""
        from repro.array.montecarlo import run_margin_monte_carlo
        from repro.array.testchip import TESTCHIP_VARIATION

        rows = columns = 64
        population = make_population(
            rng, calibration, rows * columns, TESTCHIP_VARIATION.scaled(2.0)
        )
        margins = run_margin_monte_carlo(
            population,
            beta_destructive=calibration.beta_destructive,
            beta_nondestructive=calibration.beta_nondestructive,
            include_sa_offset=False,
        )
        mask = margins["nondestructive"].fail_mask(8e-3)
        assert mask.any(), "expected failing bits at 2x variation"

        plan = allocate_repair(mask, rows, columns, spare_rows=8, spare_columns=8)
        # Spares mop up the (sparse) hard fails entirely or nearly so;
        # anything left is within SECDED's single-error budget per word.
        assert plan.unrepaired_fails <= mask.sum()
        if not plan.repaired:
            per_word = mask.reshape(-1, 8).sum(axis=1)  # pessimistic grouping
            assert per_word.max() <= 2

    def test_trim_then_repair_reduces_spare_demand(self, rng, calibration):
        """Trimming β before repair shrinks the fail map the spares must
        cover — the test-flow ordering used in production."""
        from repro.array.montecarlo import run_margin_monte_carlo
        from repro.array.testchip import TESTCHIP_VARIATION
        from repro.core.trim import trim_population_beta

        rows = columns = 32
        population = make_population(
            rng, calibration, rows * columns, TESTCHIP_VARIATION.scaled(2.5)
        )
        nominal = run_margin_monte_carlo(
            population,
            beta_nondestructive=calibration.beta_nondestructive,
            include_sa_offset=False,
        )["nondestructive"]
        trim = trim_population_beta(population)
        from repro.core.margins import population_nondestructive_margins

        sm0, sm1 = population_nondestructive_margins(population, 200e-6, trim.beta)
        trimmed_fails = int((np.minimum(sm0, sm1) <= 8e-3).sum())
        nominal_fails = int(nominal.fail_mask(8e-3).sum())
        assert trimmed_fails <= nominal_fails


class TestSchemeAgreement:
    def test_all_schemes_agree_on_healthy_bits(self, rng, calibration):
        """Bits that every scheme's margins clear must read identically
        through all three behavioural read paths."""
        from repro.core.conventional import ConventionalSensing

        population = make_population(rng, calibration, 64)
        array = STTRAMArray(population)
        survey = array.margin_survey(
            beta_destructive=calibration.beta_destructive,
            beta_nondestructive=calibration.beta_nondestructive,
        )
        healthy = ~(
            survey["conventional"].fail_mask(8e-3)
            | survey["destructive"].fail_mask(8e-3)
            | survey["nondestructive"].fail_mask(8e-3)
        )
        healthy_indices = np.nonzero(healthy)[0][:16]
        assert healthy_indices.size > 0

        nominal_cell = calibration.cell(917.0)
        schemes = [
            ConventionalSensing(nominal_cell=nominal_cell),
            DestructiveSelfReference(beta=calibration.beta_destructive),
            NondestructiveSelfReference(beta=calibration.beta_nondestructive),
        ]
        pattern = rng.integers(0, 2, healthy_indices.size)
        for index, bit in zip(healthy_indices, pattern):
            for scheme in schemes:
                array._states[index] = bit
                result = array.read_bit(int(index), scheme, rng)
                assert result.bit == bit, (scheme.name, int(index))
