"""Temperature-corner sweep and array-organization tests."""

import pytest

from repro.analysis.corners import temperature_corner_sweep
from repro.array.organization import (
    ArrayOrganization,
    bank_throughput,
    throughput_comparison,
)
from repro.errors import ConfigurationError
from repro.timing.latency import nondestructive_read_latency


class TestTemperatureCorners:
    @pytest.fixture(scope="class")
    def corners(self):
        from repro.calibration import calibrate

        calibration = calibrate()
        return temperature_corner_sweep(
            calibration.params,
            calibration.rolloff_high(),
            calibration.rolloff_low(),
            temperatures=(250.0, 300.0, 360.0, 390.0),
        )

    def test_room_temperature_matches_calibration(self, corners, calibration):
        room = next(c for c in corners if c.temperature == 300.0)
        assert room.nondestructive.max_sense_margin == pytest.approx(
            calibration.margin_nondestructive, rel=1e-6
        )

    def test_margins_shrink_with_temperature(self, corners):
        margins = [c.nondestructive.max_sense_margin for c in corners]
        assert all(b < a for a, b in zip(margins, margins[1:]))

    def test_tmr_shrinks_with_temperature(self, corners):
        tmrs = [c.tmr for c in corners]
        assert all(b < a for a, b in zip(tmrs, tmrs[1:]))

    def test_rtr_window_shrinks_with_temperature(self, corners):
        windows = [c.rtr_window_nondestructive for c in corners]
        assert all(b < a for a, b in zip(windows, windows[1:]))

    def test_margin_holds_across_industrial_range(self, corners):
        assert all(c.nondestructive_margin_ok for c in corners)

    def test_rejects_empty_sweep(self, calibration):
        with pytest.raises(ConfigurationError):
            temperature_corner_sweep(
                calibration.params,
                calibration.rolloff_high(),
                calibration.rolloff_low(),
                temperatures=(),
            )


class TestArrayOrganization:
    def test_geometry(self):
        org = ArrayOrganization(banks=4, rows=128, columns=128)
        assert org.bits == 4 * 128 * 128
        assert org.row_address_bits == 7
        assert org.bank_address_bits == 2

    def test_decode_roundtrip(self):
        org = ArrayOrganization(banks=4, rows=16, columns=8)
        seen = set()
        for address in range(org.banks * org.rows):
            bank, row = org.decode(address)
            assert 0 <= bank < org.banks
            assert 0 <= row < org.rows
            seen.add((bank, row))
        assert len(seen) == org.banks * org.rows

    def test_decode_bounds(self):
        org = ArrayOrganization(banks=2, rows=4)
        with pytest.raises(IndexError):
            org.decode(8)

    def test_rejects_degenerate(self):
        with pytest.raises(ConfigurationError):
            ArrayOrganization(banks=0)


class TestThroughput:
    def test_nondestructive_higher_bandwidth(self, paper_cell, calibration):
        destructive, nondestructive = throughput_comparison(
            paper_cell,
            beta_destructive=calibration.beta_destructive,
            beta_nondestructive=calibration.beta_nondestructive,
        )
        assert nondestructive.read_bandwidth > 1.5 * destructive.read_bandwidth
        assert nondestructive.read_power < destructive.read_power

    def test_bandwidth_scales_with_banks(self, paper_cell, calibration):
        breakdown = nondestructive_read_latency(
            paper_cell, beta=calibration.beta_nondestructive
        )
        one = bank_throughput(paper_cell, ArrayOrganization(banks=1), breakdown)
        four = bank_throughput(paper_cell, ArrayOrganization(banks=4), breakdown)
        assert four.read_bandwidth == pytest.approx(4 * one.read_bandwidth)

    def test_energy_per_bit_independent_of_organization(self, paper_cell, calibration):
        breakdown = nondestructive_read_latency(
            paper_cell, beta=calibration.beta_nondestructive
        )
        a = bank_throughput(paper_cell, ArrayOrganization(banks=1), breakdown)
        b = bank_throughput(paper_cell, ArrayOrganization(banks=8, columns=64), breakdown)
        assert a.energy_per_bit == pytest.approx(b.energy_per_bit)

    def test_power_consistent_with_bandwidth(self, paper_cell, calibration):
        destructive, nondestructive = throughput_comparison(
            paper_cell,
            beta_destructive=calibration.beta_destructive,
            beta_nondestructive=calibration.beta_nondestructive,
        )
        for result in (destructive, nondestructive):
            assert result.read_power == pytest.approx(
                result.read_bandwidth * result.energy_per_bit
            )
