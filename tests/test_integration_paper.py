"""End-to-end integration tests asserting the paper's headline claims hold
across the full stack (device → calibration → schemes → array → timing)."""

import numpy as np
import pytest

from repro import (
    ConventionalSensing,
    DestructiveSelfReference,
    NondestructiveSelfReference,
    calibrate,
    calibrated_cell,
)
from repro.array.testchip import run_testchip_experiment
from repro.array.testchip import TestChip as ChipConfig
from repro.calibration.targets import PAPER_TARGETS
from repro.core.optimize import optimize_beta_destructive, optimize_beta_nondestructive
from repro.timing.latency import latency_comparison
from repro.timing.energy import read_energy_comparison
from repro.timing.reliability import (
    PowerFailureModel,
    data_loss_probability_per_read,
)
from repro.timing.latency import destructive_read_latency, nondestructive_read_latency
from repro.timing.waveforms import simulate_nondestructive_read


class TestHeadlineClaims:
    """One test per claim in the paper's abstract/conclusion."""

    def test_claim_nondestructive_never_writes(self, rng):
        """'The stored value ... does NOT need to be overwritten.'"""
        cell = calibrated_cell()
        scheme = NondestructiveSelfReference(beta=calibrate().beta_nondestructive)
        for bit in (0, 1):
            cell.write(bit)
            result = scheme.read(cell, rng)
            assert result.write_pulses == 0
            assert cell.stored_bit == bit

    def test_claim_overcomes_bit_to_bit_variation(self):
        """'...to overcome the large bit-to-bit variation of MTJ
        resistance' — the 16kb chip reads all bits under self-reference
        while conventional sensing loses ~1%."""
        result = run_testchip_experiment()
        assert result.self_reference_all_pass
        assert result.conventional_fail_fraction > 0.003

    def test_claim_read_latency_reduced(self):
        """'...the read latency is significantly reduced.'"""
        cal = calibrate()
        cell = calibrated_cell()
        _, nondes, speedup = latency_comparison(
            cell,
            beta_destructive=cal.beta_destructive,
            beta_nondestructive=cal.beta_nondestructive,
        )
        assert speedup > 1.5
        assert nondes.total < PAPER_TARGETS.read_latency_nondestructive * 1.4

    def test_claim_power_reduced(self):
        """'The total read latency and power consumption are dramatically
        reduced' — energy ratio far above 1."""
        cal = calibrate()
        _, _, ratio = read_energy_comparison(
            calibrated_cell(),
            beta_destructive=cal.beta_destructive,
            beta_nondestructive=cal.beta_nondestructive,
        )
        assert ratio > 5.0

    def test_claim_nonvolatility_maintained(self):
        """'The non-volatility of STT-RAM is maintained' — zero power-failure
        exposure vs a >10 ns window for the destructive scheme."""
        cell = calibrated_cell()
        model = PowerFailureModel(failure_rate=1e-3)
        destructive = destructive_read_latency(cell)
        nondestructive = nondestructive_read_latency(cell)
        assert data_loss_probability_per_read(nondestructive, model) == 0.0
        assert data_loss_probability_per_read(destructive, model) > 0.0

    def test_claim_restrict_device_control_needed(self):
        """'our scheme requires restrict control on the device variation and
        mismatch, with relatively small sense margin' — the nondestructive
        margin and windows are several times tighter."""
        cal = calibrate()
        assert cal.margin_nondestructive < cal.margin_destructive / 4
        from repro.core.robustness import robustness_summary

        destructive, nondestructive = robustness_summary(calibrated_cell())
        assert (
            nondestructive.rtr_window[1] < destructive.rtr_window[1] / 3
        )


class TestCrossLayerConsistency:
    def test_behavioural_reads_match_analytic_margins(self, rng):
        """The scheme.read() voltage differential equals the margin module's
        analytic value for every scheme."""
        cal = calibrate()
        cell = calibrated_cell()
        cell.write(1)

        nondes = NondestructiveSelfReference(beta=cal.beta_nondestructive)
        assert nondes.read(cell, rng).margin == pytest.approx(
            nondes.sense_margins(cell).sm1, rel=0.02
        )

        dest = DestructiveSelfReference(beta=cal.beta_destructive)
        cell.write(1)
        assert dest.read(cell, rng).margin == pytest.approx(
            dest.sense_margins(cell).sm1, rel=0.02
        )

    def test_transient_simulation_matches_behavioural_read(self, rng):
        """The MNA transient and the behavioural read agree on the sense
        differential."""
        cal = calibrate()
        cell = calibrated_cell()
        cell.write(1)
        scheme = NondestructiveSelfReference(beta=cal.beta_nondestructive)
        behavioural = scheme.read(cell, rng)
        transient = simulate_nondestructive_read(cell, beta=cal.beta_nondestructive)
        assert transient.sense_differential == pytest.approx(
            behavioural.margin, rel=0.03
        )

    def test_optimizers_agree_with_calibration(self):
        cal = calibrate()
        cell = calibrated_cell()
        assert optimize_beta_destructive(cell).beta == pytest.approx(
            cal.beta_destructive, rel=1e-6
        )
        assert optimize_beta_nondestructive(cell).beta == pytest.approx(
            cal.beta_nondestructive, rel=1e-6
        )

    def test_monte_carlo_consistent_with_single_cell_reads(self, rng):
        """Bits the Monte-Carlo engine marks as conventional failures really
        do misread when materialized and read behaviourally."""
        result = run_testchip_experiment(ChipConfig(rows=32, columns=32))
        conv = result.margins["conventional"]
        fail_indices = np.nonzero(conv.fail_mask(8e-3))[0]
        if fail_indices.size == 0:
            pytest.skip("no conventional failures in this small sample")
        # Find a failing bit whose SM0 is deeply negative (reads 0 as 1).
        deep = [i for i in fail_indices if conv.sm0[i] < -5e-3]
        if not deep:
            pytest.skip("no deeply failing bit sampled")
        index = int(deep[0])
        from repro.core.cell import Cell1T1J
        from repro.core.conventional import shared_reference_voltage
        from repro.device.mtj import MTJState
        from repro.device.transistor import FixedResistanceTransistor

        population = result.population
        cell = Cell1T1J(
            population.device(index),
            FixedResistanceTransistor(float(population.r_tr[index])),
        )
        cell.write(0)
        # The reference this bit actually sees: the nominal midpoint plus
        # its local reference error (as in the Monte-Carlo margins).
        v_ref = shared_reference_voltage(calibrated_cell(), 200e-6) + float(
            population.vref_error[index]
        )
        scheme = ConventionalSensing(i_read=200e-6, v_ref=v_ref)
        result_read = scheme.read(cell, rng)
        assert not result_read.correct


class TestPaperTableReproduction:
    def test_table1_anchor_rows_exact(self):
        from repro.analysis.tables import table1_rows

        rows = {row[0]: (row[1], row[2]) for row in table1_rows()}
        for anchored in ("R_H (I→0)", "R_L (I→0)", "ΔR_Hmax", "R_TR", "I_max (I_R2)"):
            reproduced, paper = rows[anchored]
            assert reproduced == paper

    def test_table2_windows_close_to_paper(self, paper_cell, calibration):
        from repro.core.robustness import robustness_summary

        destructive, nondestructive = robustness_summary(
            paper_cell,
            beta_destructive=calibration.beta_destructive,
            beta_nondestructive=calibration.beta_nondestructive,
        )
        assert destructive.rtr_window[1] == pytest.approx(468.0, rel=0.05)
        assert nondestructive.rtr_window[1] == pytest.approx(130.0, rel=0.05)
        assert nondestructive.alpha_window[1] == pytest.approx(0.0413, abs=0.01)
        assert nondestructive.alpha_window[0] == pytest.approx(-0.0571, abs=0.01)
