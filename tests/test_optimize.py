"""Read-current-ratio optimizer tests (paper Eqs. 5/10)."""

import numpy as np
import pytest

from repro.core.cell import Cell1T1J
from repro.core.margins import destructive_margins, nondestructive_margins
from repro.core.optimize import (
    closed_form_beta_destructive,
    closed_form_beta_nondestructive,
    optimize_beta_destructive,
    optimize_beta_nondestructive,
)
from repro.device.mtj import MTJDevice, MTJParams
from repro.device.rolloff import PowerLawRollOff
from repro.device.transistor import FixedResistanceTransistor
from repro.errors import ConfigurationError, ConvergenceError

I2 = 200e-6


class TestNumericDestructive:
    def test_balanced_at_optimum(self, linear_cell):
        opt = optimize_beta_destructive(linear_cell, I2)
        assert opt.margins.is_balanced

    def test_optimum_maximizes_min_margin(self, linear_cell):
        opt = optimize_beta_destructive(linear_cell, I2)
        for delta in (-0.05, 0.05):
            perturbed = destructive_margins(linear_cell, I2, opt.beta + delta)
            assert perturbed.min_margin < opt.max_sense_margin

    def test_currents_consistent(self, linear_cell):
        opt = optimize_beta_destructive(linear_cell, I2)
        assert opt.i_read2 == I2
        assert opt.i_read1 == pytest.approx(I2 / opt.beta)

    def test_paper_cell_near_paper_beta(self, paper_cell):
        opt = optimize_beta_destructive(paper_cell, I2)
        assert opt.beta == pytest.approx(1.22, abs=0.03)
        assert opt.max_sense_margin == pytest.approx(76.6e-3, rel=0.01)


class TestNumericNondestructive:
    def test_balanced_at_optimum(self, linear_cell):
        opt = optimize_beta_nondestructive(linear_cell, I2, alpha=0.5)
        assert opt.margins.is_balanced

    def test_paper_cell_near_paper_beta(self, paper_cell):
        opt = optimize_beta_nondestructive(paper_cell, I2, alpha=0.5)
        assert opt.beta == pytest.approx(2.13, abs=0.02)
        assert opt.max_sense_margin == pytest.approx(12.1e-3, rel=0.01)

    def test_optimum_beyond_one_over_alpha(self, paper_cell):
        # SM0 > 0 requires αβ ≳ 1, so the optimum must sit above 1/α.
        opt = optimize_beta_nondestructive(paper_cell, I2, alpha=0.5)
        assert opt.beta > 2.0

    def test_different_alpha_shifts_optimum(self, paper_cell):
        low = optimize_beta_nondestructive(paper_cell, I2, alpha=0.45)
        high = optimize_beta_nondestructive(paper_cell, I2, alpha=0.55)
        assert low.beta > high.beta  # smaller α needs a larger β


class TestClosedForms:
    """With exactly linear roll-off the paper's quadratics are exact."""

    def test_destructive_matches_numeric(self, linear_cell):
        closed = closed_form_beta_destructive(linear_cell, I2)
        numeric = optimize_beta_destructive(linear_cell, I2).beta
        assert closed == pytest.approx(numeric, rel=1e-9)

    def test_nondestructive_matches_numeric(self, linear_cell):
        closed = closed_form_beta_nondestructive(linear_cell, I2, alpha=0.5)
        numeric = optimize_beta_nondestructive(linear_cell, I2, alpha=0.5).beta
        assert closed == pytest.approx(numeric, rel=1e-9)

    def test_known_hand_computed_value(self):
        # DESIGN.md §2 hand calculation: ΔR_Lmax = 10 Ω, linear roll-off,
        # Eq. (10) gives β = 2.131.
        params = MTJParams(dr_low_max=10.0)
        cell = Cell1T1J(
            MTJDevice(params, PowerLawRollOff(1.0), PowerLawRollOff(1.0)),
            FixedResistanceTransistor(917.0),
        )
        assert closed_form_beta_nondestructive(cell, I2, 0.5) == pytest.approx(
            2.131, abs=0.002
        )

    def test_closed_form_approximates_calibrated_device(self, paper_cell):
        # On the calibrated (non-linear) device the closed form is only an
        # approximation, but must stay in the right neighbourhood.
        closed = closed_form_beta_destructive(paper_cell, I2)
        numeric = optimize_beta_destructive(paper_cell, I2).beta
        assert closed == pytest.approx(numeric, rel=0.05)

    def test_rejects_bad_alpha(self, linear_cell):
        with pytest.raises(ConfigurationError):
            closed_form_beta_nondestructive(linear_cell, I2, alpha=1.2)


class TestConvergenceFailures:
    def test_no_crossing_raises(self, linear_cell):
        with pytest.raises(ConvergenceError):
            # Restrict the bracket so the margins never cross inside it.
            optimize_beta_destructive(linear_cell, I2, beta_bounds=(1.0 + 1e-6, 1.05))
