"""Read-retry controller: policy semantics and batch/scalar equivalence.

The contract under test (see ``repro/core/retry.py``): the vectorized
:func:`read_many_with_retry` must be bit-for-bit equivalent — same bits,
accounting arrays, final states, and RNG stream position — to
:func:`retry_batch_from_scalar_reads`, the round-major loop of scalar
``scheme.read`` calls that defines the controller's draw order.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.sense_amp import SenseAmplifier
from repro.core import (
    ConventionalSensing,
    DestructiveSelfReference,
    NondestructiveSelfReference,
)
from repro.core.batch import materialize_cell
from repro.core.retry import (
    RetryPolicy,
    read_many_with_retry,
    read_with_retry,
    retry_batch_from_scalar_reads,
)
from repro.device.variation import CellPopulation, VariationModel
from repro.errors import ConfigurationError
from repro.timing.energy import retry_read_energy, scheme_read_energy
from repro.timing.latency import nondestructive_read_latency, retry_read_latency

#: Wide-variation population: enough tail bits that metastable comparisons
#: (and hence retries) actually occur with a loose sense amp.
POPULATION = CellPopulation.sample(
    96, VariationModel().scaled(2.0), rng=np.random.default_rng(7)
)

WIDE_WINDOW = 0.05


def make_scheme(kind: str, resolution: float = WIDE_WINDOW):
    amp = SenseAmplifier(resolution=resolution)
    if kind == "conventional":
        return ConventionalSensing(v_ref=0.4, sense_amp=amp)
    if kind == "destructive":
        return DestructiveSelfReference(sense_amp=amp)
    if kind == "nondestructive":
        return NondestructiveSelfReference(sense_amp=amp)
    raise ValueError(kind)


ALL_KINDS = ["conventional", "destructive", "nondestructive"]


def pattern(seed: int = 3, size: int = POPULATION.size) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 2, size).astype(np.uint8)


def assert_retry_batches_equal(ref, vec) -> None:
    np.testing.assert_array_equal(ref.bits, vec.bits)
    np.testing.assert_array_equal(ref.expected_bits, vec.expected_bits)
    np.testing.assert_array_equal(ref.margins, vec.margins)
    np.testing.assert_array_equal(ref.metastable, vec.metastable)
    np.testing.assert_array_equal(ref.data_destroyed, vec.data_destroyed)
    np.testing.assert_array_equal(ref.attempts, vec.attempts)
    np.testing.assert_array_equal(ref.read_pulses, vec.read_pulses)
    np.testing.assert_array_equal(ref.write_pulses, vec.write_pulses)
    np.testing.assert_array_equal(ref.backoff_ns, vec.backoff_ns)
    np.testing.assert_array_equal(
        ref.first_attempt_metastable, vec.first_attempt_metastable
    )
    assert set(ref.voltages) == set(vec.voltages)
    for name in ref.voltages:
        np.testing.assert_array_equal(ref.voltages[name], vec.voltages[name])


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_ns=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(current_escalation=-0.1)

    def test_escalation_and_backoff_schedules(self):
        policy = RetryPolicy(
            max_attempts=4, backoff_ns=5.0, backoff_factor=2.0, current_escalation=0.2
        )
        assert policy.escalation_factor(1) == 1.0
        assert policy.escalation_factor(3) == pytest.approx(1.4)
        assert policy.backoff_before(1) == 0.0
        assert policy.backoff_before(2) == 5.0
        assert policy.backoff_before(4) == 20.0
        assert policy.total_backoff(1) == 0.0
        assert policy.total_backoff(4) == pytest.approx(35.0)


class TestScalarRetry:
    """Satellite: retried reads accumulate pulses and surface attempts."""

    def test_clean_read_is_one_attempt(self, paper_cell):
        paper_cell.write(1)
        scheme = NondestructiveSelfReference(beta=2.13)
        result = read_with_retry(
            scheme, paper_cell, RetryPolicy(max_attempts=3), np.random.default_rng(0)
        )
        assert result.attempts == 1
        assert result.read_pulses == 2  # one nondestructive read: two pulses
        assert result.bit == 1

    def test_metastable_read_accumulates_pulses(self, paper_cell):
        paper_cell.write(1)
        # A hopeless amp: every comparison metastable, so the controller
        # burns its whole attempt budget and charges every pulse.
        scheme = NondestructiveSelfReference(
            beta=2.13, sense_amp=SenseAmplifier(resolution=10.0)
        )
        policy = RetryPolicy(max_attempts=4, backoff_ns=5.0)
        result = read_with_retry(scheme, paper_cell, policy, np.random.default_rng(0))
        assert result.attempts == 4
        assert result.read_pulses == 8
        assert result.metastable

    def test_destructive_retry_charges_write_pulses(self, paper_cell):
        paper_cell.write(1)
        scheme = DestructiveSelfReference(
            beta=1.22, sense_amp=SenseAmplifier(resolution=10.0)
        )
        result = read_with_retry(
            scheme, paper_cell, RetryPolicy(max_attempts=3), np.random.default_rng(0)
        )
        assert result.attempts == 3
        assert result.read_pulses == 6
        assert result.write_pulses == 6  # erase + write-back per attempt
        assert result.expected_bit == 1  # ground truth before attempt 1

    def test_matches_single_cell_batch(self):
        index = 11
        sub = POPULATION.subset(np.array([index]))
        policy = RetryPolicy(max_attempts=3, current_escalation=0.1)
        scheme = make_scheme("nondestructive")

        cell = materialize_cell(POPULATION, index, 1)
        scalar = read_with_retry(scheme, cell, policy, np.random.default_rng(5))
        batch = read_many_with_retry(
            scheme, sub, np.array([1], dtype=np.uint8), policy,
            np.random.default_rng(5),
        )
        bridged = batch.result(0)
        assert bridged.bit == scalar.bit
        assert bridged.margin == scalar.margin
        assert bridged.attempts == scalar.attempts
        assert bridged.read_pulses == scalar.read_pulses
        assert bridged.metastable == scalar.metastable


class TestBatchRetryEquivalence:
    """Vectorized retry vs the scalar-loop reference implementation."""

    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_scalar_loop_with_rng(self, kind, seed):
        scheme = make_scheme(kind)
        policy = RetryPolicy(max_attempts=3, current_escalation=0.1)
        states_ref = pattern()
        states_vec = pattern()
        ref = retry_batch_from_scalar_reads(
            scheme, POPULATION, states_ref, policy, np.random.default_rng(seed)
        )
        rng_vec = np.random.default_rng(seed)
        vec = read_many_with_retry(scheme, POPULATION, states_vec, policy, rng_vec)
        assert_retry_batches_equal(ref, vec)
        np.testing.assert_array_equal(states_ref, states_vec)
        # Stream position: the next draw after the retried batch agrees too.
        rng_ref = np.random.default_rng(seed)
        retry_batch_from_scalar_reads(
            scheme, POPULATION, pattern(), policy, rng_ref
        )
        assert rng_ref.random() == rng_vec.random()

    @settings(max_examples=15, deadline=None)
    @given(
        kind=st.sampled_from(ALL_KINDS),
        seed=st.integers(min_value=0, max_value=2**31),
        pattern_seed=st.integers(min_value=0, max_value=2**31),
        size=st.integers(min_value=1, max_value=32),
        max_attempts=st.integers(min_value=1, max_value=4),
        escalation=st.sampled_from([0.0, 0.1, 0.25]),
        majority=st.booleans(),
    )
    def test_equivalence_property(
        self, kind, seed, pattern_seed, size, max_attempts, escalation, majority
    ):
        """Any scheme, seed, pattern, subset size, and retry policy."""
        scheme = make_scheme(kind)
        policy = RetryPolicy(
            max_attempts=max_attempts,
            current_escalation=escalation,
            majority_vote=majority,
        )
        sub = POPULATION.subset(np.arange(size))
        states0 = pattern(pattern_seed, size)
        s_ref, s_vec = states0.copy(), states0.copy()
        ref = retry_batch_from_scalar_reads(
            scheme, sub, s_ref, policy, np.random.default_rng(seed)
        )
        vec = read_many_with_retry(
            scheme, sub, s_vec, policy, np.random.default_rng(seed)
        )
        assert_retry_batches_equal(ref, vec)
        np.testing.assert_array_equal(s_ref, s_vec)

    def test_per_bit_vref_error_kwargs(self):
        scheme = make_scheme("conventional")
        policy = RetryPolicy(max_attempts=3)
        errors = POPULATION.vref_error
        s_ref, s_vec = pattern(), pattern()
        ref = retry_batch_from_scalar_reads(
            scheme, POPULATION, s_ref, policy, np.random.default_rng(4),
            v_ref_error=errors,
        )
        vec = read_many_with_retry(
            scheme, POPULATION, s_vec, policy, np.random.default_rng(4),
            v_ref_error=errors,
        )
        assert_retry_batches_equal(ref, vec)

    def test_power_failure_aborts_stay_unresolved(self):
        # A power failure on every attempt: no decision ever forms, the
        # budget is spent, and the bits surface as exhausted.
        scheme = make_scheme("destructive")
        policy = RetryPolicy(max_attempts=2)
        states = pattern()
        batch = read_many_with_retry(
            scheme, POPULATION, states, policy, np.random.default_rng(0),
            power_failure_at="after_erase",
        )
        assert batch.unresolved_mask.all()
        assert batch.exhausted_mask.all()
        assert (batch.attempts == 2).all()
        assert batch.data_destroyed.any()

    def test_accounting_views(self):
        scheme = make_scheme("nondestructive")
        policy = RetryPolicy(max_attempts=3, backoff_ns=5.0)
        batch = read_many_with_retry(
            scheme, POPULATION, pattern(), policy, np.random.default_rng(1)
        )
        assert batch.size == POPULATION.size
        assert batch.retried_count == int(np.count_nonzero(batch.attempts > 1))
        assert batch.retried_count > 0  # wide window: some bits retried
        # Retries that resolved deterministically count as recovered.
        np.testing.assert_array_equal(
            batch.recovered_mask,
            batch.retried_mask & (batch.bits >= 0) & ~batch.metastable,
        )
        assert batch.total_read_pulses == int(batch.read_pulses.sum())
        assert batch.total_read_pulses > 2 * POPULATION.size  # extra attempts
        # Backoff: a bit retried k times waited the policy's first k-1 steps.
        worst = int(batch.attempts.max())
        assert batch.max_backoff_ns == pytest.approx(policy.total_backoff(worst))
        assert batch.bit_values().dtype == np.uint8

    def test_first_attempt_metastable_is_sticky(self):
        scheme = make_scheme("nondestructive")
        policy = RetryPolicy(max_attempts=3)
        batch = read_many_with_retry(
            scheme, POPULATION, pattern(), policy, np.random.default_rng(1)
        )
        # Every retried bit was metastable (or undecided) on attempt 1.
        assert batch.first_attempt_metastable[batch.retried_mask].all()


class TestRetryTiming:
    """Latency/energy accounting of retried reads."""

    def make_base(self, paper_cell):
        return nondestructive_read_latency(paper_cell, beta=2.13)

    def test_latency_accumulates_schedule_and_backoff(self, paper_cell):
        base = self.make_base(paper_cell)
        policy = RetryPolicy(max_attempts=4, backoff_ns=5.0, backoff_factor=2.0)
        retried = retry_read_latency(base, policy, 3)
        assert retried.total == pytest.approx(3 * base.total + 15.0e-9)
        assert retried.backoff == pytest.approx(15.0e-9)
        assert retried.sensing == pytest.approx(3 * base.total)
        assert retried.slowdown > 3.0
        # One attempt is exactly the clean read.
        assert retry_read_latency(base, policy, 1).total == base.total

    def test_latency_guards(self, paper_cell):
        base = self.make_base(paper_cell)
        policy = RetryPolicy(max_attempts=2)
        with pytest.raises(ConfigurationError):
            retry_read_latency(base, policy, 0)
        with pytest.raises(ConfigurationError):
            retry_read_latency(base, policy, 3)

    def test_energy_scales_quadratically_with_escalation(self, paper_cell):
        base = scheme_read_energy(paper_cell, self.make_base(paper_cell))
        policy = RetryPolicy(max_attempts=3, current_escalation=0.2)
        retried = retry_read_energy(base, policy, 3)
        assert retried.per_attempt[0] == pytest.approx(base.total)
        assert retried.per_attempt[2] == pytest.approx(
            base.write_energy + base.read_energy * 1.4**2
        )
        assert retried.total == pytest.approx(sum(retried.per_attempt))
        assert retried.overhead == pytest.approx(retried.total - base.total)
        assert retried.cost_factor > 3.0  # escalation beats linear cost

    def test_energy_without_escalation_is_linear(self, paper_cell):
        base = scheme_read_energy(paper_cell, self.make_base(paper_cell))
        policy = RetryPolicy(max_attempts=3)
        retried = retry_read_energy(base, policy, 3)
        assert retried.total == pytest.approx(3 * base.total)
