"""Tests for the nonlinear physical read simulation and spare repair."""

import numpy as np
import pytest

from repro.array.repair import allocate_repair
from repro.array.testchip import run_testchip_experiment
from repro.array.testchip import TestChip as ChipConfig
from repro.errors import ConfigurationError
from repro.timing.physical import simulate_physical_read


class TestPhysicalRead:
    def test_senses_both_bits(self):
        one = simulate_physical_read(1)
        zero = simulate_physical_read(0)
        assert one.sensed_bit == 1 and one.sense_differential > 0
        assert zero.sensed_bit == 0 and zero.sense_differential < 0

    def test_margin_near_first_principles_value(self):
        # The analytic first-principles margin is ~14 mV (EXPERIMENTS.md).
        one = simulate_physical_read(1)
        assert one.sense_differential == pytest.approx(14.2e-3, rel=0.1)

    def test_completes_within_paper_budget(self):
        assert simulate_physical_read(1).total_duration < 20e-9

    def test_bo_is_half_bitline_when_settled(self):
        waveforms = simulate_physical_read(1)
        schedule = waveforms.schedule
        t = schedule.end_of("sense") - 1e-10
        assert waveforms.transient.at("BO", t) == pytest.approx(
            0.5 * waveforms.transient.at("BL", t), rel=0.01
        )

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            simulate_physical_read(2)
        with pytest.raises(ConfigurationError):
            simulate_physical_read(1, dt=0.0)


class TestRepairAllocator:
    def test_no_fails_no_spares_needed(self):
        plan = allocate_repair(np.zeros(64, dtype=bool), 8, 8, 2, 2)
        assert plan.repaired
        assert plan.spares_used == 0

    def test_single_fail_uses_one_spare(self):
        mask = np.zeros(64, dtype=bool)
        mask[3 * 8 + 5] = True
        plan = allocate_repair(mask, 8, 8, 1, 1)
        assert plan.repaired
        assert plan.spares_used == 1

    def test_row_of_fails_forces_row_spare(self):
        mask = np.zeros(64, dtype=bool)
        mask[2 * 8: 3 * 8] = True  # entire row 2 fails
        plan = allocate_repair(mask, 8, 8, 1, 2)
        assert plan.repaired
        assert plan.spare_rows_used == [2]
        assert plan.spare_columns_used == []

    def test_column_of_fails_forces_column_spare(self):
        mask = np.zeros(64, dtype=bool)
        mask[5::8] = True  # entire column 5 fails
        plan = allocate_repair(mask, 8, 8, 2, 1)
        assert plan.repaired
        assert plan.spare_columns_used == [5]

    def test_insufficient_spares_reported(self):
        mask = np.zeros(64, dtype=bool)
        # Three fails on a diagonal: needs three spares.
        for index in range(3):
            mask[index * 8 + index] = True
        plan = allocate_repair(mask, 8, 8, 1, 1)
        assert not plan.repaired
        assert plan.unrepaired_fails == 1

    def test_cross_pattern(self):
        mask = np.zeros(64, dtype=bool)
        mask[3 * 8: 4 * 8] = True  # row 3
        mask[6::8] = True          # column 6
        plan = allocate_repair(mask, 8, 8, 1, 1)
        assert plan.repaired
        assert plan.spare_rows_used == [3]
        assert plan.spare_columns_used == [6]

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            allocate_repair(np.zeros(10, dtype=bool), 8, 8, 1, 1)
        with pytest.raises(ConfigurationError):
            allocate_repair(np.zeros(64, dtype=bool), 8, 8, -1, 1)


class TestRepairOnTestchip:
    def test_conventional_chip_repairable_with_modest_spares(self):
        # The ~1% conventional fails of a 32x32 slice: count the spares the
        # greedy allocator needs and check a realistic budget covers it.
        result = run_testchip_experiment(ChipConfig(rows=32, columns=32))
        mask = result.margins["conventional"].fail_mask(8e-3)
        fails = int(mask.sum())
        plan = allocate_repair(mask, 32, 32, spare_rows=16, spare_columns=16)
        assert plan.repaired
        assert plan.spares_used <= fails  # never worse than one spare/fail

    def test_self_reference_chip_needs_no_repair(self):
        result = run_testchip_experiment(ChipConfig(rows=32, columns=32))
        mask = result.margins["nondestructive"].fail_mask(8e-3)
        plan = allocate_repair(mask, 32, 32, spare_rows=0, spare_columns=0)
        assert plan.repaired
        assert plan.spares_used == 0
