"""Tests for the sensing peripherals: divider, sample capacitor, sense
amplifier, bit line."""

import math

import numpy as np
import pytest

from repro.circuit.bitline import BitlineModel, PAPER_BITLINE
from repro.circuit.divider import VoltageDivider
from repro.circuit.sense_amp import SenseAmplifier, SenseDecision
from repro.circuit.storage import SampleCapacitor
from repro.errors import ConfigurationError


class TestVoltageDivider:
    def test_ideal_output(self):
        d = VoltageDivider(ratio=0.5)
        assert d.output(0.4) == pytest.approx(0.2)

    def test_deviation_scales_ratio(self):
        d = VoltageDivider(ratio=0.5, ratio_deviation=0.04)
        assert d.realized_ratio == pytest.approx(0.52)
        assert d.output(1.0) == pytest.approx(0.52)

    def test_resistance_split(self):
        d = VoltageDivider(ratio=0.5, total_resistance=20e6)
        assert d.upper_resistance == pytest.approx(10e6)
        assert d.lower_resistance == pytest.approx(10e6)
        assert d.upper_resistance + d.lower_resistance == pytest.approx(20e6)

    def test_asymmetric_split(self):
        d = VoltageDivider(ratio=0.25, total_resistance=20e6)
        assert d.lower_resistance == pytest.approx(5e6)

    def test_leakage_current_small(self):
        # Tens-of-MΩ impedance: leakage at 0.5 V is tens of nA, far below
        # the 200 µA read current (paper §V design intent).
        d = VoltageDivider(total_resistance=20e6)
        assert d.leakage_current(0.5) < 1e-7

    def test_loading_error_negligible_for_cell_impedance(self):
        d = VoltageDivider(total_resistance=20e6)
        error = d.loading_error(3000.0)
        assert error < 2e-4

    def test_loading_error_monotone_in_source_resistance(self):
        d = VoltageDivider()
        assert d.loading_error(10e3) > d.loading_error(1e3)

    def test_loading_error_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            VoltageDivider().loading_error(-1.0)

    def test_with_deviation(self):
        d = VoltageDivider(ratio=0.5).with_deviation(-0.05)
        assert d.realized_ratio == pytest.approx(0.475)

    @pytest.mark.parametrize("ratio", [0.0, 1.0, -0.5, 1.5])
    def test_rejects_bad_ratio(self, ratio):
        with pytest.raises(ConfigurationError):
            VoltageDivider(ratio=ratio)

    def test_rejects_deviation_pushing_ratio_out(self):
        with pytest.raises(ConfigurationError):
            VoltageDivider(ratio=0.5, ratio_deviation=1.5)

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(ConfigurationError):
            VoltageDivider(total_resistance=0.0)


class TestSampleCapacitor:
    def test_full_sample(self):
        cap = SampleCapacitor()
        cap.sample(0.3, duration=20 * cap.charge_time_constant)
        assert cap.stored_voltage == pytest.approx(0.3, rel=1e-6)

    def test_partial_sample_follows_rc(self):
        cap = SampleCapacitor()
        tau = cap.charge_time_constant
        cap.sample(1.0, duration=tau)
        assert cap.stored_voltage == pytest.approx(1.0 - math.exp(-1.0))

    def test_hold_droop(self):
        cap = SampleCapacitor(leakage_resistance=1e9)
        cap.sample(0.5, duration=20 * cap.charge_time_constant)
        tau_leak = cap.leakage_resistance * cap.capacitance
        cap.hold(tau_leak)
        assert cap.stored_voltage == pytest.approx(0.5 * math.exp(-1.0))

    def test_droop_negligible_over_read(self):
        # The default leakage keeps the stored value essentially intact over
        # a 15 ns read — a design requirement of both self-ref schemes.
        cap = SampleCapacitor()
        cap.sample(0.3, duration=20 * cap.charge_time_constant)
        assert cap.droop_after(15e-9) < 1e-6

    def test_settling_time(self):
        cap = SampleCapacitor(capacitance=100e-15, switch_resistance=5e3)
        tau = 100e-15 * 5e3
        assert cap.settling_time(0.001) == pytest.approx(-tau * math.log(0.001))

    def test_reset(self):
        cap = SampleCapacitor()
        cap.sample(0.5, 1e-6)
        cap.reset()
        assert cap.stored_voltage == 0.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ConfigurationError):
            SampleCapacitor().sample(0.5, -1.0)
        with pytest.raises(ConfigurationError):
            SampleCapacitor().hold(-1.0)

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ConfigurationError):
            SampleCapacitor().settling_time(0.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacitance": 0.0},
            {"switch_resistance": 0.0},
            {"leakage_resistance": 0.0},
        ],
    )
    def test_rejects_nonpositive_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            SampleCapacitor(**kwargs)


class TestSenseAmplifier:
    def test_clear_decisions(self):
        amp = SenseAmplifier(resolution=8e-3)
        assert amp.compare(0.5, 0.4) is SenseDecision.HIGH
        assert amp.compare(0.4, 0.5) is SenseDecision.LOW

    def test_metastable_inside_window(self):
        amp = SenseAmplifier(resolution=8e-3)
        assert amp.compare(0.500, 0.503) is SenseDecision.METASTABLE

    def test_metastable_resolves_with_rng(self, rng):
        amp = SenseAmplifier(resolution=8e-3)
        decisions = {amp.compare(0.5, 0.5, rng) for _ in range(64)}
        assert decisions == {SenseDecision.HIGH, SenseDecision.LOW}

    def test_compare_bit(self):
        amp = SenseAmplifier(resolution=1e-3)
        assert amp.compare_bit(0.5, 0.4) == 1
        assert amp.compare_bit(0.4, 0.5) == 0
        assert amp.compare_bit(0.5, 0.5) is None

    def test_offset_shifts_decision(self):
        amp = SenseAmplifier(offset=-20e-3, resolution=8e-3)
        # True differential +10 mV is overpowered by the -20 mV offset.
        assert amp.compare(0.51, 0.50) is SenseDecision.LOW

    def test_auto_zero_shrinks_offset(self):
        amp = SenseAmplifier(raw_offset=20e-3, auto_zero_rejection=100.0)
        amp.auto_zero()
        assert amp.offset == pytest.approx(0.2e-3)

    def test_sampled_instances_vary(self, rng):
        amps = [SenseAmplifier.sampled(rng) for _ in range(8)]
        offsets = {amp.raw_offset for amp in amps}
        assert len(offsets) == 8

    def test_sampled_auto_zeroed_by_default(self, rng):
        amp = SenseAmplifier.sampled(rng, raw_offset_sigma=20e-3)
        assert abs(amp.offset) <= abs(amp.raw_offset) / 100.0 + 1e-12

    def test_sampled_without_auto_zero(self, rng):
        amp = SenseAmplifier.sampled(rng, auto_zeroed=False)
        assert amp.offset == amp.raw_offset

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SenseAmplifier(resolution=-1.0)
        with pytest.raises(ConfigurationError):
            SenseAmplifier(auto_zero_rejection=0.5)


class TestBitline:
    def test_paper_organization(self):
        assert PAPER_BITLINE.cells_per_bitline == 128

    def test_totals(self):
        bl = BitlineModel(
            cells_per_bitline=128,
            wire_resistance_per_cell=2.0,
            wire_capacitance_per_cell=0.4e-15,
        )
        assert bl.total_wire_resistance == pytest.approx(256.0)
        assert bl.total_capacitance == pytest.approx(51.2e-15)

    def test_leakage_conductance_counts_unselected_cells(self):
        bl = BitlineModel(cells_per_bitline=128, off_cell_leakage_resistance=5e9)
        assert bl.leakage_conductance == pytest.approx(127 / 5e9)

    def test_single_cell_bitline_has_no_leakage(self):
        bl = BitlineModel(cells_per_bitline=1)
        assert bl.leakage_conductance == 0.0

    def test_leakage_current_small_vs_read_current(self):
        # The paper's simulation "considered" this leakage; it must be a
        # small correction, not a dominant term.
        current = PAPER_BITLINE.leakage_current(0.6)
        assert current < 0.01 * 200e-6

    def test_voltage_error_first_order(self):
        bl = PAPER_BITLINE
        error = bl.voltage_error(0.5, 3000.0)
        assert error == pytest.approx(0.5 * 3000.0 * bl.leakage_conductance)

    def test_elmore_delay_grows_with_end_capacitor(self):
        bare = PAPER_BITLINE.elmore_delay()
        loaded = PAPER_BITLINE.elmore_delay(extra_capacitance=100e-15)
        assert loaded > bare

    def test_settling_slower_with_sampling_capacitor(self):
        # The §V argument: the destructive scheme's second read charges C2,
        # the nondestructive one only drives the high-impedance divider.
        with_cap = PAPER_BITLINE.settling_time(
            3000.0, extra_capacitance=100e-15, switch_resistance=5e3
        )
        without = PAPER_BITLINE.settling_time(3000.0)
        assert with_cap > 2 * without

    def test_settling_time_scales_with_tolerance(self):
        fast = PAPER_BITLINE.settling_time(3000.0, tolerance=0.1)
        slow = PAPER_BITLINE.settling_time(3000.0, tolerance=0.001)
        assert slow > fast

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            BitlineModel(cells_per_bitline=0)
        with pytest.raises(ConfigurationError):
            BitlineModel(off_cell_leakage_resistance=0.0)
        with pytest.raises(ConfigurationError):
            PAPER_BITLINE.settling_time(0.0)
        with pytest.raises(ConfigurationError):
            PAPER_BITLINE.settling_time(1000.0, tolerance=1.5)
        with pytest.raises(ConfigurationError):
            PAPER_BITLINE.elmore_delay(extra_capacitance=-1.0)
