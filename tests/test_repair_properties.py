"""Hypothesis property tests for the spare-repair allocator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.array.repair import allocate_repair


@st.composite
def fail_grids(draw, max_dim=12, max_fails=10):
    rows = draw(st.integers(2, max_dim))
    columns = draw(st.integers(2, max_dim))
    count = draw(st.integers(0, min(max_fails, rows * columns)))
    indices = draw(
        st.lists(
            st.integers(0, rows * columns - 1),
            min_size=count, max_size=count, unique=True,
        )
    )
    mask = np.zeros(rows * columns, dtype=bool)
    mask[indices] = True
    return mask, rows, columns


class TestAllocatorProperties:
    @given(grid=fail_grids(), spare_rows=st.integers(0, 6), spare_columns=st.integers(0, 6))
    @settings(max_examples=80, deadline=None)
    def test_never_reports_negative_or_excess_fails(
        self, grid, spare_rows, spare_columns
    ):
        mask, rows, columns = grid
        plan = allocate_repair(mask, rows, columns, spare_rows, spare_columns)
        assert 0 <= plan.unrepaired_fails <= int(mask.sum())
        assert len(plan.spare_rows_used) <= spare_rows
        assert len(plan.spare_columns_used) <= spare_columns

    @given(grid=fail_grids())
    @settings(max_examples=60, deadline=None)
    def test_enough_row_spares_always_repair(self, grid):
        # One spare row per failing bit is always sufficient (each failing
        # bit lives in some row).
        mask, rows, columns = grid
        fails = int(mask.sum())
        plan = allocate_repair(mask, rows, columns, spare_rows=fails, spare_columns=0)
        assert plan.repaired

    @given(grid=fail_grids())
    @settings(max_examples=60, deadline=None)
    def test_spares_only_consumed_when_useful(self, grid):
        # Every consumed spare removed at least one failing bit, so the
        # total spares used never exceeds the number of fails.
        mask, rows, columns = grid
        plan = allocate_repair(mask, rows, columns, spare_rows=8, spare_columns=8)
        assert plan.spares_used <= int(mask.sum())

    @given(grid=fail_grids(), spare_rows=st.integers(0, 4), spare_columns=st.integers(0, 4))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_spares(self, grid, spare_rows, spare_columns):
        # More spares never leave more unrepaired fails.
        mask, rows, columns = grid
        fewer = allocate_repair(mask, rows, columns, spare_rows, spare_columns)
        more = allocate_repair(mask, rows, columns, spare_rows + 1, spare_columns + 1)
        assert more.unrepaired_fails <= fewer.unrepaired_fails

    @given(grid=fail_grids())
    @settings(max_examples=40, deadline=None)
    def test_used_lines_are_valid_indices(self, grid):
        mask, rows, columns = grid
        plan = allocate_repair(mask, rows, columns, 4, 4)
        assert all(0 <= row < rows for row in plan.spare_rows_used)
        assert all(0 <= col < columns for col in plan.spare_columns_used)
