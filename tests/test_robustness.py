"""Robustness-window tests (paper §IV, Table II)."""

import pytest

from repro.core.margins import destructive_margins, nondestructive_margins
from repro.core.optimize import (
    optimize_beta_destructive,
    optimize_beta_nondestructive,
)
from repro.core.robustness import (
    alpha_deviation_window,
    robustness_summary,
    rtr_shift_window_destructive,
    rtr_shift_window_nondestructive,
    valid_beta_window_destructive,
    valid_beta_window_nondestructive,
)

I2 = 200e-6


class TestBetaWindows:
    def test_destructive_window_contains_optimum(self, paper_cell):
        lower, upper = valid_beta_window_destructive(paper_cell, I2)
        opt = optimize_beta_destructive(paper_cell, I2).beta
        assert lower < opt < upper

    def test_destructive_window_opens_at_one(self, paper_cell):
        lower, _ = valid_beta_window_destructive(paper_cell, I2)
        assert lower == pytest.approx(1.0, abs=1e-3)

    def test_destructive_margin_vanishes_at_upper_edge(self, paper_cell):
        _, upper = valid_beta_window_destructive(paper_cell, I2)
        assert destructive_margins(paper_cell, I2, upper).sm1 == pytest.approx(
            0.0, abs=1e-9
        )

    def test_nondestructive_window_contains_optimum(self, paper_cell):
        lower, upper = valid_beta_window_nondestructive(paper_cell, I2, 0.5)
        opt = optimize_beta_nondestructive(paper_cell, I2, 0.5).beta
        assert lower < opt < upper

    def test_nondestructive_lower_edge_near_two(self, paper_cell):
        # Paper Table II: "Min. β = 2" at α = 0.5.
        lower, _ = valid_beta_window_nondestructive(paper_cell, I2, 0.5)
        assert lower == pytest.approx(2.0, abs=0.02)

    def test_nondestructive_margins_vanish_at_edges(self, paper_cell):
        lower, upper = valid_beta_window_nondestructive(paper_cell, I2, 0.5)
        assert nondestructive_margins(paper_cell, I2, lower, 0.5).sm0 == pytest.approx(
            0.0, abs=1e-9
        )
        assert nondestructive_margins(paper_cell, I2, upper, 0.5).sm1 == pytest.approx(
            0.0, abs=1e-9
        )

    def test_nondestructive_window_tighter_than_destructive(self, paper_cell):
        # The paper: "relatively tighter constraints on device variations".
        d_lower, d_upper = valid_beta_window_destructive(paper_cell, I2)
        n_lower, n_upper = valid_beta_window_nondestructive(paper_cell, I2, 0.5)
        assert (n_upper - n_lower) < (d_upper - d_lower)


class TestRtrWindows:
    def test_destructive_symmetric_at_optimum(self, paper_cell, calibration):
        beta = calibration.beta_destructive
        lower, upper = rtr_shift_window_destructive(paper_cell, I2, beta)
        assert lower == pytest.approx(-upper, rel=1e-6)

    def test_destructive_matches_paper_468(self, paper_cell, calibration):
        _, upper = rtr_shift_window_destructive(
            paper_cell, I2, calibration.beta_destructive
        )
        assert upper == pytest.approx(468.0, rel=0.03)

    def test_nondestructive_matches_paper_130(self, paper_cell, calibration):
        _, upper = rtr_shift_window_nondestructive(
            paper_cell, I2, calibration.beta_nondestructive, 0.5
        )
        assert upper == pytest.approx(130.0, rel=0.03)

    def test_window_equals_margin_over_current(self, paper_cell, calibration):
        # The analytic structure: ±SM/I_R1 at the balanced point.
        beta = calibration.beta_nondestructive
        margins = nondestructive_margins(paper_cell, I2, beta, 0.5)
        _, upper = rtr_shift_window_nondestructive(paper_cell, I2, beta, 0.5)
        assert upper == pytest.approx(margins.sm0 / (I2 / beta))

    def test_margin_vanishes_at_window_edge(self, paper_cell, calibration):
        beta = calibration.beta_nondestructive
        _, upper = rtr_shift_window_nondestructive(paper_cell, I2, beta, 0.5)
        edge = nondestructive_margins(paper_cell, I2, beta, 0.5, rtr_shift=upper)
        assert edge.sm0 == pytest.approx(0.0, abs=1e-12)

    def test_nondestructive_window_tighter(self, paper_cell, calibration):
        _, d_upper = rtr_shift_window_destructive(
            paper_cell, I2, calibration.beta_destructive
        )
        _, n_upper = rtr_shift_window_nondestructive(
            paper_cell, I2, calibration.beta_nondestructive, 0.5
        )
        assert n_upper < d_upper / 3


class TestAlphaWindow:
    def test_matches_paper_values(self, paper_cell, calibration):
        lower, upper = alpha_deviation_window(
            paper_cell, I2, calibration.beta_nondestructive, 0.5
        )
        assert upper == pytest.approx(0.0413, abs=0.005)
        assert lower == pytest.approx(-0.0571, abs=0.005)

    def test_asymmetry_from_resistance_split(self, paper_cell, calibration):
        # |lower| > upper because R_L2 < R_H2 (paper's -5.71% vs +4.13%).
        lower, upper = alpha_deviation_window(
            paper_cell, I2, calibration.beta_nondestructive, 0.5
        )
        assert abs(lower) > upper

    def test_margin_vanishes_at_edges(self, paper_cell, calibration):
        beta = calibration.beta_nondestructive
        lower, upper = alpha_deviation_window(paper_cell, I2, beta, 0.5)
        at_upper = nondestructive_margins(
            paper_cell, I2, beta, 0.5, alpha_deviation=upper
        )
        at_lower = nondestructive_margins(
            paper_cell, I2, beta, 0.5, alpha_deviation=lower
        )
        assert at_upper.sm1 == pytest.approx(0.0, abs=1e-12)
        assert at_lower.sm0 == pytest.approx(0.0, abs=1e-12)

    def test_rejects_bad_alpha(self, paper_cell):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            alpha_deviation_window(paper_cell, I2, 2.13, alpha=0.0)


class TestSummary:
    def test_table2_structure(self, paper_cell):
        destructive, nondestructive = robustness_summary(paper_cell, I2)
        assert destructive.alpha_window is None  # N/A in the paper
        assert nondestructive.alpha_window is not None
        assert destructive.max_sense_margin > nondestructive.max_sense_margin

    def test_explicit_betas_respected(self, paper_cell):
        destructive, nondestructive = robustness_summary(
            paper_cell, I2, beta_destructive=1.25, beta_nondestructive=2.10
        )
        assert destructive.design_beta == 1.25
        assert nondestructive.design_beta == 2.10
