"""Hypothesis property tests on cross-cutting invariants of the core
sensing mathematics."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.cell import Cell1T1J
from repro.core.margins import (
    conventional_margins,
    destructive_margins,
    nondestructive_margins,
)
from repro.core.optimize import optimize_beta_destructive, optimize_beta_nondestructive
from repro.device.mtj import MTJDevice, MTJParams, MTJState
from repro.device.rolloff import PowerLawRollOff, RationalRollOff
from repro.device.transistor import FixedResistanceTransistor
from repro.errors import ConvergenceError

I2 = 200e-6


def build_cell(r_low, tmr, dr_high_frac, dr_low_frac, p_high, p_low, r_tr):
    """Construct a physically-valid cell from dimensionless knobs."""
    r_high = r_low * (1.0 + tmr)
    params = MTJParams(
        r_low=r_low,
        r_high=r_high,
        dr_high_max=dr_high_frac * (r_high - r_low),
        dr_low_max=dr_low_frac * r_low,
    )
    device = MTJDevice(params, PowerLawRollOff(p_high), PowerLawRollOff(p_low))
    return Cell1T1J(device, FixedResistanceTransistor(r_tr))


cell_strategy = st.builds(
    build_cell,
    r_low=st.floats(500.0, 3000.0),
    tmr=st.floats(0.5, 2.0),
    dr_high_frac=st.floats(0.2, 0.8),
    dr_low_frac=st.floats(0.0, 0.15),
    p_high=st.floats(0.5, 3.0),
    p_low=st.floats(0.5, 3.0),
    r_tr=st.floats(300.0, 2000.0),
)


class TestMarginStructure:
    @given(cell=cell_strategy, beta=st.floats(1.05, 3.0))
    @settings(max_examples=60, deadline=None)
    def test_destructive_margin_sum_independent_of_split(self, cell, beta):
        """SM0 + SM1 = I_R1 (R_H1 - R_L1): the total window depends only on
        the first-read resistance split, not on the reference placement."""
        margins = destructive_margins(cell, I2, beta)
        i1 = I2 / beta
        split = cell.mtj.resistance(i1, MTJState.ANTIPARALLEL) - cell.mtj.resistance(
            i1, MTJState.PARALLEL
        )
        assert margins.sm0 + margins.sm1 == pytest.approx(i1 * split, rel=1e-9)

    @given(cell=cell_strategy, beta=st.floats(1.5, 3.0), alpha=st.floats(0.3, 0.7))
    @settings(max_examples=60, deadline=None)
    def test_nondestructive_margin_sum(self, cell, alpha, beta):
        """SM0 + SM1 = I_R1 (R_H1 - R_L1) - α I_R2 (R_H2 - R_L2)."""
        margins = nondestructive_margins(cell, I2, beta, alpha=alpha)
        i1 = I2 / beta
        split1 = cell.mtj.resistance(i1, MTJState.ANTIPARALLEL) - cell.mtj.resistance(
            i1, MTJState.PARALLEL
        )
        split2 = cell.mtj.resistance(I2, MTJState.ANTIPARALLEL) - cell.mtj.resistance(
            I2, MTJState.PARALLEL
        )
        expected = i1 * split1 - alpha * I2 * split2
        assert margins.sm0 + margins.sm1 == pytest.approx(expected, rel=1e-9, abs=1e-12)

    @given(cell=cell_strategy)
    @settings(max_examples=40, deadline=None)
    def test_conventional_margin_sum_is_full_swing(self, cell):
        v_ref = 0.5  # arbitrary: the sum must not depend on it
        margins = conventional_margins(cell, I2, v_ref)
        swing = I2 * (
            cell.mtj.resistance(I2, MTJState.ANTIPARALLEL)
            - cell.mtj.resistance(I2, MTJState.PARALLEL)
        )
        assert margins.sm0 + margins.sm1 == pytest.approx(swing, rel=1e-9)

    @given(cell=cell_strategy, beta=st.floats(1.05, 3.0), scale=st.floats(0.5, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_self_reference_margins_scale_with_resistance(self, cell, beta, scale):
        """With a negligible access-transistor resistance, scaling every MTJ
        resistance by c scales both destructive margins by exactly c — the
        self-referencing property (the bit is compared against itself, so
        common-mode resistance variation cancels into a pure gain factor).
        The finite R_T term is what breaks exact scaling in practice."""
        params = cell.mtj.params
        tiny_transistor = FixedResistanceTransistor(1e-6)
        base_cell = Cell1T1J(cell.mtj, tiny_transistor)
        scaled_params = MTJParams(
            r_low=params.r_low * scale,
            r_high=params.r_high * scale,
            dr_low_max=params.dr_low_max * scale,
            dr_high_max=params.dr_high_max * scale,
        )
        scaled_cell = Cell1T1J(
            MTJDevice(scaled_params, cell.mtj.rolloff_high, cell.mtj.rolloff_low),
            tiny_transistor,
        )
        base = destructive_margins(base_cell, I2, beta)
        scaled = destructive_margins(scaled_cell, I2, beta)
        assert scaled.sm0 == pytest.approx(scale * base.sm0, rel=1e-6, abs=1e-10)
        assert scaled.sm1 == pytest.approx(scale * base.sm1, rel=1e-6, abs=1e-10)


class TestOptimizerProperties:
    @given(cell=cell_strategy)
    @settings(max_examples=30, deadline=None)
    def test_destructive_optimum_balances_and_is_positive(self, cell):
        try:
            opt = optimize_beta_destructive(cell, I2)
        except ConvergenceError:
            assume(False)
        assert opt.margins.is_balanced
        assert opt.max_sense_margin > 0
        assert opt.beta > 1.0

    @given(cell=cell_strategy, alpha=st.floats(0.35, 0.65))
    @settings(max_examples=30, deadline=None)
    def test_nondestructive_optimum_above_one_over_alpha_region(self, cell, alpha):
        try:
            opt = optimize_beta_nondestructive(cell, I2, alpha=alpha)
        except ConvergenceError:
            assume(False)
        assert opt.margins.is_balanced
        # SM0 > 0 needs αβ > (R_L1 + R_T)/(R_L2 + R_T) ≈ 1.
        assert opt.beta * alpha > 0.95

    @given(cell=cell_strategy)
    @settings(max_examples=30, deadline=None)
    def test_destructive_beats_nondestructive_margin(self, cell):
        """The destructive scheme's erased-state reference yields a larger
        balanced margin than the roll-off-difference reference (the price
        the nondestructive scheme pays for keeping the data).  Not quite
        universal: at minimum TMR with a steep high-state roll-off over a
        flat low-state one — the exact asymmetry the nondestructive scheme
        exploits — its reference can edge ahead by a few percent (worst
        observed ≈2.6% over a 4000-cell scan of this strategy's space), so
        the ordering is asserted with a 5% floor rather than strictly."""
        try:
            dest = optimize_beta_destructive(cell, I2)
            nond = optimize_beta_nondestructive(cell, I2, alpha=0.5)
        except ConvergenceError:
            assume(False)
        assert dest.max_sense_margin > 0.95 * nond.max_sense_margin


class TestRollOffFamilyInvariance:
    @given(
        exponent=st.floats(0.5, 3.0),
        knee=st.floats(0.05, 50.0),
        x=st.floats(0.0, 1.0),
    )
    @settings(max_examples=60)
    def test_rational_bounded_by_saturation(self, exponent, knee, x):
        model = RationalRollOff(exponent, knee)
        assert 0.0 - 1e-12 <= model.fraction(x) <= 1.0 + knee  # below asymptote

    @given(exponent=st.floats(0.5, 3.0), x=st.floats(0.0, 1.0))
    @settings(max_examples=60)
    def test_power_law_below_identity_iff_exponent_above_one(self, exponent, x):
        assume(0.0 < x < 1.0)
        value = PowerLawRollOff(exponent).fraction(x)
        if exponent > 1.0:
            assert value <= x + 1e-12
        elif exponent < 1.0:
            assert value >= x - 1e-12
