"""Margin-sensitivity analysis tests."""

import pytest

from repro.analysis.sensitivity import margin_sensitivities
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def entries():
    from repro.calibration import calibrate, calibrated_cell

    calibration = calibrate()
    return margin_sensitivities(
        calibrated_cell(),
        calibration.beta_destructive,
        calibration.beta_nondestructive,
    )


def lookup(entries, parameter, scheme):
    return next(
        e for e in entries if e.parameter == parameter and e.scheme == scheme
    )


class TestRanking:
    def test_sorted_by_magnitude(self, entries):
        magnitudes = [entry.magnitude for entry in entries]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_alpha_beta_dominate_nondestructive(self, entries):
        # The paper's robustness worry, recovered by generic sensitivity
        # analysis: the divider and current-ratio mismatches are the
        # nondestructive scheme's top risks.
        top_two = {(e.parameter, e.scheme) for e in entries[:2]}
        assert top_two == {("alpha", "nondestructive"), ("beta", "nondestructive")}

    def test_no_alpha_entry_for_destructive(self, entries):
        assert not any(
            e.parameter == "alpha" and e.scheme == "destructive" for e in entries
        )


class TestSigns:
    def test_imax_helps_both(self, entries):
        # "Increasing I_max improves the margin" (paper future work): the
        # sensitivity to i_read2 is positive for both schemes.
        assert lookup(entries, "i_read2", "nondestructive").sensitivity > 0
        assert lookup(entries, "i_read2", "destructive").sensitivity > 0

    def test_rolloff_magnitude_helps_nondestructive(self, entries):
        # The whole scheme lives on ΔR_Hmax.
        assert lookup(entries, "dr_high_max", "nondestructive").sensitivity > 1.0

    def test_higher_alpha_hurts_at_fixed_beta(self, entries):
        # At fixed β, raising α lifts V_BO and erodes SM1 (Fig. 8's right
        # edge) — negative sensitivity.
        assert lookup(entries, "alpha", "nondestructive").sensitivity < 0

    def test_r_high_helps_destructive(self, entries):
        # A larger high-state resistance directly grows the destructive
        # swing.
        assert lookup(entries, "r_high", "destructive").sensitivity > 1.0


class TestConfiguration:
    def test_custom_parameter_subset(self):
        from repro.calibration import calibrate, calibrated_cell

        calibration = calibrate()
        entries = margin_sensitivities(
            calibrated_cell(),
            calibration.beta_destructive,
            calibration.beta_nondestructive,
            parameters=["beta"],
        )
        assert {e.parameter for e in entries} == {"beta"}
        assert len(entries) == 2  # one per scheme

    def test_rejects_bad_step(self):
        from repro.calibration import calibrate, calibrated_cell

        calibration = calibrate()
        with pytest.raises(ConfigurationError):
            margin_sensitivities(
                calibrated_cell(),
                calibration.beta_destructive,
                calibration.beta_nondestructive,
                step=0.5,
            )

    def test_rejects_unknown_parameter(self):
        from repro.calibration import calibrate, calibrated_cell

        calibration = calibrate()
        with pytest.raises(ConfigurationError):
            margin_sensitivities(
                calibrated_cell(),
                calibration.beta_destructive,
                calibration.beta_nondestructive,
                parameters=["flux_capacitance"],
            )
