"""Test-time β-trimming tests (the paper's §V compensation knob)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import calibrate
from repro.core.margins import population_nondestructive_margins
from repro.core.optimize import optimize_beta_nondestructive
from repro.core.trim import beta_compensating_alpha, trim_population_beta
from repro.device.variation import CellPopulation, VariationModel
from repro.errors import ConfigurationError


@pytest.fixture
def calibrated_population(rng, calibration):
    return CellPopulation.sample(
        size=1024,
        variation=VariationModel(sigma_alpha_frac=0.0, sigma_beta_frac=0.0),
        params=calibration.params,
        rolloff_high=calibration.rolloff_high(),
        rolloff_low=calibration.rolloff_low(),
        rng=rng,
    )


class TestAlphaCompensation:
    def test_zero_deviation_reproduces_nominal_optimum(self, paper_cell, calibration):
        optimum = beta_compensating_alpha(paper_cell, 0.5, 0.0)
        assert optimum.beta == pytest.approx(calibration.beta_nondestructive, rel=1e-6)

    def test_compensation_restores_balance(self, paper_cell):
        from repro.core.margins import nondestructive_margins

        deviation = 0.03  # inside the Fig. 8 window the untrimmed SM1 ≈ 0.3 mV
        untrimmed = nondestructive_margins(
            paper_cell, 200e-6, 2.136, alpha=0.5, alpha_deviation=deviation
        )
        trimmed = beta_compensating_alpha(paper_cell, 0.5, deviation)
        assert trimmed.margins.is_balanced
        assert trimmed.max_sense_margin > 2 * untrimmed.min_margin

    def test_compensated_beta_direction(self, paper_cell):
        # Divider came out high (α·(1+Δ) too big): V_BO too large, so the
        # trim must reduce β (raise I_R1) to lift V_BL1 — β* drops.
        high = beta_compensating_alpha(paper_cell, 0.5, +0.04)
        low = beta_compensating_alpha(paper_cell, 0.5, -0.04)
        nominal = beta_compensating_alpha(paper_cell, 0.5, 0.0)
        assert high.beta < nominal.beta < low.beta

    def test_compensation_beyond_window_still_works(self, paper_cell):
        # Even a +8% divider error (outside the untrimmed ±4.3%/−6.1%
        # window) is recoverable by re-trimming β — the point of the knob.
        trimmed = beta_compensating_alpha(paper_cell, 0.5, 0.08)
        assert trimmed.max_sense_margin > 8e-3

    def test_untrimmable_ratio_rejected(self, paper_cell):
        with pytest.raises(ConfigurationError):
            beta_compensating_alpha(paper_cell, 0.5, 1.5)


class TestPopulationTrim:
    def test_trim_at_least_as_good_as_nominal_beta(self, calibrated_population, calibration):
        trim = trim_population_beta(calibrated_population)
        sm0, sm1 = population_nondestructive_margins(
            calibrated_population, 200e-6, calibration.beta_nondestructive
        )
        nominal_worst = float(np.min(np.minimum(sm0, sm1)))
        assert trim.worst_margin >= nominal_worst - 1e-9

    def test_trim_result_fields(self, calibrated_population):
        trim = trim_population_beta(calibrated_population)
        assert trim.scheme == "nondestructive"
        assert 1.01 <= trim.beta <= 4.0
        assert 0.0 <= trim.yield_fraction <= 1.0

    def test_trim_destructive_scheme(self, calibrated_population):
        trim = trim_population_beta(calibrated_population, scheme="destructive")
        # The destructive trim lands near the paper's 1.22 optimum.
        assert 1.1 < trim.beta < 1.4
        assert trim.worst_margin > 30e-3

    def test_trim_recovers_skewed_alpha(self, rng, calibration):
        # A population whose dividers all came out 3% high: the nominal β
        # leaves bits near zero margin; the trim recovers them.
        population = CellPopulation.sample(
            size=512,
            variation=VariationModel(sigma_alpha_frac=0.0, sigma_beta_frac=0.0),
            params=calibration.params,
            rolloff_high=calibration.rolloff_high(),
            rolloff_low=calibration.rolloff_low(),
            rng=rng,
        )
        population.alpha_deviation = np.full(population.size, 0.03)
        sm0, sm1 = population_nondestructive_margins(
            population, 200e-6, calibration.beta_nondestructive
        )
        skewed_worst = float(np.min(np.minimum(sm0, sm1)))
        trim = trim_population_beta(population)
        assert trim.worst_margin > skewed_worst + 5e-3

    def test_unknown_scheme_rejected(self, calibrated_population):
        with pytest.raises(ConfigurationError):
            trim_population_beta(calibrated_population, scheme="conventional")

    def test_empty_population_rejected(self, calibrated_population):
        empty = calibrated_population.subset(np.array([], dtype=int))
        with pytest.raises(ConfigurationError):
            trim_population_beta(empty)

    def test_grid_validation(self, calibrated_population):
        with pytest.raises(ConfigurationError):
            trim_population_beta(calibrated_population, grid_points=2)


def _skewed_population(alpha_skew: float, size: int = 256) -> CellPopulation:
    """A fixed-draw lot whose dividers all came out ``alpha_skew`` off."""
    from repro.calibration import calibrate

    calibration = calibrate()
    population = CellPopulation.sample(
        size=size,
        variation=VariationModel(sigma_alpha_frac=0.003, sigma_beta_frac=0.0),
        params=calibration.params,
        rolloff_high=calibration.rolloff_high(),
        rolloff_low=calibration.rolloff_low(),
        rng=np.random.default_rng(17),
    )
    population.alpha_deviation = population.alpha_deviation + alpha_skew
    return population


class TestTrimProperties:
    """Hypothesis invariants of the population trim — the contract the
    prodtest characterizer's binary search builds on."""

    @given(alpha_skew=st.floats(-0.05, 0.05))
    @settings(max_examples=20, deadline=None)
    def test_trim_is_idempotent_and_nondestructive(self, alpha_skew):
        # Trimming reads the population but never mutates it, so running
        # the trim twice lands on the identical knob and margin.
        population = _skewed_population(alpha_skew)
        before = {
            "alpha": population.alpha_deviation.copy(),
            "r_low0": population.r_low0.copy(),
            "r_high0": population.r_high0.copy(),
        }
        first = trim_population_beta(population)
        np.testing.assert_array_equal(population.alpha_deviation, before["alpha"])
        np.testing.assert_array_equal(population.r_low0, before["r_low0"])
        np.testing.assert_array_equal(population.r_high0, before["r_high0"])
        second = trim_population_beta(population)
        assert second.beta == first.beta
        assert second.worst_margin == first.worst_margin
        assert second.yield_fraction == first.yield_fraction

    @given(alpha_skew=st.floats(-0.05, 0.05))
    @settings(max_examples=20, deadline=None)
    def test_trim_never_loses_to_the_nominal_beta(self, alpha_skew):
        # Monotone improvement: whatever systematic divider skew the lot
        # drew, the trimmed worst-case margin is at least the nominal-β
        # margin (the trim can always fall back to not moving).
        from repro.calibration import calibrate

        population = _skewed_population(alpha_skew)
        sm0, sm1 = population_nondestructive_margins(
            population, 200e-6, calibrate().beta_nondestructive
        )
        nominal_worst = float(np.min(np.minimum(sm0, sm1)))
        trim = trim_population_beta(population)
        assert trim.worst_margin >= nominal_worst - 1e-9
