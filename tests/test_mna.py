"""MNA solver tests: DC against hand calculations, transient against
analytic RC responses."""

import math

import numpy as np
import pytest

from repro.circuit.elements import Capacitor, Resistor, Switch
from repro.circuit.mna import Circuit
from repro.errors import CircuitError


class TestElements:
    def test_resistor_conductance(self):
        r = Resistor("a", "b", 100.0)
        assert r.conductance(0.0) == pytest.approx(0.01)

    def test_resistor_time_dependent(self):
        r = Resistor("a", "b", lambda t: 100.0 if t < 1.0 else 200.0)
        assert r.conductance(0.0) == pytest.approx(0.01)
        assert r.conductance(2.0) == pytest.approx(0.005)

    def test_resistor_rejects_nonpositive(self):
        r = Resistor("a", "b", 0.0)
        with pytest.raises(CircuitError):
            r.conductance(0.0)

    def test_capacitor_rejects_nonpositive(self):
        with pytest.raises(CircuitError):
            Capacitor("a", "b", 0.0)

    def test_switch_states(self):
        s = Switch("a", "b", closed=lambda t: t > 1.0, r_on=10.0, r_off=1e9)
        assert s.conductance(0.0) == pytest.approx(1e-9)
        assert s.conductance(2.0) == pytest.approx(0.1)

    def test_switch_rejects_bad_resistances(self):
        with pytest.raises(CircuitError):
            Switch("a", "b", closed=lambda t: True, r_on=100.0, r_off=50.0)


class TestDC:
    def test_voltage_divider(self):
        c = Circuit()
        c.add_voltage_source("in", "gnd", 1.0)
        c.add_resistor("in", "mid", 1000.0)
        c.add_resistor("mid", "gnd", 1000.0)
        result = c.solve_dc()
        assert result["mid"] == pytest.approx(0.5)

    def test_current_source_into_resistor(self):
        c = Circuit()
        c.add_current_source("gnd", "n", 200e-6)
        c.add_resistor("n", "gnd", 2500.0)
        assert c.solve_dc()["n"] == pytest.approx(0.5)

    def test_cell_bitline_voltage(self):
        # The paper's Eq. 1: V_BL = I (R_MTJ + R_TR).
        c = Circuit()
        c.add_current_source("gnd", "BL", 200e-6)
        c.add_resistor("BL", "SL", 1900.0, name="MTJ")
        c.add_resistor("SL", "gnd", 917.0, name="NMOS")
        result = c.solve_dc()
        assert result["BL"] == pytest.approx(200e-6 * 2817.0)
        assert result["SL"] == pytest.approx(200e-6 * 917.0)

    def test_voltage_source_current_reported(self):
        c = Circuit()
        c.add_voltage_source("a", "gnd", 2.0, name="V1")
        c.add_resistor("a", "gnd", 100.0)
        result = c.solve_dc()
        # MNA convention: the source current flows from + through the source.
        assert abs(result.source_currents["V1"]) == pytest.approx(0.02)

    def test_superposition(self):
        def build(i_value, v_value):
            c = Circuit()
            c.add_current_source("gnd", "n", i_value)
            c.add_voltage_source("s", "gnd", v_value)
            c.add_resistor("s", "n", 1000.0)
            c.add_resistor("n", "gnd", 1000.0)
            return c.solve_dc()["n"]

        both = build(1e-3, 1.0)
        only_i = build(1e-3, 0.0)
        only_v = build(0.0, 1.0)
        assert both == pytest.approx(only_i + only_v)

    def test_floating_node_is_singular(self):
        c = Circuit()
        c.add_resistor("a", "b", 100.0)  # neither node grounded
        with pytest.raises(CircuitError):
            c.solve_dc()

    def test_empty_circuit_rejected(self):
        with pytest.raises(CircuitError):
            Circuit().solve_dc()

    def test_ground_aliases(self):
        c = Circuit()
        c.add_current_source("GND", "n", 1e-3)
        c.add_resistor("n", "0", 100.0)
        assert c.solve_dc()["n"] == pytest.approx(0.1)

    def test_node_names(self):
        c = Circuit()
        c.add_resistor("x", "y", 10.0)
        c.add_resistor("y", "gnd", 10.0)
        assert c.node_names == ["x", "y"]


class TestTransient:
    def test_rc_charge_matches_analytic(self):
        r_value, c_value = 1000.0, 1e-9  # tau = 1 µs
        c = Circuit()
        c.add_voltage_source("in", "gnd", 1.0)
        c.add_resistor("in", "out", r_value)
        c.add_capacitor("out", "gnd", c_value)
        tau = r_value * c_value
        result = c.solve_transient(t_stop=5 * tau, dt=tau / 200)
        expected = 1.0 - np.exp(-result.times / tau)
        assert np.allclose(result["out"], expected, atol=0.01)

    def test_initial_condition_respected(self):
        c = Circuit()
        c.add_resistor("n", "gnd", 1000.0)
        c.add_capacitor("n", "gnd", 1e-9, initial_voltage=1.0)
        result = c.solve_transient(t_stop=1e-8, dt=1e-10)
        assert result["n"][0] == pytest.approx(1.0, abs=0.01)

    def test_rc_discharge(self):
        r_value, c_value = 1000.0, 1e-9
        c = Circuit()
        c.add_resistor("n", "gnd", r_value)
        c.add_capacitor("n", "gnd", c_value, initial_voltage=1.0)
        tau = r_value * c_value
        result = c.solve_transient(t_stop=3 * tau, dt=tau / 200)
        expected = np.exp(-result.times / tau)
        assert np.allclose(result["n"], expected, atol=0.01)

    def test_switch_controlled_sampling(self):
        # Close a switch at t=0.5µs; the capacitor then charges to the rail.
        c = Circuit()
        c.add_voltage_source("in", "gnd", 1.0)
        c.add_switch("in", "cap", closed=lambda t: t >= 0.5e-6, r_on=100.0)
        c.add_capacitor("cap", "gnd", 1e-9)
        result = c.solve_transient(t_stop=2e-6, dt=2e-9)
        assert result.at("cap", 0.4e-6) == pytest.approx(0.0, abs=0.01)
        assert result.at("cap", 2e-6) == pytest.approx(1.0, abs=0.01)

    def test_time_dependent_current_source(self):
        c = Circuit()
        c.add_current_source("gnd", "n", lambda t: 1e-3 if t > 1e-6 else 0.0)
        c.add_resistor("n", "gnd", 1000.0)
        c.add_capacitor("n", "gnd", 1e-12)
        result = c.solve_transient(t_stop=2e-6, dt=1e-8)
        assert result.at("n", 0.5e-6) == pytest.approx(0.0, abs=1e-3)
        assert result.at("n", 2e-6) == pytest.approx(1.0, abs=0.01)

    def test_settling_time(self):
        r_value, c_value = 1000.0, 1e-9
        c = Circuit()
        c.add_voltage_source("in", "gnd", 1.0)
        c.add_resistor("in", "out", r_value)
        c.add_capacitor("out", "gnd", c_value)
        tau = r_value * c_value
        result = c.solve_transient(t_stop=10 * tau, dt=tau / 100)
        settle = result.settling_time("out", final_tolerance=0.01)
        # 1% settling of an RC is ~4.6 tau.
        assert settle == pytest.approx(4.6 * tau, rel=0.1)

    def test_rejects_bad_time_grid(self):
        c = Circuit()
        c.add_resistor("n", "gnd", 1.0)
        with pytest.raises(CircuitError):
            c.solve_transient(t_stop=1.0, dt=0.0)
        with pytest.raises(CircuitError):
            c.solve_transient(t_stop=0.0, dt=0.1)

    def test_stiff_circuit_stable(self):
        # Mix a nanosecond and a millisecond constant; backward Euler must
        # not blow up at the coarse step.
        c = Circuit()
        c.add_voltage_source("in", "gnd", 1.0)
        c.add_resistor("in", "fast", 10.0)
        c.add_capacitor("fast", "gnd", 1e-12)   # tau = 10 ps
        c.add_resistor("fast", "slow", 1e6)
        c.add_capacitor("slow", "gnd", 1e-9)    # tau = 1 ms
        result = c.solve_transient(t_stop=1e-6, dt=1e-8)
        assert np.all(np.isfinite(result["slow"]))
        assert np.all(result["slow"] <= 1.0 + 1e-9)
