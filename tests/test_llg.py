"""Macrospin LLG dynamics tests."""

import math

import numpy as np
import pytest

from repro.device.llg import MacrospinLLG
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def llg():
    return MacrospinLLG()


class TestConstruction:
    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            MacrospinLLG(damping=0.0)
        with pytest.raises(ConfigurationError):
            MacrospinLLG(damping=1.5)
        with pytest.raises(ConfigurationError):
            MacrospinLLG(precession_period=0.0)
        with pytest.raises(ConfigurationError):
            MacrospinLLG(initial_angle=2.0)


class TestDynamics:
    def test_magnetization_stays_on_sphere(self, llg):
        trajectory = llg.integrate(overdrive=1.5, duration=10e-9)
        assert np.all(np.abs(trajectory.mz) <= 1.0 + 1e-9)

    def test_subcritical_drive_relaxes_back(self, llg):
        trajectory = llg.integrate(overdrive=0.5, duration=30e-9)
        assert not trajectory.switched
        # Damping pulls the macrospin back toward the easy axis.
        assert trajectory.mz[-1] > 0.9

    def test_supercritical_drive_switches(self, llg):
        trajectory = llg.integrate(overdrive=2.0, duration=20e-9)
        assert trajectory.switched
        assert trajectory.mz[-1] < -0.9
        assert math.isfinite(trajectory.switching_time)

    def test_switching_time_decreases_with_overdrive(self, llg):
        times = [llg.switching_time(od, 60e-9) for od in (1.3, 1.6, 2.0, 3.0)]
        assert all(math.isfinite(t) for t in times)
        assert all(b < a for a, b in zip(times, times[1:]))

    def test_sun_scaling(self, llg):
        # Precessional regime: t_sw (I/I_c - 1) roughly constant — the
        # scaling the rate model (SwitchingModel) assumes.
        products = [
            (od - 1.0) * llg.switching_time(od, 60e-9) for od in (1.5, 2.0, 3.0)
        ]
        assert max(products) / min(products) < 1.6

    def test_larger_initial_angle_switches_faster(self, llg):
        cold = llg.integrate(overdrive=1.5, duration=30e-9, initial_angle=0.02)
        hot = llg.integrate(overdrive=1.5, duration=30e-9, initial_angle=0.3)
        assert hot.switching_time < cold.switching_time

    def test_higher_damping_relaxes_faster_subcritical(self):
        weak = MacrospinLLG(damping=0.005)
        strong = MacrospinLLG(damping=0.05)
        w = weak.integrate(overdrive=0.0, duration=5e-9)
        s = strong.integrate(overdrive=0.0, duration=5e-9)
        assert s.mz[-1] > w.mz[-1]

    def test_rejects_invalid_integration(self, llg):
        with pytest.raises(ConfigurationError):
            llg.integrate(1.5, duration=0.0)
        with pytest.raises(ConfigurationError):
            llg.integrate(1.5, duration=1e-9, dt=2e-9)
        with pytest.raises(ConfigurationError):
            llg.integrate(1.5, duration=1e-9, initial_angle=4.0)


class TestCriticalCurrent:
    def test_critical_overdrive_above_one(self, llg):
        critical = llg.critical_overdrive(duration=20e-9)
        assert critical > 1.0

    def test_critical_overdrive_decreases_with_duration(self, llg):
        short = llg.critical_overdrive(duration=5e-9)
        long = llg.critical_overdrive(duration=40e-9)
        assert long < short

    def test_consistency_with_rate_model_regime(self, llg):
        # The paper's 4 ns write pulse needs a solid overdrive in both the
        # rate model and the macrospin dynamics.
        critical_4ns = llg.critical_overdrive(duration=4e-9)
        assert 1.2 < critical_4ns < 3.5

    def test_unreachable_duration_raises(self, llg):
        with pytest.raises(ConfigurationError):
            llg.critical_overdrive(duration=10e-12)
