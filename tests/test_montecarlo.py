"""Monte-Carlo margin engine and yield-analysis tests."""

import numpy as np
import pytest

from repro.array.montecarlo import run_margin_monte_carlo
from repro.array.yield_analysis import analyze_margins
from repro.core.cell import Cell1T1J
from repro.core.margins import destructive_margins, nondestructive_margins
from repro.device.mtj import MTJDevice
from repro.device.transistor import FixedResistanceTransistor
from repro.device.variation import CellPopulation, VariationModel
from repro.errors import ConfigurationError


class TestRunMonteCarlo:
    def test_all_three_schemes_present(self, small_population):
        result = run_margin_monte_carlo(small_population)
        assert set(result.schemes) == {"conventional", "destructive", "nondestructive"}
        assert result.size == small_population.size

    def test_nominal_population_matches_scalar(self, nominal_population):
        result = run_margin_monte_carlo(
            nominal_population,
            beta_destructive=1.22,
            beta_nondestructive=2.13,
            include_sa_offset=False,
        )
        cell = Cell1T1J(MTJDevice(), FixedResistanceTransistor(917.0))
        expected_d = destructive_margins(cell, 200e-6, 1.22)
        expected_n = nondestructive_margins(cell, 200e-6, 2.13, alpha=0.5)
        assert np.allclose(result["destructive"].sm0, expected_d.sm0)
        assert np.allclose(result["nondestructive"].sm1, expected_n.sm1)

    def test_default_reference_balances_nominal_bits(self, nominal_population):
        result = run_margin_monte_carlo(nominal_population, include_sa_offset=False)
        conv = result["conventional"]
        assert np.allclose(conv.sm0, conv.sm1)

    def test_sa_offset_reduces_margins(self, small_population):
        with_offset = run_margin_monte_carlo(small_population, include_sa_offset=True)
        without = run_margin_monte_carlo(small_population, include_sa_offset=False)
        assert np.all(
            with_offset["nondestructive"].min_margin
            <= without["nondestructive"].min_margin + 1e-15
        )

    def test_explicit_reference(self, small_population):
        result = run_margin_monte_carlo(small_population, v_ref=0.5)
        assert result["conventional"].sm0.shape == (small_population.size,)

    def test_rejects_empty_population(self, small_population):
        empty = small_population.subset(np.array([], dtype=int))
        with pytest.raises(ConfigurationError):
            run_margin_monte_carlo(empty)

    def test_fail_mask_and_fraction(self, small_population):
        margins = run_margin_monte_carlo(small_population)["conventional"]
        mask = margins.fail_mask(8e-3)
        assert mask.dtype == bool
        assert margins.fail_fraction(8e-3) == pytest.approx(np.mean(mask))

    def test_min_margin_is_elementwise_min(self, small_population):
        margins = run_margin_monte_carlo(small_population)["destructive"]
        assert np.array_equal(
            margins.min_margin, np.minimum(margins.sm0, margins.sm1)
        )


class TestYieldAnalysis:
    def test_statistics_fields(self, small_population):
        report = analyze_margins(run_margin_monte_carlo(small_population))
        stats = report["nondestructive"]
        assert stats.bits == small_population.size
        assert stats.fail_count == round(stats.fail_fraction * stats.bits)
        assert stats.yield_fraction == pytest.approx(1.0 - stats.fail_fraction)
        assert stats.min_margin <= stats.percentile_1 <= stats.mean_margin

    def test_self_reference_beats_conventional_mean_relative_spread(
        self, small_population
    ):
        report = analyze_margins(run_margin_monte_carlo(small_population))
        conv = report["conventional"]
        dest = report["destructive"]
        # Self-referencing: much higher margin-to-sigma ratio.
        assert dest.sigma_margin > conv.sigma_margin

    def test_best_scheme_returns_known_name(self, small_population):
        report = analyze_margins(run_margin_monte_carlo(small_population))
        assert report.best_scheme() in ("conventional", "destructive", "nondestructive")

    def test_self_reference_wins_under_heavy_variation(self, rng):
        heavy = CellPopulation.sample(2048, VariationModel().scaled(3.0), rng=rng)
        report = analyze_margins(run_margin_monte_carlo(heavy))
        assert report.best_scheme() in ("destructive", "nondestructive")
        assert (
            report["destructive"].yield_fraction
            > report["conventional"].yield_fraction
        )

    def test_sigma_margin_infinite_for_uniform(self, nominal_population):
        report = analyze_margins(
            run_margin_monte_carlo(nominal_population, include_sa_offset=False)
        )
        assert report["destructive"].sigma_margin == float("inf")

    def test_rejects_negative_window(self, small_population):
        with pytest.raises(ConfigurationError):
            analyze_margins(run_margin_monte_carlo(small_population), -1.0)

    def test_tight_window_fails_more(self, small_population):
        mc = run_margin_monte_carlo(small_population)
        loose = analyze_margins(mc, required_margin=1e-3)
        tight = analyze_margins(mc, required_margin=20e-3)
        assert (
            tight["nondestructive"].fail_fraction
            >= loose["nondestructive"].fail_fraction
        )
