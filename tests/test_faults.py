"""Fault models, injector, and the recovery ladder.

Tier logic is pinned with a scripted memory stub (every ladder branch is
reachable deterministically); the fault models and injector are tested
against the real device/array layers, including scalar-vs-vectorized
consistency of injected defects.
"""

import numpy as np
import pytest

from repro.array.array import STTRAMArray
from repro.circuit.sense_amp import SenseAmplifier
from repro.core import NondestructiveSelfReference
from repro.core.batch import materialize_cell
from repro.core.retry import RetryPolicy
from repro.device.variation import CellPopulation
from repro.ecc.array import EccArray, EccReadResult
from repro.ecc.hamming import DecodeStatus
from repro.errors import ConfigurationError, FaultError, RetryExhaustedError
from repro.faults import (
    BitlineNoiseFault,
    FaultInjector,
    FaultKind,
    PowerFailureFault,
    ReadDisturbFault,
    RecoveryController,
    RecoveryTier,
    SenseOffsetDrift,
    StuckOpenFault,
    StuckShortFault,
)
from repro.faults.models import STUCK_TMR_RESIDUAL


class TestFaultModels:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StuckShortFault(rate=-0.1)
        with pytest.raises(ConfigurationError):
            StuckOpenFault(rate=1.5)
        with pytest.raises(ConfigurationError):
            StuckShortFault(rate=0.1, resistance=0.0)
        with pytest.raises(ConfigurationError):
            ReadDisturbFault(rate=2.0)
        with pytest.raises(ConfigurationError):
            SenseOffsetDrift(sigma=-1.0)
        with pytest.raises(ConfigurationError):
            BitlineNoiseFault(sigma=-1.0)
        with pytest.raises(ConfigurationError):
            PowerFailureFault(rate=0.1, phases=())

    def test_stuck_population_and_cell_agree(self):
        """The in-place population defect and the scalar cell defect are
        the same junction: materialized stuck cells match."""
        population = CellPopulation.nominal_population(8)
        fault = StuckShortFault(rate=1.0, resistance=200.0)
        fault.apply_population(population, np.array([False] * 7 + [True]))
        stuck = materialize_cell(population, 7, 1)
        assert stuck.mtj.params.r_low == 200.0
        assert stuck.mtj.params.r_high == pytest.approx(
            200.0 * (1.0 + STUCK_TMR_RESIDUAL)
        )
        healthy = materialize_cell(population, 0, 1)
        assert healthy.mtj.params.r_low != 200.0

    def test_stuck_cell_loses_its_state_dependence(self, paper_cell):
        StuckOpenFault(rate=1.0).apply_cell(paper_cell)
        paper_cell.write(0)
        r0 = paper_cell.mtj.resistance(1e-6)
        paper_cell.write(1)
        r1 = paper_cell.mtj.resistance(1e-6)
        assert r1 / r0 == pytest.approx(1.0, abs=2 * STUCK_TMR_RESIDUAL)

    def test_power_failure_draw(self):
        rng = np.random.default_rng(0)
        never = PowerFailureFault(rate=0.0)
        assert all(never.draw_phase(rng) is None for _ in range(16))
        always = PowerFailureFault(rate=1.0)
        phases = {always.draw_phase(rng) for _ in range(64)}
        assert phases == {"after_erase", "after_second_read", "after_compare"}


class TestFaultInjector:
    def make_population(self, size=256):
        return CellPopulation.nominal_population(size)

    def test_inject_population_matches_fault_map(self):
        population = self.make_population()
        injector = FaultInjector(
            [StuckShortFault(rate=0.05), StuckOpenFault(rate=0.05)],
            np.random.default_rng(1),
        )
        fault_map = injector.inject_population(population)
        short = fault_map.of_kind(FaultKind.STUCK_SHORT)
        openc = fault_map.of_kind(FaultKind.STUCK_OPEN)
        assert short.size > 0 and openc.size > 0
        # The map is ground truth for the mutated arrays (open faults may
        # overwrite bits the short model struck first).
        only_short = np.setdiff1d(short, openc)
        assert (population.r_low0[only_short] == 200.0).all()
        assert (population.r_low0[openc] == 5.0e5).all()
        assert fault_map.count == np.count_nonzero(fault_map.fault_mask)
        assert fault_map.fault_mask[short].all()

    def test_faults_per_word(self):
        population = self.make_population(32)
        injector = FaultInjector([StuckShortFault(rate=0.3)], np.random.default_rng(3))
        fault_map = injector.inject_population(population)
        per_word = fault_map.faults_per_word(8)
        assert per_word.shape == (4,)
        assert per_word.sum() == fault_map.count

    def test_inject_cell(self, paper_cell):
        injector = FaultInjector([StuckShortFault(rate=1.0)], np.random.default_rng(0))
        landed = injector.inject_cell(paper_cell)
        assert landed == (FaultKind.STUCK_SHORT,)
        assert paper_cell.mtj.params.r_low == 200.0

    def test_perturb_scheme_drift_is_quasi_static(self):
        scheme = NondestructiveSelfReference()
        injector = FaultInjector([SenseOffsetDrift(sigma=5e-3)], np.random.default_rng(2))
        first = injector.perturb_scheme(scheme)
        second = injector.perturb_scheme(scheme)
        assert first.sense_amp.offset == second.sense_amp.offset
        assert first.sense_amp.offset != scheme.sense_amp.offset

    def test_perturb_scheme_noise_decorrelates(self):
        scheme = NondestructiveSelfReference()
        injector = FaultInjector([BitlineNoiseFault(sigma=5e-3)], np.random.default_rng(2))
        offsets = {injector.perturb_scheme(scheme).sense_amp.offset for _ in range(4)}
        assert len(offsets) == 4  # fresh sample per operation

    def test_perturb_scheme_without_transients_is_identity(self):
        scheme = NondestructiveSelfReference()
        injector = FaultInjector([StuckShortFault(rate=0.1)], np.random.default_rng(0))
        assert injector.perturb_scheme(scheme) is scheme

    def test_perturb_scheme_requires_sense_amp(self):
        class NoAmp:
            name = "no-amp"

        injector = FaultInjector([BitlineNoiseFault(sigma=1e-3)], np.random.default_rng(0))
        with pytest.raises(FaultError):
            injector.perturb_scheme(NoAmp())

    def test_disturb_states_flips_in_place(self):
        states = np.zeros(512, dtype=np.uint8)
        injector = FaultInjector([ReadDisturbFault(rate=0.1)], np.random.default_rng(5))
        flipped = injector.disturb_states(states)
        assert flipped.size > 0
        assert (states[flipped] == 1).all()
        untouched = np.setdiff1d(np.arange(states.size), flipped)
        assert (states[untouched] == 0).all()

    def test_injection_does_not_consume_the_read_rng(self):
        """The injector owns its randomness: a faulted and a healthy run
        read with identical draw streams."""
        read_rng = np.random.default_rng(9)
        before = read_rng.random()
        population = self.make_population()
        FaultInjector(
            [StuckShortFault(rate=0.1)], np.random.default_rng(1)
        ).inject_population(population)
        assert np.random.default_rng(9).random() == before


def _result(status, value=0xAB, attempts=1, position=-1):
    return EccReadResult(
        value=value, status=status, corrected_position=position, attempts=attempts
    )


class ScriptedMemory:
    """An EccArray stand-in whose per-address read outcomes are scripted —
    every ladder branch becomes deterministically reachable."""

    def __init__(self, scripts, size_words=8):
        self.size_words = size_words
        self.scripts = {a: list(results) for a, results in scripts.items()}
        self.writes = []

    def read_word(self, address, scheme, rng=None, retry_policy=None, **kwargs):
        script = self.scripts.get(address)
        if not script:
            return _result(DecodeStatus.CLEAN)
        return script.pop(0) if len(script) > 1 else script[0]

    def write_word(self, address, value):
        self.writes.append((address, value))


class TestRecoveryLadder:
    def controller(self, scripts, **kwargs):
        return RecoveryController(ScriptedMemory(scripts), **kwargs)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self.controller({}, scrub_rounds=-1)
        with pytest.raises(ConfigurationError):
            self.controller({}, spare_words=-1)
        with pytest.raises(ConfigurationError):
            self.controller({}, spare_words=8)

    def test_clean_retry_and_ecc_tiers(self):
        controller = self.controller({
            1: [_result(DecodeStatus.CLEAN, attempts=3)],
            2: [_result(DecodeStatus.CORRECTED, position=5)],
        })
        assert controller.read_word(0, None).tier is RecoveryTier.CLEAN
        retried = controller.read_word(1, None)
        assert retried.tier is RecoveryTier.RETRY
        assert retried.attempts == 3 and retried.degraded
        assert controller.read_word(2, None).tier is RecoveryTier.ECC
        assert controller.tier_counts[RecoveryTier.CLEAN] == 1
        assert controller.statistics["retry"] == 1
        assert controller.statistics["ecc"] == 1

    def test_scrub_tier_recovers_and_rewrites(self):
        # Detected on the first read, decodes on scrub round 1, and the
        # rewritten word verifies clean: SCRUB tier, no remap.
        controller = self.controller({
            0: [
                _result(DecodeStatus.DETECTED),
                _result(DecodeStatus.CORRECTED, value=0x77),
                _result(DecodeStatus.CLEAN, value=0x77),
            ],
        }, spare_words=2)
        word = controller.read_word(0, None)
        assert word.tier is RecoveryTier.SCRUB
        assert word.value == 0x77
        assert word.rereads == 1
        assert not word.remapped
        assert controller.memory.writes == [(0, 0x77)]
        assert controller.spares_remaining == 2

    def test_repair_tier_migrates_to_spare(self):
        # The rewritten word still verifies dirty — a hard defect lives in
        # those cells — so the controller migrates to a spare word.
        controller = self.controller({
            0: [
                _result(DecodeStatus.DETECTED),
                _result(DecodeStatus.CORRECTED, value=0x42),
                _result(DecodeStatus.CORRECTED, value=0x42),
            ],
        }, spare_words=2)
        word = controller.read_word(0, None)
        assert word.tier is RecoveryTier.REPAIR
        assert word.remapped
        # Spares come from the reserved top words, lowest first.
        assert controller.physical_address(0) == 6
        assert controller.remapped_words == {0: 6}
        assert controller.spares_remaining == 1
        # Rewrite-in-place, then the migration write onto the spare.
        assert controller.memory.writes == [(0, 0x42), (6, 0x42)]
        # Subsequent writes follow the remap.
        controller.write_word(0, 0x43)
        assert controller.memory.writes[-1] == (6, 0x43)

    def test_repair_without_spares_degrades_to_scrub(self):
        controller = self.controller({
            0: [
                _result(DecodeStatus.DETECTED),
                _result(DecodeStatus.CORRECTED, value=0x42),
                _result(DecodeStatus.CORRECTED, value=0x42),
            ],
        }, spare_words=0)
        word = controller.read_word(0, None)
        assert word.tier is RecoveryTier.SCRUB
        assert not word.remapped
        assert controller.physical_address(0) == 0

    def test_exhausted_ladder_raises(self):
        controller = self.controller({
            0: [_result(DecodeStatus.DETECTED, attempts=3)],
        }, scrub_rounds=2)
        with pytest.raises(RetryExhaustedError) as info:
            controller.read_word(0, None)
        assert info.value.address == 0
        assert controller.words_lost == 1
        assert controller.statistics["lost"] == 1
        with pytest.raises(FaultError):
            controller.require_healthy()

    def test_address_bounds_exclude_spares(self):
        controller = self.controller({}, spare_words=2)
        assert controller.size_words == 6
        with pytest.raises(IndexError):
            controller.read_word(6, None)


class TestRecoveryIntegration:
    """The ladder over the real array / ECC / sensing stack."""

    def build(self, spare_words=1):
        population = CellPopulation.nominal_population(72 * 3)
        array = STTRAMArray(population)
        memory = EccArray(array, data_bits=64)
        policy = RetryPolicy(max_attempts=3, current_escalation=0.1)
        controller = RecoveryController(
            memory, policy, scrub_rounds=2, spare_words=spare_words
        )
        return population, array, controller

    def test_stuck_open_bit_lands_on_the_ecc_tier(self):
        population, array, controller = self.build()
        controller.write_word(0, 0xDEADBEEF01020304)
        # Stick a cell whose stored codeword bit is 1: an open junction
        # deterministically reads 0, a single correctable error.
        index = int(np.nonzero(array._states[:72] == 1)[0][0])
        StuckOpenFault(rate=1.0).apply_population(
            population, np.arange(population.size) == index
        )
        scheme = NondestructiveSelfReference()
        word = controller.read_word(0, scheme, np.random.default_rng(0))
        assert word.value == 0xDEADBEEF01020304
        assert word.tier is RecoveryTier.ECC

    def test_double_stuck_word_fails_loudly(self):
        population, array, controller = self.build()
        controller.write_word(0, 0xFFFFFFFFFFFFFFFF)
        ones = np.nonzero(array._states[:72] == 1)[0][:2]
        StuckOpenFault(rate=1.0).apply_population(
            population, np.isin(np.arange(population.size), ones)
        )
        scheme = NondestructiveSelfReference()
        with pytest.raises(RetryExhaustedError):
            controller.read_word(0, scheme, np.random.default_rng(0))
        assert controller.words_lost == 1

    def test_stuck_short_bit_is_retried_and_recovered(self):
        population, array, controller = self.build()
        controller.write_word(1, 0xAAAA5555AAAA5555)
        index = 72 + int(np.nonzero(array._states[72:144] == 1)[0][0])
        StuckShortFault(rate=1.0).apply_population(
            population, np.arange(population.size) == index
        )
        scheme = NondestructiveSelfReference()
        # A shorted junction senses inside the 8 mV window: metastable, so
        # the retry tier burns its budget before the decoder cleans up.
        word = controller.read_word(1, scheme, np.random.default_rng(1))
        assert word.value == 0xAAAA5555AAAA5555
        assert word.degraded
        assert word.attempts == 3
