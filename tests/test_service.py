"""Tests for the repro.service subsystem: engine, workloads, traces,
controller policies, cache, backed mode, reports, and obs metering."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.service import (
    BATCH,
    FCFS,
    READ_PRIORITY,
    ArrayBackend,
    ControllerConfig,
    DiscreteEventEngine,
    LatencyStats,
    MemoryController,
    MMPPArrivals,
    PoissonArrivals,
    ReadCache,
    Request,
    RequestStream,
    ServiceReport,
    UniformAddresses,
    ZipfianAddresses,
    build_backend,
    build_workload,
    find_saturation_rate,
    load_trace,
    publish_report,
    save_trace,
    scheme_service_times,
    simulate_service,
)
from repro.service.workload import WRITE


class TestEngine:
    def test_events_run_in_time_order(self):
        engine = DiscreteEventEngine()
        order = []
        engine.schedule_at(3e-9, order.append, "c")
        engine.schedule_at(1e-9, order.append, "a")
        engine.schedule_at(2e-9, order.append, "b")
        assert engine.run() == 3
        assert order == ["a", "b", "c"]
        assert engine.now == 3e-9
        assert engine.events_processed == 3

    def test_ties_break_by_insertion_order(self):
        engine = DiscreteEventEngine()
        order = []
        for tag in ("first", "second", "third"):
            engine.schedule_at(5e-9, order.append, tag)
        engine.run()
        assert order == ["first", "second", "third"]

    def test_callbacks_can_schedule_more_events(self):
        engine = DiscreteEventEngine()
        seen = []

        def chain(n):
            seen.append(engine.now)
            if n > 0:
                engine.schedule(1e-9, chain, n - 1)

        engine.schedule_at(0.0, chain, 3)
        engine.run()
        assert seen == pytest.approx([0.0, 1e-9, 2e-9, 3e-9])

    def test_past_scheduling_rejected(self):
        engine = DiscreteEventEngine()
        engine.schedule_at(1e-9, lambda: None)
        engine.run()
        with pytest.raises(ConfigurationError):
            engine.schedule_at(0.5e-9, lambda: None)
        with pytest.raises(ConfigurationError):
            engine.schedule(-1e-9, lambda: None)

    def test_run_until_leaves_future_events_pending(self):
        engine = DiscreteEventEngine()
        ran = []
        engine.schedule_at(1e-9, ran.append, 1)
        engine.schedule_at(5e-9, ran.append, 2)
        assert engine.run(until=2e-9) == 1
        assert ran == [1]
        assert engine.pending == 1
        assert engine.run() == 1
        assert ran == [1, 2]

    def test_max_events_bounds_execution(self):
        engine = DiscreteEventEngine()
        for i in range(10):
            engine.schedule_at(i * 1e-9, lambda: None)
        assert engine.run(max_events=4) == 4
        assert engine.pending == 6

    def test_step_on_empty_calendar(self):
        assert DiscreteEventEngine().step() is False


class TestWorkload:
    def test_request_validation(self):
        with pytest.raises(ConfigurationError):
            Request(0, 0.0, 0, op="erase")
        with pytest.raises(ConfigurationError):
            Request(0, -1.0, 0)
        with pytest.raises(ConfigurationError):
            Request(0, 0.0, -1)

    def test_poisson_mean_rate(self):
        arrivals = PoissonArrivals(1e8)
        times = arrivals.arrival_times(20000, np.random.default_rng(1))
        assert np.all(np.diff(times) > 0) or np.all(np.diff(times) >= 0)
        empirical = 20000 / times[-1]
        assert empirical == pytest.approx(1e8, rel=0.05)

    def test_mmpp_is_burstier_than_poisson(self):
        rng = np.random.default_rng(2)
        mmpp = MMPPArrivals(on_rate=4e8, off_rate=0.0, mean_on=1e-6, mean_off=1e-6)
        poisson = PoissonArrivals(2e8)
        gaps_b = np.diff(mmpp.arrival_times(8000, rng))
        gaps_p = np.diff(poisson.arrival_times(8000, np.random.default_rng(2)))
        # Same mean rate, but the ON/OFF process has a far heavier
        # inter-arrival coefficient of variation.
        assert mmpp.mean_rate == pytest.approx(2e8)
        cv_b = np.std(gaps_b) / np.mean(gaps_b)
        cv_p = np.std(gaps_p) / np.mean(gaps_p)
        assert cv_b > 1.5 * cv_p

    def test_mmpp_validation(self):
        with pytest.raises(ConfigurationError):
            MMPPArrivals(on_rate=1e8, off_rate=2e8)
        with pytest.raises(ConfigurationError):
            MMPPArrivals(on_rate=0.0)
        with pytest.raises(ConfigurationError):
            MMPPArrivals(on_rate=1e8, mean_on=0.0)

    def test_zipf_concentrates_on_low_addresses(self):
        zipf = ZipfianAddresses(1024, s=1.2)
        uniform = UniformAddresses(1024)
        rng = np.random.default_rng(3)
        z = zipf.draw(20000, rng)
        u = uniform.draw(20000, np.random.default_rng(3))
        assert np.all(z >= 0) and np.all(z < 1024)
        # Address 0 is the hottest and far above the uniform share.
        hottest = np.mean(z == 0)
        assert hottest > 20 * np.mean(u == 0)
        assert np.mean(z) < np.mean(u)

    def test_write_fraction_mix(self):
        stream = RequestStream(
            PoissonArrivals(1e8), UniformAddresses(256), write_fraction=0.3
        )
        requests = stream.generate(5000, np.random.default_rng(4))
        fraction = sum(not r.is_read for r in requests) / len(requests)
        assert fraction == pytest.approx(0.3, abs=0.03)
        assert [r.request_id for r in requests] == list(range(5000))

    def test_build_workload_kinds(self):
        assert isinstance(build_workload("poisson").arrivals, PoissonArrivals)
        bursty = build_workload("bursty", rate=5e7, burst_ratio=4.0)
        assert isinstance(bursty.arrivals, MMPPArrivals)
        assert bursty.arrivals.mean_rate == pytest.approx(5e7)
        assert isinstance(
            build_workload(addressing="zipfian").addresses, ZipfianAddresses
        )
        with pytest.raises(ConfigurationError):
            build_workload("weekly")
        with pytest.raises(ConfigurationError):
            build_workload(addressing="striped")
        with pytest.raises(ConfigurationError):
            build_workload("bursty", burst_ratio=1.0)

    def test_generate_count_validated(self):
        stream = build_workload()
        with pytest.raises(ConfigurationError):
            stream.generate(0, np.random.default_rng(0))


class TestTrace:
    def test_round_trip_is_exact(self, tmp_path):
        stream = build_workload(rate=7e7, addresses=512, write_fraction=0.2)
        requests = stream.generate(800, np.random.default_rng(5))
        path = tmp_path / "trace.jsonl"
        assert save_trace(path, requests) == 800
        assert load_trace(path) == requests

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": 0, "t": 1e-9, "addr": 3, "op": "read"}\n'
                        '{"id": 1, "addr": 4, "op": "read"}\n')
        with pytest.raises(ConfigurationError, match="line 2"):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"id": 0, "t": 0.0, "addr": 1, "op": "write"}\n\n')
        (request,) = load_trace(path)
        assert request.op == WRITE and request.address == 1


class TestReadCache:
    def test_lru_eviction_order(self):
        cache = ReadCache(2)
        cache.fill(1)
        cache.fill(2)
        assert cache.lookup(1)       # refreshes 1; 2 is now LRU
        cache.fill(3)                # evicts 2
        assert 2 not in cache
        assert 1 in cache and 3 in cache
        assert cache.evictions == 1

    def test_hit_miss_accounting(self):
        cache = ReadCache(4)
        assert not cache.lookup(9)
        cache.fill(9)
        assert cache.lookup(9)
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5
        assert cache.statistics()["lines"] == 1

    def test_invalidate_on_write(self):
        cache = ReadCache(4)
        cache.fill(5, value=123)
        assert cache.peek(5) == 123
        assert cache.invalidate(5)
        assert not cache.invalidate(5)
        assert 5 not in cache

    def test_zero_capacity_disables(self):
        cache = ReadCache(0)
        cache.fill(1)
        assert len(cache) == 0
        assert not cache.lookup(1)
        with pytest.raises(ConfigurationError):
            ReadCache(-1)


def _read(rid, time, address):
    return Request(rid, time, address)


def _write(rid, time, address):
    return Request(rid, time, address, op=WRITE)


def _config(**kw):
    base = dict(read_time=10e-9, write_time=10e-9, banks=1)
    base.update(kw)
    return ControllerConfig(**base)


class TestControllerPolicies:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ControllerConfig(read_time=0.0, write_time=1e-9)
        with pytest.raises(ConfigurationError):
            ControllerConfig(read_time=1e-9, write_time=1e-9, banks=0)
        with pytest.raises(ConfigurationError):
            ControllerConfig(read_time=1e-9, write_time=1e-9, batch_limit=0)
        with pytest.raises(ConfigurationError):
            ControllerConfig(read_time=1e-9, write_time=1e-9,
                             batch_extra_fraction=1.5)
        with pytest.raises(ConfigurationError):
            MemoryController(DiscreteEventEngine(), _config(), policy="lifo")

    def test_bank_interleaving_by_modulo(self):
        requests = [_read(i, i * 1e-9, i) for i in range(8)]
        report = simulate_service(requests, _config(banks=4), policy=FCFS)
        assert report.bank_served == (2, 2, 2, 2)

    def test_fcfs_serves_in_arrival_order(self):
        requests = [
            _read(0, 0.0, 0), _write(1, 1e-9, 0), _read(2, 2e-9, 0),
        ]
        engine = DiscreteEventEngine()
        controller = MemoryController(engine, _config(), policy=FCFS)
        controller.submit_all(requests)
        engine.run()
        finished = [c.request.request_id for c in controller.completions]
        assert finished == [0, 1, 2]

    def test_read_priority_overtakes_buffered_write(self):
        # While request 0 occupies the bank, a write and a later read queue
        # up; read-priority serves the read first, FCFS does not.
        requests = [
            _read(0, 0.0, 0), _write(1, 1e-9, 0), _read(2, 2e-9, 0),
        ]
        engine = DiscreteEventEngine()
        controller = MemoryController(engine, _config(), policy=READ_PRIORITY)
        controller.submit_all(requests)
        engine.run()
        finished = [c.request.request_id for c in controller.completions]
        assert finished == [0, 2, 1]

    def test_write_buffer_depth_bounds_starvation(self):
        # With more pending writes than the buffer holds, the oldest write
        # is forced out ahead of the waiting reads.
        requests = [
            _read(0, 0.0, 0),
            _write(1, 1e-9, 0), _write(2, 2e-9, 0), _read(3, 3e-9, 0),
        ]
        engine = DiscreteEventEngine()
        controller = MemoryController(
            engine, _config(write_buffer_depth=1), policy=READ_PRIORITY
        )
        controller.submit_all(requests)
        engine.run()
        finished = [c.request.request_id for c in controller.completions]
        assert finished[1] == 1  # write 1 forced before read 3

    def test_batch_coalesces_queued_reads(self):
        requests = [_read(0, 0.0, 0)] + [
            _read(i, i * 1e-9, 0) for i in range(1, 5)
        ]
        engine = DiscreteEventEngine()
        controller = MemoryController(
            engine, _config(batch_extra_fraction=0.4), policy=BATCH
        )
        controller.submit_all(requests)
        engine.run()
        group = [c for c in controller.completions if c.request.request_id > 0]
        assert all(c.batched_with == 4 for c in group)
        assert all(c.start == pytest.approx(10e-9) for c in group)
        # 4 coalesced reads: read_time * (1 + 3 * 0.4) = 22 ns.
        assert all(c.finish == pytest.approx(32e-9) for c in group)

    def test_batch_limit_respected(self):
        requests = [_read(0, 0.0, 0)] + [
            _read(i, i * 1e-10, 0) for i in range(1, 8)
        ]
        engine = DiscreteEventEngine()
        controller = MemoryController(
            engine, _config(batch_limit=3), policy=BATCH
        )
        controller.submit_all(requests)
        engine.run()
        sizes = sorted({c.batched_with for c in controller.completions})
        assert max(sizes) == 3

    def test_cache_hit_bypasses_bank(self):
        requests = [_read(0, 0.0, 7), _read(1, 50e-9, 7)]
        engine = DiscreteEventEngine()
        cache = ReadCache(16)
        controller = MemoryController(
            engine, _config(cache_hit_time=1e-9), policy=FCFS, cache=cache
        )
        controller.submit_all(requests)
        engine.run()
        by_id = {c.request.request_id: c for c in controller.completions}
        assert not by_id[0].cache_hit
        assert by_id[1].cache_hit
        assert by_id[1].latency == pytest.approx(1e-9)
        assert sum(controller.bank_served_counts()) == 1

    def test_write_invalidates_cached_line(self):
        requests = [
            _read(0, 0.0, 7), _write(1, 50e-9, 7), _read(2, 100e-9, 7),
        ]
        engine = DiscreteEventEngine()
        cache = ReadCache(16)
        controller = MemoryController(engine, _config(), policy=FCFS, cache=cache)
        controller.submit_all(requests)
        engine.run()
        by_id = {c.request.request_id: c for c in controller.completions}
        assert not by_id[2].cache_hit  # the write dropped the line
        assert cache.invalidations == 1

    def test_empty_request_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_service([], _config())


class TestBackedMode:
    def test_backed_reads_run_the_recovery_ladder(self):
        backend, policy = build_backend("nondestructive", seed=9,
                                        bits=4096, fault_rate=1e-3)
        requests = build_workload(
            rate=3e7, addresses=backend.size_words, write_fraction=0.05
        ).generate(300, np.random.default_rng((9, 10)))
        report = simulate_service(
            requests, _config(banks=4), policy=READ_PRIORITY,
            backend=backend, retry_policy=policy,
        )
        assert report.completed == 300
        assert backend.reads + backend.writes == 300
        # The injected faults force at least one retried word, and every
        # word either recovered or failed loudly — nothing escaped.
        assert report.retried_words > 0
        assert report.corrupted_words == 0

    def test_retries_stretch_the_service_time(self):
        backend, policy = build_backend("nondestructive", seed=9,
                                        bits=4096, fault_rate=1e-3)
        requests = [_read(i, i * 200e-9, i) for i in range(backend.size_words)]
        report = simulate_service(
            requests, _config(banks=1), policy=FCFS,
            backend=backend, retry_policy=policy,
        )
        # Unloaded requests: anything above read_time means attempts > 1
        # extended the occupancy (extra pass + simulated backoff).
        assert report.retried_words > 0
        assert report.read_latency.max > 10e-9

    def test_payload_is_deterministic(self):
        assert ArrayBackend.payload(7) == ArrayBackend.payload(7)
        assert ArrayBackend.payload(7) != ArrayBackend.payload(8)
        assert ArrayBackend.payload(7, data_bits=8) < 256


class TestReports:
    def test_latency_stats_percentiles(self):
        samples = np.arange(1, 1001, dtype=float)
        stats = LatencyStats.from_samples(samples)
        assert stats.count == 1000
        assert stats.mean == pytest.approx(500.5)
        assert stats.p50 == pytest.approx(500.5)
        assert stats.p99 == pytest.approx(990.01)
        assert stats.max == 1000.0
        empty = LatencyStats.from_samples([])
        assert empty.count == 0 and empty.mean == 0.0

    def test_live_and_replayed_runs_compare_equal(self, tmp_path):
        stream = build_workload(rate=6e7, addresses=256, write_fraction=0.1)
        requests = stream.generate(600, np.random.default_rng(11))
        path = tmp_path / "trace.jsonl"
        save_trace(path, requests)
        config = _config(banks=4)
        live = simulate_service(requests, config, policy=BATCH,
                                scheme="nondestructive", offered_rate=6e7)
        replay = simulate_service(load_trace(path), config, policy=BATCH,
                                  scheme="nondestructive", offered_rate=6e7)
        assert isinstance(live, ServiceReport)
        assert live == replay

    def test_report_totals_reconcile(self):
        stream = build_workload(rate=5e7, addresses=128, write_fraction=0.25)
        requests = stream.generate(400, np.random.default_rng(12))
        report = simulate_service(requests, _config(banks=4))
        assert report.requests == 400
        assert report.completed == 400
        assert report.reads + report.writes == 400
        assert sum(report.bank_served) == 400
        assert report.throughput > 0
        assert report.duration >= max(r.time for r in requests)
        assert report.read_latency.p999 >= report.read_latency.p99 > 0

    def test_find_saturation_rate_brackets_the_knee(self):
        config = _config(banks=4)

        def sim(rate):
            stream = build_workload(rate=rate, addresses=512)
            requests = stream.generate(800, np.random.default_rng(13))
            return simulate_service(requests, config, offered_rate=rate)

        knee = find_saturation_rate(sim, low=1e7, high=1e9,
                                    read_time=config.read_time)
        # 4 banks x 10 ns reads: capacity is 4e8; the knee must sit below
        # capacity but well above the trivially light load.
        assert 5e7 < knee < 4e8
        assert sim(knee).read_latency.mean <= 4.0 * config.read_time

    def test_find_saturation_rate_validation(self):
        with pytest.raises(ConfigurationError):
            find_saturation_rate(lambda r: None, low=0.0, high=1.0,
                                 read_time=1e-9)
        with pytest.raises(ConfigurationError):
            find_saturation_rate(lambda r: None, low=2.0, high=1.0,
                                 read_time=1e-9)


class TestSaturationSearch:
    """Corner cases of find_saturation_rate beyond the happy-path knee."""

    @staticmethod
    def _always_fast(calls):
        def sim(rate):
            calls.append(rate)
            return SimpleNamespace(read_latency=SimpleNamespace(mean=0.0))
        return sim

    def test_never_saturating_stops_after_max_expansions(self):
        # low=1, high=2, three doublings: 2 -> 4 -> 8, then give up and
        # report the last sustained low without probing 16.
        calls = []
        knee = find_saturation_rate(
            self._always_fast(calls), low=1.0, high=2.0, read_time=1e-9,
            max_expansions=3,
        )
        assert knee == 8.0
        assert calls == [1.0, 2.0, 4.0, 8.0]

    def test_inverted_and_degenerate_bounds_are_rejected(self):
        for low, high in ((2.0, 1.0), (1.0, 1.0), (0.0, 1.0), (-1.0, 1.0)):
            with pytest.raises(ConfigurationError):
                find_saturation_rate(self._always_fast([]), low=low,
                                     high=high, read_time=1e-9)
        with pytest.raises(ConfigurationError):
            find_saturation_rate(self._always_fast([]), low=1.0, high=2.0,
                                 read_time=0.0)

    def test_single_bank_knee_is_below_bank_capacity(self):
        config = _config(banks=1)

        def sim(rate):
            stream = build_workload(rate=rate, addresses=256)
            requests = stream.generate(600, np.random.default_rng(21))
            return simulate_service(requests, config, offered_rate=rate)

        knee = find_saturation_rate(sim, low=5e6, high=2e8,
                                    read_time=config.read_time)
        # One bank of 10 ns reads caps at 1e8 req/s; a Poisson stream
        # saturates it well before that but far above the light-load floor.
        assert 1e7 < knee < 1e8

    def test_backed_batched_knee_is_sustained(self):
        backend, retry = build_backend("nondestructive", 77, bits=2304)
        read_time, write_time = scheme_service_times("nondestructive")
        config = ControllerConfig(read_time=read_time,
                                  write_time=write_time, banks=2)

        def sim(rate):
            stream = build_workload(rate=rate, addresses=32)
            requests = stream.generate(200, np.random.default_rng(22))
            return simulate_service(
                requests, config, backend=backend, retry_policy=retry,
                scheme="nondestructive", offered_rate=rate,
            )

        knee = find_saturation_rate(sim, low=1e6, high=4e8,
                                    read_time=read_time)
        assert knee > 1e6
        assert sim(knee).read_latency.mean <= 4.0 * read_time


class TestServiceObservability:
    def test_controller_meters_requests_and_latency(self):
        stream = build_workload(rate=5e7, addresses=64, write_fraction=0.2)
        requests = stream.generate(300, np.random.default_rng(14))
        with obs.capture() as (registry, _):
            report = simulate_service(requests, _config(banks=2),
                                      policy=READ_PRIORITY,
                                      cache=ReadCache(32))
            publish_report(report)
            assert registry.counter("service.requests", op="read") == report.reads
            assert registry.counter("service.completions", op="read") == report.reads
            assert registry.counter("service.completions", op="write") == report.writes
            # Cache hits are latencies too: every completed read lands in
            # the histogram.
            hist = registry.histogram("service.latency_ns", op="read")
            assert hist["count"] == report.reads
            assert registry.counter("service.cache.hits") == report.cache_hits
            depth = registry.histogram("service.queue_depth")
            assert depth["count"] > 0
            gauge = registry.gauge("service.throughput_rps",
                                   scheme="untyped", policy=READ_PRIORITY)
            assert gauge == pytest.approx(report.throughput)

    def test_unmetered_run_is_bit_identical(self):
        stream = build_workload(rate=5e7, addresses=64)
        requests = stream.generate(300, np.random.default_rng(15))
        plain = simulate_service(requests, _config(banks=2))
        with obs.capture():
            metered = simulate_service(requests, _config(banks=2))
        assert plain == metered
        assert not obs.active()


class TestSchemeServiceTimes:
    def test_paper_latencies(self):
        read_d, write_d = scheme_service_times("destructive")
        read_n, write_n = scheme_service_times("nondestructive")
        assert read_d == pytest.approx(27e-9, rel=0.05)
        assert read_n == pytest.approx(12.6e-9, rel=0.05)
        assert read_d / read_n > 2.0
        assert write_d == write_n > 0
        with pytest.raises(ConfigurationError):
            scheme_service_times("conventional-ish")
