"""Temperature-derating tests."""

import pytest

from repro.device.mtj import MTJParams
from repro.device.thermal import ThermalModel, derate_params
from repro.errors import ConfigurationError
from repro.units import ROOM_TEMPERATURE


class TestThermalModel:
    def test_room_temperature_identity(self):
        model = ThermalModel()
        assert model.tmr_at(1.05, ROOM_TEMPERATURE) == pytest.approx(1.05)
        assert model.thermal_stability_at(60.0, ROOM_TEMPERATURE) == pytest.approx(60.0)

    def test_tmr_decreases_with_temperature(self):
        model = ThermalModel()
        assert model.tmr_at(1.05, 350.0) < 1.05

    def test_tmr_clamped_nonnegative(self):
        model = ThermalModel(tmr_temp_coefficient=0.1)
        assert model.tmr_at(1.0, 400.0) == 0.0

    def test_thermal_stability_shrinks(self):
        model = ThermalModel()
        assert model.thermal_stability_at(60.0, 400.0) < 60.0

    def test_rejects_negative_coefficients(self):
        with pytest.raises(ConfigurationError):
            ThermalModel(tmr_temp_coefficient=-1e-3)

    def test_rejects_nonpositive_temperature(self):
        with pytest.raises(ConfigurationError):
            ThermalModel().thermal_stability_at(60.0, 0.0)


class TestDerating:
    def test_room_temperature_roundtrip(self):
        params = MTJParams()
        derated = derate_params(params, ROOM_TEMPERATURE)
        assert derated.r_low == pytest.approx(params.r_low)
        assert derated.r_high == pytest.approx(params.r_high)

    def test_hot_device_loses_tmr(self):
        params = MTJParams()
        hot = derate_params(params, 360.0)
        assert hot.tmr < params.tmr
        assert hot.r_low > params.r_low  # small positive coefficient

    def test_rolloff_scales_with_split(self):
        params = MTJParams()
        hot = derate_params(params, 360.0)
        ratio = (hot.r_high - hot.r_low) / (params.r_high - params.r_low)
        assert hot.dr_high_max == pytest.approx(params.dr_high_max * ratio)

    def test_thermal_stability_derated(self):
        params = MTJParams()
        hot = derate_params(params, 360.0)
        assert hot.thermal_stability < params.thermal_stability

    def test_collapse_raises(self):
        params = MTJParams()
        model = ThermalModel(tmr_temp_coefficient=0.05)
        with pytest.raises(ConfigurationError):
            derate_params(params, 400.0, model)

    def test_rejects_nonpositive_temperature(self):
        with pytest.raises(ConfigurationError):
            derate_params(MTJParams(), -10.0)

    def test_cold_device_gains_margin(self):
        params = MTJParams()
        cold = derate_params(params, 250.0)
        assert cold.tmr > params.tmr
        assert cold.thermal_stability > params.thermal_stability
