"""Smoke tests: every example script runs end-to-end and prints its
headline conclusions."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    """Import the example module fresh and run its main()."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "ZERO write pulses" in out
        assert "[OK ]" in out
        assert "FAIL" not in out.replace("[OK ]", "")

    def test_yield_analysis(self, capsys):
        out = run_example("yield_analysis", capsys)
        assert "self-reference all-pass = True" in out
        assert "nondestructive" in out

    def test_design_space_exploration(self, capsys):
        out = run_example("design_space_exploration", capsys)
        assert "optimal β" in out
        assert "read disturb" in out.lower() or "disturb" in out

    def test_power_failure_reliability(self, capsys):
        out = run_example("power_failure_reliability", capsys)
        assert "cannot lose data" in out
        assert "corrupted words" in out

    def test_read_timing_waveforms(self, capsys):
        out = run_example("read_timing_waveforms", capsys)
        assert "sensed bit: 1" in out
        assert "speedup" in out

    def test_first_principles_device(self, capsys):
        out = run_example("first_principles_device", capsys)
        assert "emerges directly" in out
        assert "0.00%" in out  # nonlinear circuit matches the device model

    def test_write_dynamics(self, capsys):
        out = run_example("write_dynamics", capsys)
        assert "Sun scaling" in out

    def test_memory_controller(self, capsys):
        out = run_example("memory_controller", capsys)
        assert "recovered message" in out
        assert "uncorrectable=0" in out

    def test_production_yield(self, capsys):
        out = run_example("production_yield", capsys)
        assert "yield" in out
        assert "SATURATED" in out or "ns" in out
