"""Documentation stays true: link integrity and API.md drift.

Two classes of doc rot are caught here instead of in review:

* **broken links/anchors** — every relative link and ``#fragment`` in the
  user-facing markdown resolves (``tools/check_markdown_links.py``, the
  same checker CI runs);
* **API.md drift** — every symbol named in the first column of an API.md
  layer table is actually importable from the package root that section
  documents (this is how the missing ``TESTCHIP_VARIATION`` export was
  found), and — the reverse direction — every public
  ``repro.service.__all__`` export is named somewhere in the service
  sections, so new exports cannot ship undocumented.
"""

import importlib
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]

#: The user-facing markdown surface (what the CI docs job checks).
DOC_FILES = sorted(
    [REPO / "README.md", REPO / "EXPERIMENTS.md", REPO / "DESIGN.md"]
    + list((REPO / "docs").glob("*.md"))
)

_SECTION_RE = re.compile(r"^##+ .*\(`(repro[\w.]*)`\)")
_CHUNK_RE = re.compile(r"`([^`]+)`")
_LEADING_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.]*")


def api_md_symbols():
    """Yield (module_name, dotted_symbol) for every checkable API.md cell."""
    module = None
    for line in (REPO / "docs" / "API.md").read_text().splitlines():
        match = _SECTION_RE.match(line)
        if match:
            module = match.group(1)
            continue
        if line.startswith("## "):  # section without a module (CLI, Conventions)
            module = None
        if module is None or not line.startswith("| "):
            continue
        first_cell = line.split("|")[1]
        for chunk in _CHUNK_RE.findall(first_cell):
            chunk = chunk.replace("​", "")  # zero-width line-break hints
            if "*" in chunk:  # wildcard shorthand (`optimize_beta_*`, ...)
                continue
            leading = _LEADING_RE.match(chunk)
            if leading is None or leading.group(0) == "symbol":
                continue
            yield module, leading.group(0).rstrip(".")


class TestMarkdownLinks:
    def test_all_doc_files_exist(self):
        assert DOC_FILES, "doc file glob came up empty"
        for path in DOC_FILES:
            assert path.is_file(), path

    def test_no_broken_links_or_anchors(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_markdown_links.py")]
            + [str(p) for p in DOC_FILES],
            cwd=REPO,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestApiReferenceDrift:
    def test_catalog_is_nonempty(self):
        symbols = list(api_md_symbols())
        # The reference documents well over a hundred symbols; a collapse
        # here means the parser (or the doc structure) broke.
        assert len(symbols) > 100

    @pytest.mark.parametrize(
        "module_name,symbol",
        sorted(set(api_md_symbols())),
        ids=lambda value: str(value),
    )
    def test_documented_symbol_is_importable(self, module_name, symbol):
        obj = importlib.import_module(module_name)
        for part in symbol.split("."):
            assert hasattr(obj, part), (
                f"docs/API.md documents `{symbol}` under `{module_name}`, "
                f"but {obj!r} has no attribute {part!r}"
            )
            obj = getattr(obj, part)


def section_tokens(section_module):
    """Every identifier in backticks inside API.md's sections documenting
    ``section_module`` (tables and prose alike)."""
    module = None
    tokens = set()
    for line in (REPO / "docs" / "API.md").read_text().splitlines():
        match = _SECTION_RE.match(line)
        if match:
            module = match.group(1)
        elif line.startswith("## "):
            module = None
        if module != section_module:
            continue
        for chunk in _CHUNK_RE.findall(line):
            tokens.update(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", chunk))
    return tokens


def service_section_tokens():
    return section_tokens("repro.service")


class TestServiceSectionCompleteness:
    """The reverse drift direction: code → doc.

    ``repro.service`` is where exports have historically outrun the
    reference (the adaptive and topology layers each added a dozen), so
    every name in its ``__all__`` must appear in API.md's service
    sections — adding an export without documenting it fails here.
    """

    @pytest.mark.parametrize(
        "name",
        sorted(importlib.import_module("repro.service").__all__),
    )
    def test_every_service_export_is_documented(self, name):
        assert name in service_section_tokens(), (
            f"repro.service exports `{name}` but docs/API.md's service "
            f"section never mentions it — add it to the reference table"
        )


class TestProdtestSectionCompleteness:
    """Code → doc drift for the production-test subsystem: every public
    ``repro.prodtest`` export must appear in API.md's prodtest section,
    and PRODTEST.md must name the load-bearing surface it documents."""

    @pytest.mark.parametrize(
        "name",
        sorted(importlib.import_module("repro.prodtest").__all__),
    )
    def test_every_prodtest_export_is_documented(self, name):
        assert name in section_tokens("repro.prodtest"), (
            f"repro.prodtest exports `{name}` but docs/API.md's prodtest "
            f"section never mentions it — add it to the reference table"
        )

    @pytest.mark.parametrize(
        "name",
        sorted(importlib.import_module("repro.streams").__all__),
    )
    def test_every_streams_export_is_documented(self, name):
        assert name in section_tokens("repro.streams"), (
            f"repro.streams exports `{name}` but docs/API.md's streams "
            f"section never mentions it"
        )

    def test_prodtest_doc_names_the_surface(self):
        text = (REPO / "docs" / "PRODTEST.md").read_text()
        for needle in (
            "MARCH_TESTS",
            "march-1t1j",
            "DISTURB_THRESHOLD",
            "run_march_test",
            "characterize_dies",
            "knob_bounds",
            "build_wafer",
            "run_wafer",
            "provision_ecc",
            "compare_schemes",
            "publish_wafer_report",
            "(seed, 8)",
            "BENCH_prodtest.json",
            "repro prodtest --dies 256 --check",
        ):
            assert needle in text, needle


class TestResilienceDocDrift:
    """The drift contract extended to the resilience modules.

    The class/function exports of ``repro.service.failures`` and
    ``repro.service.journal`` must flow through ``repro.service.__all__``
    (so :class:`TestServiceSectionCompleteness` forces them into API.md),
    and RESILIENCE.md must name the load-bearing surface it documents.
    """

    @pytest.mark.parametrize(
        "module_name", ["repro.service.failures", "repro.service.journal"]
    )
    def test_resilience_exports_reach_the_package_root(self, module_name):
        module = importlib.import_module(module_name)
        service = importlib.import_module("repro.service")
        missing = [
            name
            for name in module.__all__
            # Scenario-name string constants stay module-level detail;
            # classes and callables are the documented API surface.
            if not name.isupper() or name in ("FAILURE_KINDS", "CHAOS_SCENARIOS")
            if name not in service.__all__
        ]
        assert not missing, (
            f"{module_name} exports {missing} but repro.service does not "
            f"re-export them — they would escape the API.md drift test"
        )

    def test_resilience_doc_names_the_surface(self):
        text = (REPO / "docs" / "RESILIENCE.md").read_text()
        for needle in (
            "FailureScenario",
            "build_failure_scenario",
            "install_failures",
            "split_with_failover",
            "WriteAheadJournal",
            "run_crash_restart",
            "run_chaos_campaign",
            "(seed, 7)",
            "requests == completed + shed + timed_out + failed_requests",
        ):
            assert needle in text, needle


class TestObsSurface:
    def test_all_public_obs_symbols_resolve(self):
        obs = importlib.import_module("repro.obs")
        for name in obs.__all__:
            assert getattr(obs, name, None) is not None, name

    def test_top_level_reexports_obs(self):
        repro = importlib.import_module("repro")
        assert "obs" in repro.__all__
        assert repro.obs is importlib.import_module("repro.obs")

    def test_observability_doc_names_real_metrics(self):
        # Spot-check the catalog's load-bearing names against the code so
        # the doc can't silently drift from the instrumentation.
        text = (REPO / "docs" / "OBSERVABILITY.md").read_text()
        for needle in (
            "core.reads.batch",
            "campaign.words",
            "recovery.words",
            "retry.attempts",
            "faults.injected_cells",
            "timing.read_latency_ns",
            "read_issued",
            "fault_injected",
            "service.failures.events",
            "service.hedged",
            "service.availability",
            "service.topology.failover.unreachable",
        ):
            assert needle in text, needle
