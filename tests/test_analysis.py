"""Analysis-layer tests: figure series, table rows, report rendering."""

import numpy as np
import pytest

from repro.analysis.figures import (
    fig2_ri_curve,
    fig6_beta_sweep,
    fig7_rtr_sweep,
    fig8_alpha_sweep,
)
from repro.analysis.report import format_table, render_series
from repro.analysis.tables import table1_rows, table2_rows
from repro.calibration import calibrated_device


class TestFig2:
    def test_series_shapes(self, calibration):
        series = fig2_ri_curve(calibration.device(), points=32)
        assert series.currents.shape == (32,)
        assert series.r_high.shape == (32,)

    def test_tmr_collapse_substantial(self, calibration):
        # The high state loses a large share of its TMR at I_max — the
        # physical effect the scheme exploits (paper Fig. 2).
        series = fig2_ri_curve(calibration.device())
        assert series.tmr_collapse > 0.2

    def test_hysteresis_included(self, calibration):
        series = fig2_ri_curve(calibration.device())
        assert len(series.hysteresis.switch_points) >= 2


class TestFig6:
    def test_crossings_match_calibration(self, paper_cell, calibration):
        series = fig6_beta_sweep(paper_cell)
        assert series.crossing_destructive() == pytest.approx(
            calibration.beta_destructive, abs=0.01
        )
        assert series.crossing_nondestructive() == pytest.approx(
            calibration.beta_nondestructive, abs=0.01
        )

    def test_margin_monotonicity(self, paper_cell):
        series = fig6_beta_sweep(paper_cell)
        assert np.all(np.diff(series.sm0_destructive) > 0)
        assert np.all(np.diff(series.sm1_destructive) < 0)
        assert np.all(np.diff(series.sm0_nondestructive) > 0)
        assert np.all(np.diff(series.sm1_nondestructive) < 0)

    def test_windows_ordered(self, paper_cell):
        series = fig6_beta_sweep(paper_cell)
        assert series.window_destructive[0] < series.window_destructive[1]
        assert series.window_nondestructive[0] < series.window_nondestructive[1]

    def test_custom_beta_grid(self, paper_cell):
        grid = np.linspace(1.1, 2.5, 10)
        series = fig6_beta_sweep(paper_cell, betas=grid)
        assert np.array_equal(series.betas, grid)

    def test_no_crossing_raises(self, paper_cell):
        grid = np.linspace(1.05, 1.1, 5)  # destructive optimum not inside
        series = fig6_beta_sweep(paper_cell, betas=grid)
        with pytest.raises(ValueError):
            series.crossing_destructive()


class TestFig7:
    def test_linear_in_shift(self, paper_cell, calibration):
        series = fig7_rtr_sweep(
            paper_cell, calibration.beta_destructive, calibration.beta_nondestructive
        )
        # Second differences vanish: exactly linear.
        assert np.allclose(np.diff(series.sm0_nondestructive, 2), 0.0, atol=1e-12)

    def test_windows_inside_sweep(self, paper_cell, calibration):
        series = fig7_rtr_sweep(
            paper_cell, calibration.beta_destructive, calibration.beta_nondestructive
        )
        low, high = series.window_nondestructive
        assert series.shifts[0] < low < high < series.shifts[-1]

    def test_slopes_opposite(self, paper_cell, calibration):
        series = fig7_rtr_sweep(
            paper_cell, calibration.beta_destructive, calibration.beta_nondestructive
        )
        assert series.sm0_destructive[0] > series.sm0_destructive[-1]
        assert series.sm1_destructive[0] < series.sm1_destructive[-1]


class TestFig8:
    def test_window_edges_are_zero_crossings(self, paper_cell, calibration):
        series = fig8_alpha_sweep(paper_cell, calibration.beta_nondestructive)
        low, high = series.window
        sm1_at_high = np.interp(high, series.deviations, series.sm1)
        sm0_at_low = np.interp(low, series.deviations, series.sm0)
        assert sm1_at_high == pytest.approx(0.0, abs=1e-5)
        assert sm0_at_low == pytest.approx(0.0, abs=1e-5)

    def test_sm1_decreasing_in_alpha(self, paper_cell, calibration):
        series = fig8_alpha_sweep(paper_cell, calibration.beta_nondestructive)
        assert np.all(np.diff(series.sm1) < 0)
        assert np.all(np.diff(series.sm0) > 0)


class TestTables:
    def test_table1_has_core_rows(self):
        rows = table1_rows()
        labels = [row[0] for row in rows]
        assert "R_H (I→0)" in labels
        assert "β (nondestructive)" in labels
        assert all(len(row) == 3 for row in rows)

    def test_table1_reproduced_matches_paper_anchors(self):
        rows = {row[0]: row for row in table1_rows()}
        assert rows["R_H (I→0)"][1] == rows["R_H (I→0)"][2]
        assert rows["R_TR"][1] == rows["R_TR"][2]

    def test_table2_rows(self, paper_cell):
        rows = table2_rows(cell=paper_cell)
        labels = [row[0] for row in rows]
        assert "Δα window (nondestructive)" in labels
        assert ("Δα window (destructive)", "N/A", "N/A") in rows


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_format_table_content(self):
        text = format_table(["x"], [["hello"]])
        assert "hello" in text
        assert "x" in text

    def test_render_series_downsamples(self):
        x = np.linspace(0, 1, 100)
        text = render_series(x, {"y": x**2}, "x", max_rows=5)
        # Header + separator + at most 6 data rows (5 + final point).
        assert len(text.splitlines()) <= 9

    def test_render_series_scaling(self):
        x = np.array([0.0, 1.0])
        text = render_series(x, {"y": np.array([0.0, 0.0121])}, "x", y_scale=1e3)
        assert "12.1" in text
