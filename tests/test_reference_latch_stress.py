"""Tests for the reference-column generator, regenerative latch, and
read-stress campaign."""

import math

import numpy as np
import pytest

from repro.array.array import STTRAMArray
from repro.array.stress import run_read_stress
from repro.circuit.latch import RegenerativeLatch
from repro.core.destructive import DestructiveSelfReference
from repro.core.nondestructive import NondestructiveSelfReference
from repro.core.reference import build_reference_column, sample_reference_errors
from repro.device.switching import SwitchingModel
from repro.device.variation import CellPopulation, VariationModel
from repro.errors import ConfigurationError


class TestReferenceColumn:
    def test_variation_free_reference_is_ideal(self, nominal_population, rng):
        column = build_reference_column(nominal_population, pairs=2, i_read=200e-6, rng=rng)
        assert column.error == pytest.approx(0.0, abs=1e-12)

    def test_error_shrinks_with_averaging(self, rng, calibration):
        variation = VariationModel(sigma_vref=0.0)
        population = CellPopulation.sample(
            8192, variation,
            params=calibration.params,
            rolloff_high=calibration.rolloff_high(),
            rolloff_low=calibration.rolloff_low(),
            rng=rng,
        )
        few = sample_reference_errors(
            variation, pairs=1, columns=128, rng=rng, population=population
        )
        many = sample_reference_errors(
            variation, pairs=16, columns=128, rng=rng, population=population
        )
        assert np.std(many) < np.std(few) / 2  # ~1/sqrt(16) ideally

    def test_error_scale_grounds_sigma_vref(self, rng, calibration):
        # With the test chip's MTJ variation and a single reference pair
        # per column, the reference error sigma lands in the tens of mV —
        # the physical origin of TESTCHIP_VARIATION.sigma_vref = 25 mV.
        from repro.array.testchip import TESTCHIP_VARIATION

        population = CellPopulation.sample(
            8192, TESTCHIP_VARIATION,
            params=calibration.params,
            rolloff_high=calibration.rolloff_high(),
            rolloff_low=calibration.rolloff_low(),
            rng=rng,
        )
        errors = sample_reference_errors(
            TESTCHIP_VARIATION, pairs=1, columns=256, rng=rng, population=population
        )
        assert 10e-3 < np.std(errors) < 50e-3

    def test_mean_error_near_zero(self, rng, small_population):
        errors = sample_reference_errors(
            VariationModel(), pairs=4, columns=64, rng=rng,
            population=small_population,
        )
        assert abs(np.mean(errors)) < 3 * np.std(errors) / math.sqrt(64) + 1e-3

    def test_rejects_invalid(self, rng, small_population):
        with pytest.raises(ConfigurationError):
            build_reference_column(small_population, pairs=0, i_read=200e-6, rng=rng)
        with pytest.raises(ConfigurationError):
            build_reference_column(
                small_population, pairs=small_population.size, i_read=200e-6, rng=rng
            )
        with pytest.raises(ConfigurationError):
            sample_reference_errors(VariationModel(), pairs=2, columns=0, rng=rng)


class TestRegenerativeLatch:
    def test_resolution_shrinks_exponentially(self):
        latch = RegenerativeLatch(regeneration_tau=100e-12, logic_swing=1.0)
        w1 = latch.resolution_window(1e-9)
        w2 = latch.resolution_window(2e-9)
        assert w2 / w1 == pytest.approx(math.exp(-10.0), rel=1e-6)

    def test_paper_window_from_sense_phase(self):
        # ~8 mV at a 0.5 ns budget: τ ≈ 0.5ns / ln(1/0.008) ≈ 104 ps — the
        # paper's 8 mV window is consistent with a 1.5 ns SenEn phase
        # including setup overheads.
        latch = RegenerativeLatch(regeneration_tau=104e-12, logic_swing=1.0)
        assert latch.resolution_window(0.5e-9) == pytest.approx(8e-3, rel=0.05)

    def test_resolve_time_inverse(self):
        latch = RegenerativeLatch()
        differential = 5e-3
        t = latch.resolve_time(differential)
        assert latch.resolution_window(t) == pytest.approx(differential, rel=1e-9)

    def test_resolve_time_edge_cases(self):
        latch = RegenerativeLatch(logic_swing=1.0)
        assert latch.resolve_time(0.0) == math.inf
        assert latch.resolve_time(2.0) == 0.0

    def test_resolves_within(self):
        latch = RegenerativeLatch(regeneration_tau=100e-12)
        assert latch.resolves_within(12e-3, 1.5e-9)
        assert not latch.resolves_within(1e-9, 0.1e-9)

    def test_metastability_probability_decreases_with_time(self):
        latch = RegenerativeLatch()
        p_short = latch.metastability_probability(10e-3, 0.2e-9)
        p_long = latch.metastability_probability(10e-3, 2e-9)
        assert p_long < p_short

    def test_metastability_bounds(self):
        latch = RegenerativeLatch()
        p = latch.metastability_probability(10e-3, 1e-9)
        assert 0.0 <= p <= 1.0

    def test_required_sense_time_margin(self):
        latch = RegenerativeLatch()
        base = latch.required_sense_time(5e-3, margin=1.0)
        padded = latch.required_sense_time(5e-3, margin=2.0)
        assert padded == pytest.approx(2 * base)

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            RegenerativeLatch(regeneration_tau=0.0)
        with pytest.raises(ConfigurationError):
            RegenerativeLatch(logic_swing=-1.0)
        latch = RegenerativeLatch()
        with pytest.raises(ConfigurationError):
            latch.resolution_window(-1.0)
        with pytest.raises(ConfigurationError):
            latch.metastability_probability(0.0, 1e-9)
        with pytest.raises(ConfigurationError):
            latch.required_sense_time(5e-3, margin=0.5)


class TestReadStress:
    @pytest.fixture
    def array(self, rng, calibration):
        population = CellPopulation.sample(
            128,
            VariationModel(sigma_alpha_frac=0.0, sigma_beta_frac=0.0),
            params=calibration.params,
            rolloff_high=calibration.rolloff_high(),
            rolloff_low=calibration.rolloff_low(),
            rng=rng,
        )
        return STTRAMArray(population)

    def test_nondestructive_stress_is_clean(self, array, rng, calibration):
        scheme = NondestructiveSelfReference(beta=calibration.beta_nondestructive)
        report = run_read_stress(array, scheme, reads=300, rng=rng)
        assert report.misreads == 0
        assert report.corruptions == 0
        assert report.final_data_intact

    def test_destructive_with_solid_writes_is_clean(self, array, rng, calibration):
        scheme = DestructiveSelfReference(beta=calibration.beta_destructive)
        report = run_read_stress(array, scheme, reads=200, rng=rng)
        assert report.corruptions == 0
        assert report.final_data_intact

    def test_destructive_with_weak_writes_corrupts(self, array, rng, calibration):
        # A write driver at ~1.02x I_c0: per-pulse WER is tens of percent,
        # so a few hundred destructive reads corrupt stored data.
        scheme = DestructiveSelfReference(
            beta=calibration.beta_destructive, write_overdrive=1.02
        )
        report = run_read_stress(array, scheme, reads=300, rng=rng)
        assert report.corruptions > 0
        assert not report.final_data_intact

    def test_rejects_bad_reads(self, array, rng, calibration):
        scheme = NondestructiveSelfReference(beta=calibration.beta_nondestructive)
        with pytest.raises(ConfigurationError):
            run_read_stress(array, scheme, reads=0, rng=rng)
