"""Timing, latency, energy and reliability tests (paper §V, Figs. 9–10)."""

import numpy as np
import pytest

from repro.timing.energy import read_energy_comparison, scheme_read_energy
from repro.timing.latency import (
    TimingConfig,
    destructive_read_latency,
    latency_comparison,
    nondestructive_read_latency,
)
from repro.timing.phases import destructive_schedule, nondestructive_schedule
from repro.timing.reliability import (
    PowerFailureModel,
    data_loss_probability_per_read,
    expected_data_loss_rate,
    vulnerability_window,
)
from repro.errors import ConfigurationError


def make_nondestructive_schedule():
    return nondestructive_schedule(
        i_read1=94e-6, i_read2=200e-6,
        t_wordline=2e-9, t_first_read=6e-9, t_second_read=2e-9,
        t_sense=1.5e-9, t_latch=1e-9,
    )


class TestPhaseSchedule:
    def test_total_duration(self):
        schedule = make_nondestructive_schedule()
        assert schedule.total_duration == pytest.approx(12.5e-9)

    def test_phase_lookup(self):
        schedule = make_nondestructive_schedule()
        assert schedule.phase("first_read").read_current == pytest.approx(94e-6)
        assert schedule.start_of("second_read") == pytest.approx(8e-9)
        assert schedule.end_of("second_read") == pytest.approx(10e-9)

    def test_unknown_phase(self):
        schedule = make_nondestructive_schedule()
        with pytest.raises(KeyError):
            schedule.phase("erase")
        with pytest.raises(KeyError):
            schedule.start_of("erase")

    def test_signal_intervals_fig9(self):
        # Fig. 9: SLT1 during the first read, SLT2 spanning second read and
        # sense, SenEn only during sense.
        schedule = make_nondestructive_schedule()
        assert schedule.signal_intervals("SLT1") == [(pytest.approx(2e-9), pytest.approx(8e-9))]
        (slt2_interval,) = schedule.signal_intervals("SLT2")
        assert slt2_interval[0] == pytest.approx(8e-9)
        assert slt2_interval[1] == pytest.approx(11.5e-9)
        (sen_interval,) = schedule.signal_intervals("SenEn")
        assert sen_interval == (pytest.approx(10e-9), pytest.approx(11.5e-9))

    def test_destructive_has_write_phases(self):
        schedule = destructive_schedule(
            i_read1=164e-6, i_read2=200e-6, i_write=750e-6,
            t_wordline=2e-9, t_first_read=6e-9, t_erase=5e-9,
            t_second_read=6e-9, t_sense=1.5e-9, t_latch=1e-9, t_write_back=5e-9,
        )
        assert schedule.phase("erase").write_current == pytest.approx(750e-6)
        assert schedule.phase("write_back").write_current == pytest.approx(-750e-6)

    def test_negative_duration_rejected(self):
        from repro.timing.phases import Phase

        with pytest.raises(ConfigurationError):
            Phase("bad", -1e-9)


class TestLatency:
    def test_nondestructive_about_15ns(self, paper_cell, calibration):
        breakdown = nondestructive_read_latency(
            paper_cell, beta=calibration.beta_nondestructive
        )
        # Paper: "the whole read operation can complete in about 15ns".
        assert 8e-9 < breakdown.total < 20e-9

    def test_destructive_much_slower(self, paper_cell, calibration):
        d, n, speedup = latency_comparison(
            paper_cell,
            beta_destructive=calibration.beta_destructive,
            beta_nondestructive=calibration.beta_nondestructive,
        )
        assert speedup > 1.5
        assert d.total > n.total

    def test_second_read_faster_than_first(self, paper_cell, calibration):
        # §V: the divider does not load the bit line, so the 2nd read is
        # faster than a capacitor-sampled read.
        breakdown = nondestructive_read_latency(
            paper_cell, beta=calibration.beta_nondestructive
        )
        assert breakdown.phase_duration("second_read") < breakdown.phase_duration(
            "first_read"
        )

    def test_destructive_second_read_slower_than_nondestructive(
        self, paper_cell, calibration
    ):
        d = destructive_read_latency(paper_cell, beta=calibration.beta_destructive)
        n = nondestructive_read_latency(
            paper_cell, beta=calibration.beta_nondestructive
        )
        assert d.phase_duration("second_read") > n.phase_duration("second_read")

    def test_write_phases_include_pulse_width(self, paper_cell):
        breakdown = destructive_read_latency(paper_cell)
        assert breakdown.phase_duration("erase") >= 4e-9

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TimingConfig(settle_tolerance=0.0)


class TestEnergy:
    def test_destructive_dominated_by_writes(self, paper_cell, calibration):
        d, n, ratio = read_energy_comparison(
            paper_cell,
            beta_destructive=calibration.beta_destructive,
            beta_nondestructive=calibration.beta_nondestructive,
        )
        assert d.write_energy > 0.8 * d.total
        assert n.write_energy == 0.0
        assert ratio > 5.0

    def test_energy_positive_per_phase(self, paper_cell):
        breakdown = scheme_read_energy(
            paper_cell, nondestructive_read_latency(paper_cell)
        )
        read_phases = {"first_read", "second_read", "sense"}
        for name, energy in breakdown.per_phase.items():
            if name in read_phases:
                assert energy > 0.0
            else:
                assert energy == 0.0

    def test_read_energy_matches_i2rt(self, paper_cell):
        breakdown = nondestructive_read_latency(paper_cell, beta=2.0)
        energy = scheme_read_energy(paper_cell, breakdown)
        phase = breakdown.schedule.phase("second_read")
        from repro.device.mtj import MTJState

        expected = (
            phase.read_current**2
            * paper_cell.series_resistance(phase.read_current, MTJState.ANTIPARALLEL)
            * phase.duration
        )
        assert energy.per_phase["second_read"] == pytest.approx(expected)


class TestReliability:
    def test_nondestructive_has_no_vulnerability(self, paper_cell):
        breakdown = nondestructive_read_latency(paper_cell)
        assert vulnerability_window(breakdown) == 0.0
        assert data_loss_probability_per_read(breakdown, PowerFailureModel(1.0)) == 0.0

    def test_destructive_window_spans_erase_to_writeback(self, paper_cell):
        breakdown = destructive_read_latency(paper_cell)
        window = vulnerability_window(breakdown)
        schedule = breakdown.schedule
        expected = schedule.end_of("write_back") - schedule.start_of("erase")
        assert window == pytest.approx(expected)
        assert window > 10e-9

    def test_loss_probability_linear_in_rate(self, paper_cell):
        breakdown = destructive_read_latency(paper_cell)
        p1 = data_loss_probability_per_read(breakdown, PowerFailureModel(1e-3))
        p2 = data_loss_probability_per_read(breakdown, PowerFailureModel(2e-3))
        assert p2 == pytest.approx(2 * p1, rel=1e-6)

    def test_expected_loss_rate(self, paper_cell):
        breakdown = destructive_read_latency(paper_cell)
        model = PowerFailureModel(1e-5)
        rate = expected_data_loss_rate(breakdown, model, reads_per_second=1e8)
        assert rate == pytest.approx(
            1e8 * data_loss_probability_per_read(breakdown, model)
        )

    def test_rejects_negative_inputs(self, paper_cell):
        with pytest.raises(ConfigurationError):
            PowerFailureModel(-1.0)
        breakdown = destructive_read_latency(paper_cell)
        with pytest.raises(ConfigurationError):
            expected_data_loss_rate(breakdown, PowerFailureModel(), -1.0)
