"""Unit-helper tests."""

import math

import pytest

from repro.units import (
    BOLTZMANN,
    ROOM_TEMPERATURE,
    angstrom,
    ff,
    format_si,
    kohm,
    ma,
    mohm,
    mv,
    nm,
    ns,
    pf,
    ps,
    ua,
)


def test_current_conversions():
    assert ua(200) == pytest.approx(200e-6)
    assert ma(1.5) == pytest.approx(1.5e-3)


def test_voltage_and_time_conversions():
    assert mv(76.6) == pytest.approx(0.0766)
    assert ns(4) == pytest.approx(4e-9)
    assert ps(250) == pytest.approx(2.5e-10)


def test_capacitance_conversions():
    assert ff(50) == pytest.approx(50e-15)
    assert pf(1.2) == pytest.approx(1.2e-12)


def test_resistance_conversions():
    assert kohm(2.5) == pytest.approx(2500.0)
    assert mohm(20) == pytest.approx(20e6)


def test_length_conversions():
    assert nm(90) == pytest.approx(90e-9)
    assert angstrom(14) == pytest.approx(1.4e-9)


def test_constants():
    assert BOLTZMANN == pytest.approx(1.380649e-23)
    assert ROOM_TEMPERATURE == 300.0


def test_format_si_engineering_prefixes():
    assert format_si(200e-6, "A") == "200 µA"
    assert format_si(2500.0, "Ω") == "2.5 kΩ"
    assert format_si(76.6e-3, "V") == "76.6 mV"
    assert format_si(20e6, "Ω") == "20 MΩ"
    assert format_si(4e-9, "s") == "4 ns"


def test_format_si_edge_cases():
    assert format_si(0.0, "V") == "0 V"
    assert format_si(float("nan"), "V") == "nan V"
    assert format_si(float("inf"), "V") == "inf V"
    assert format_si(float("-inf"), "V") == "-inf V"


def test_format_si_negative_values():
    assert format_si(-130.0, "Ω") == "-130 Ω"


def test_format_si_digits():
    assert format_si(76.64e-3, "V", digits=4) == "76.64 mV"
