"""R–I sweep tests (paper Fig. 2 machinery)."""

import numpy as np
import pytest

from repro.device.mtj import MTJDevice, MTJState
from repro.device.ri_curve import hysteresis_sweep, static_ri_curve


class TestStaticCurve:
    def test_default_grid(self):
        currents, r_high, r_low = static_ri_curve(MTJDevice())
        assert len(currents) == 64
        assert currents[0] == 0.0
        assert currents[-1] == pytest.approx(200e-6)

    def test_branches_ordered(self):
        _, r_high, r_low = static_ri_curve(MTJDevice())
        assert np.all(r_high > r_low)

    def test_high_branch_steeper(self):
        _, r_high, r_low = static_ri_curve(MTJDevice())
        drop_high = r_high[0] - r_high[-1]
        drop_low = r_low[0] - r_low[-1]
        assert drop_high > 3 * drop_low

    def test_custom_currents(self):
        grid = np.array([0.0, 100e-6])
        currents, r_high, _ = static_ri_curve(MTJDevice(), grid)
        assert np.array_equal(currents, grid)
        assert len(r_high) == 2


class TestHysteresis:
    def test_antiparallel_start_switches_three_times(self):
        # Starting anti-parallel: the initial up-leg flips at +I_c, the
        # down-leg flips back at -I_c, the return leg flips again at +I_c.
        sweep = hysteresis_sweep(MTJDevice(state=MTJState.ANTIPARALLEL))
        assert len(sweep.switch_points) == 3

    def test_parallel_start_switches_twice(self):
        # Starting parallel, the initial up-leg is in the favourable state
        # already; only the down and return legs switch.
        sweep = hysteresis_sweep(MTJDevice(state=MTJState.PARALLEL))
        assert len(sweep.switch_points) == 2

    def test_positive_leg_switches_to_parallel(self):
        device = MTJDevice(state=MTJState.ANTIPARALLEL)
        sweep = hysteresis_sweep(device)
        first_switch = sweep.switch_points[0]
        assert sweep.currents[first_switch] > 0
        assert sweep.states[first_switch] is MTJState.PARALLEL

    def test_negative_leg_switches_back(self):
        sweep = hysteresis_sweep(MTJDevice(state=MTJState.ANTIPARALLEL))
        second_switch = sweep.switch_points[1]
        assert sweep.currents[second_switch] < 0
        assert sweep.states[second_switch] is MTJState.ANTIPARALLEL

    def test_switch_occurs_near_critical_current(self):
        device = MTJDevice(state=MTJState.ANTIPARALLEL)
        sweep = hysteresis_sweep(device)
        switch_current = sweep.currents[sweep.switch_points[0]]
        assert switch_current == pytest.approx(device.params.i_c0, rel=0.15)

    def test_original_device_untouched(self):
        device = MTJDevice(state=MTJState.ANTIPARALLEL)
        hysteresis_sweep(device)
        assert device.state is MTJState.ANTIPARALLEL

    def test_resistance_consistent_with_state(self):
        device = MTJDevice(state=MTJState.ANTIPARALLEL)
        sweep = hysteresis_sweep(device)
        for index in (0, len(sweep.currents) - 1):
            expected = device.resistance(
                sweep.currents[index], sweep.states[index]
            )
            assert sweep.resistance[index] == pytest.approx(expected)

    def test_custom_peak_current(self):
        device = MTJDevice(state=MTJState.ANTIPARALLEL)
        # Peak below the critical current: no switching at all.
        sweep = hysteresis_sweep(device, i_peak=0.5 * device.params.i_c0)
        assert sweep.switch_points == []
