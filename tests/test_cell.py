"""1T1J cell tests."""

import pytest

from repro.circuit.bitline import PAPER_BITLINE
from repro.core.cell import Cell1T1J
from repro.device.mtj import MTJDevice, MTJState
from repro.device.transistor import FixedResistanceTransistor


@pytest.fixture
def cell():
    return Cell1T1J(MTJDevice(), FixedResistanceTransistor(917.0))


class TestState:
    def test_default_stored_bit(self, cell):
        assert cell.stored_bit == 0

    def test_write(self, cell):
        cell.write(1)
        assert cell.stored_bit == 1
        assert cell.state is MTJState.ANTIPARALLEL

    def test_state_setter(self, cell):
        cell.state = MTJState.ANTIPARALLEL
        assert cell.mtj.state is MTJState.ANTIPARALLEL


class TestElectrical:
    def test_series_resistance(self, cell):
        r = cell.series_resistance(0.0, MTJState.ANTIPARALLEL)
        assert r == pytest.approx(2500.0 + 917.0)

    def test_series_resistance_uses_stored_state(self, cell):
        cell.write(1)
        assert cell.series_resistance(0.0) == pytest.approx(3417.0)

    def test_bitline_voltage_eq1(self, cell):
        # Paper Eq. 1: V_BL = I (R_MTJ(I) + R_TR).
        current = 200e-6
        r_mtj = cell.mtj.resistance(current, MTJState.PARALLEL)
        assert cell.bitline_voltage(current, MTJState.PARALLEL) == pytest.approx(
            current * (r_mtj + 917.0)
        )

    def test_high_state_voltage_larger(self, cell):
        current = 100e-6
        v_high = cell.bitline_voltage(current, MTJState.ANTIPARALLEL)
        v_low = cell.bitline_voltage(current, MTJState.PARALLEL)
        assert v_high > v_low

    def test_bitline_leakage_reduces_voltage(self):
        bare = Cell1T1J(MTJDevice(), FixedResistanceTransistor(917.0))
        leaky = Cell1T1J(
            MTJDevice(), FixedResistanceTransistor(917.0), bitline=PAPER_BITLINE
        )
        current = 200e-6
        assert leaky.bitline_voltage(current) < bare.bitline_voltage(current)

    def test_leakage_effect_is_small(self):
        leaky = Cell1T1J(
            MTJDevice(), FixedResistanceTransistor(917.0), bitline=PAPER_BITLINE
        )
        current = 200e-6
        bare_v = current * leaky.series_resistance(current)
        assert leaky.bitline_voltage(current) == pytest.approx(bare_v, rel=1e-3)


class TestCopy:
    def test_copy_independent_state(self, cell):
        clone = cell.copy()
        clone.write(1)
        assert cell.stored_bit == 0

    def test_copy_shares_electrical_model(self, cell):
        clone = cell.copy()
        assert clone.series_resistance(0.0, MTJState.PARALLEL) == cell.series_resistance(
            0.0, MTJState.PARALLEL
        )

    def test_repr(self, cell):
        assert "bit=0" in repr(cell)
