"""Access-transistor model tests."""

import numpy as np
import pytest

from repro.device.transistor import (
    FixedResistanceTransistor,
    LinearRegionTransistor,
    PAPER_TRANSISTOR,
)
from repro.errors import ConfigurationError


class TestFixedResistance:
    def test_paper_value(self):
        assert PAPER_TRANSISTOR.resistance(100e-6) == pytest.approx(917.0)

    def test_current_independent(self):
        t = FixedResistanceTransistor(917.0)
        assert t.resistance(1e-6) == t.resistance(200e-6)

    def test_shift(self):
        t = FixedResistanceTransistor(917.0, shift=130.0)
        assert t.resistance(0.0) == pytest.approx(1047.0)

    def test_shifted_returns_copy(self):
        base = FixedResistanceTransistor(917.0)
        shifted = base.shifted(-100.0)
        assert shifted.resistance(0.0) == pytest.approx(817.0)
        assert base.resistance(0.0) == pytest.approx(917.0)

    def test_vectorized(self):
        t = FixedResistanceTransistor(917.0)
        out = t.resistance(np.array([1e-6, 2e-6, 3e-6]))
        assert out.shape == (3,)
        assert np.all(out == 917.0)

    def test_voltage(self):
        t = FixedResistanceTransistor(1000.0)
        assert t.voltage(100e-6) == pytest.approx(0.1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            FixedResistanceTransistor(0.0)
        with pytest.raises(ConfigurationError):
            FixedResistanceTransistor(100.0, shift=-200.0)

    def test_repr(self):
        assert "917" in repr(FixedResistanceTransistor(917.0))


class TestLinearRegion:
    def test_zero_current_resistance(self):
        t = LinearRegionTransistor(r_zero=900.0, v_overdrive=0.9)
        assert t.resistance(0.0) == pytest.approx(900.0)

    def test_resistance_rises_with_current(self):
        t = LinearRegionTransistor(r_zero=900.0, v_overdrive=0.9)
        r_small = t.resistance(50e-6)
        r_large = t.resistance(200e-6)
        assert r_large > r_small > 900.0

    def test_consistency_with_triode_equation(self):
        t = LinearRegionTransistor(r_zero=900.0, v_overdrive=0.9)
        current = 150e-6
        r = t.resistance(current)
        v_ds = current * r
        k = 1.0 / (t.r_zero * t.v_overdrive)
        reconstructed = k * (t.v_overdrive * v_ds - 0.5 * v_ds**2)
        assert reconstructed == pytest.approx(current, rel=1e-9)

    def test_clamps_at_saturation(self):
        t = LinearRegionTransistor(r_zero=900.0, v_overdrive=0.9)
        i_sat = 0.5 * t.v_overdrive / t.r_zero
        # Far above saturation: resistance clamps instead of going complex.
        r = t.resistance(10 * i_sat)
        assert np.isfinite(r)

    def test_shift_between_reads_is_positive(self):
        t = LinearRegionTransistor(r_zero=900.0, v_overdrive=0.9)
        # The larger second-read current sees the larger resistance, so the
        # first-read-relative shift is negative.
        shift = t.shift_between(200e-6 / 2.13, 200e-6)
        assert shift < 0.0

    def test_small_shift_at_paper_currents(self):
        # The paper treats ΔR_TR as a small perturbation; check the physical
        # model stays within the nondestructive scheme's ±130 Ω window.
        t = LinearRegionTransistor(r_zero=900.0, v_overdrive=0.9)
        shift = abs(t.shift_between(200e-6 / 2.13, 200e-6))
        assert shift < 130.0

    def test_vectorized(self):
        t = LinearRegionTransistor()
        out = t.resistance(np.linspace(0, 200e-6, 7))
        assert out.shape == (7,)
        assert np.all(np.diff(out) >= 0)

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            LinearRegionTransistor(r_zero=0.0)
        with pytest.raises(ConfigurationError):
            LinearRegionTransistor(v_overdrive=0.0)
