"""Hamming SECDED codec and ECC yield-model tests."""

import itertools

import numpy as np
import pytest

from repro.array.montecarlo import run_margin_monte_carlo
from repro.device.variation import CellPopulation, VariationModel
from repro.ecc.hamming import DecodeStatus, HammingSECDED
from repro.ecc.yield_model import ecc_yield_report, word_failure_probability
from repro.errors import ConfigurationError


class TestCodecConstruction:
    def test_72_64_code(self):
        code = HammingSECDED(64)
        assert code.parity_bits == 7
        assert code.codeword_bits == 72

    def test_small_codes(self):
        assert HammingSECDED(4).codeword_bits == 8   # (8, 4) extended Hamming
        assert HammingSECDED(11).codeword_bits == 16  # (16, 11)

    def test_overhead(self):
        assert HammingSECDED(64).overhead == pytest.approx(8 / 64)

    def test_rejects_invalid_width(self):
        with pytest.raises(ConfigurationError):
            HammingSECDED(0)


class TestRoundTrip:
    @pytest.mark.parametrize("k", [4, 8, 16, 64])
    def test_clean_roundtrip(self, k, rng):
        code = HammingSECDED(k)
        for _ in range(8):
            data = rng.integers(0, 2, k).astype(np.uint8)
            result = code.decode(code.encode(data))
            assert result.status is DecodeStatus.CLEAN
            assert np.array_equal(result.data, data)

    def test_word_roundtrip(self):
        code = HammingSECDED(16)
        for value in (0, 1, 0xBEEF, 0xFFFF):
            decoded, status = code.decode_word(code.encode_word(value))
            assert decoded == value
            assert status is DecodeStatus.CLEAN

    def test_rejects_wrong_shapes(self):
        code = HammingSECDED(8)
        with pytest.raises(ConfigurationError):
            code.encode([0, 1])
        with pytest.raises(ConfigurationError):
            code.decode([0] * 5)
        with pytest.raises(ConfigurationError):
            code.encode([0, 1, 2, 0, 0, 0, 0, 0])
        with pytest.raises(ConfigurationError):
            code.encode_word(1 << 8)


class TestErrorHandling:
    def test_corrects_every_single_flip(self, rng):
        code = HammingSECDED(16)
        data = rng.integers(0, 2, 16).astype(np.uint8)
        codeword = code.encode(data)
        for position in range(code.codeword_bits):
            corrupted = codeword.copy()
            corrupted[position] ^= 1
            result = code.decode(corrupted)
            assert result.status is DecodeStatus.CORRECTED
            assert np.array_equal(result.data, data), f"flip at {position}"

    def test_detects_every_double_flip_on_small_code(self, rng):
        code = HammingSECDED(4)
        data = np.array([1, 0, 1, 1], dtype=np.uint8)
        codeword = code.encode(data)
        for a, b in itertools.combinations(range(code.codeword_bits), 2):
            corrupted = codeword.copy()
            corrupted[a] ^= 1
            corrupted[b] ^= 1
            result = code.decode(corrupted)
            assert result.status is DecodeStatus.DETECTED, f"flips at {a},{b}"

    def test_detects_double_flips_on_72_64(self, rng):
        code = HammingSECDED(64)
        data = rng.integers(0, 2, 64).astype(np.uint8)
        codeword = code.encode(data)
        for _ in range(64):
            a, b = rng.choice(code.codeword_bits, size=2, replace=False)
            corrupted = codeword.copy()
            corrupted[a] ^= 1
            corrupted[b] ^= 1
            assert code.decode(corrupted).status is DecodeStatus.DETECTED


class TestWordFailureProbability:
    def test_zero_bit_failures(self):
        assert word_failure_probability(0.0, 72) == 0.0

    def test_no_ecc_is_any_failure(self):
        p = 0.01
        expected = 1.0 - (1.0 - p) ** 72
        assert word_failure_probability(p, 72, correctable=0) == pytest.approx(expected)

    def test_secded_needs_two_failures(self):
        p = 1e-3
        raw = word_failure_probability(p, 72, correctable=0)
        ecc = word_failure_probability(p, 72, correctable=1)
        # SECDED gain is roughly 2/(n·p) for small p.
        assert ecc < raw * 72 * p

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            word_failure_probability(1.5, 72)
        with pytest.raises(ConfigurationError):
            word_failure_probability(0.1, 0)
        with pytest.raises(ConfigurationError):
            word_failure_probability(0.1, 72, correctable=-1)


class TestEccYieldReport:
    @pytest.fixture
    def heavy_mc(self, rng):
        from repro.array.testchip import TESTCHIP_VARIATION
        from repro.calibration import calibrate

        calibration = calibrate()
        population = CellPopulation.sample(
            16 * 72 * 8,
            TESTCHIP_VARIATION.scaled(1.5),
            params=calibration.params,
            rolloff_high=calibration.rolloff_high(),
            rolloff_low=calibration.rolloff_low(),
            rng=rng,
        )
        return run_margin_monte_carlo(
            population,
            beta_destructive=calibration.beta_destructive,
            beta_nondestructive=calibration.beta_nondestructive,
            include_sa_offset=False,
        )

    def test_report_structure(self, heavy_mc):
        report = ecc_yield_report(heavy_mc, word_cells=72)
        assert set(report.raw_word_fail) == {
            "conventional",
            "destructive",
            "nondestructive",
        }
        for name in report.raw_word_fail:
            assert report.secded_word_fail[name] <= report.raw_word_fail[name]

    def test_secded_rescues_nondestructive_tail(self, heavy_mc):
        # At 1.5× the test-chip variation the nondestructive scheme has a
        # ~0.2% bit-fail tail; SECDED turns the resulting double-digit word
        # fail rate into well under 1% — the architectural companion the
        # low-margin scheme needs.
        report = ecc_yield_report(heavy_mc, word_cells=72)
        assert report.raw_word_fail["nondestructive"] > 0.05
        assert report.secded_word_fail["nondestructive"] < 0.02
        assert report.improvement("nondestructive") > 5.0

    def test_secded_cannot_save_conventional_at_this_variation(self, heavy_mc):
        # Conventional sensing fails ~9% of bits here: with ~6.5 expected
        # failures per 72-bit word, single-error correction is hopeless.
        report = ecc_yield_report(heavy_mc, word_cells=72)
        assert report.raw_word_fail["conventional"] > 0.9
        assert report.secded_word_fail["conventional"] > 0.9

    def test_word_too_large_rejected(self, heavy_mc):
        with pytest.raises(ConfigurationError):
            ecc_yield_report(heavy_mc, word_cells=10**6)

    def test_rejects_bad_word_size(self, heavy_mc):
        with pytest.raises(ConfigurationError):
            ecc_yield_report(heavy_mc, word_cells=0)
