"""R–I characteristic sweeps (reproduction of paper Fig. 2).

The paper's Fig. 2 shows the measured static R–I curve of a 90 nm × 180 nm
MgO MTJ under 4 ns voltage pulses: two resistance branches (high/low) whose
resistance decreases with sensing current — the high branch much faster —
with switching events closing the hysteresis loop at the critical currents.

:func:`static_ri_curve` returns the two branches over a read-current range;
:func:`hysteresis_sweep` performs a quasi-static full loop including the
switching transitions.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.device.mtj import MTJDevice, MTJState
from repro.device.switching import SwitchingModel

__all__ = ["RISweep", "static_ri_curve", "hysteresis_sweep"]


@dataclasses.dataclass(frozen=True)
class RISweep:
    """Result of an R–I sweep.

    Attributes
    ----------
    currents:
        Signed sweep currents [A].
    resistance:
        Device resistance at each sweep point [Ω].
    states:
        Magnetization state at each point (after any switching).
    """

    currents: np.ndarray
    resistance: np.ndarray
    states: List[MTJState]

    @property
    def switch_points(self) -> List[int]:
        """Indices where the state changed relative to the previous point."""
        return [
            i
            for i in range(1, len(self.states))
            if self.states[i] is not self.states[i - 1]
        ]


def static_ri_curve(device: MTJDevice, currents=None):
    """Both resistance branches versus read current, no switching.

    Parameters
    ----------
    device:
        The MTJ to characterize.
    currents:
        Read currents [A]; defaults to 64 points from 0 to ``i_read_max``.

    Returns
    -------
    (currents, r_high, r_low):
        Arrays of the anti-parallel and parallel branch resistances.
    """
    if currents is None:
        currents = np.linspace(0.0, device.params.i_read_max, 64)
    currents = np.asarray(currents, dtype=float)
    r_high = device.resistance(currents, MTJState.ANTIPARALLEL)
    r_low = device.resistance(currents, MTJState.PARALLEL)
    return currents, np.asarray(r_high), np.asarray(r_low)


def hysteresis_sweep(
    device: MTJDevice,
    switching: Optional[SwitchingModel] = None,
    i_peak: Optional[float] = None,
    points_per_leg: int = 128,
    pulse_width: Optional[float] = None,
) -> RISweep:
    """Quasi-static full hysteresis loop 0 → +I → −I → +I.

    Positive current favours anti-parallel → parallel (per paper Fig. 1/2
    sign convention), so the loop switches high→low on the positive leg and
    low→high on the negative leg.  Switching is evaluated deterministically
    (probability ≥ 0.5) point by point, emulating a pulsed measurement.

    The sweep mutates a *copy* of the device; the caller's device state is
    untouched.
    """
    params = device.params
    if switching is None:
        switching = SwitchingModel(params)
    if i_peak is None:
        i_peak = 1.4 * params.i_c0
    if pulse_width is None:
        pulse_width = params.pulse_width_write

    up = np.linspace(0.0, i_peak, points_per_leg)
    down = np.linspace(i_peak, -i_peak, 2 * points_per_leg)
    back = np.linspace(-i_peak, i_peak, 2 * points_per_leg)
    sweep_currents = np.concatenate([up, down[1:], back[1:]])

    probe = device.copy()
    resistances = np.empty_like(sweep_currents)
    states: List[MTJState] = []
    for index, current in enumerate(sweep_currents):
        switching.apply_pulse(probe, float(current), pulse_width, rng=None)
        resistances[index] = probe.resistance(current)
        states.append(probe.state)
    return RISweep(sweep_currents, resistances, states)
