"""Retention and disturb-accumulation analysis.

Extends the single-pulse switching model to lifetime questions the paper's
reliability argument implies:

* **retention** — probability a stored bit survives a bake time with no
  current applied (Néel–Brown);
* **read-disturb accumulation** — a workload performs billions of reads;
  each read pulse contributes a tiny flip probability, and the *cumulative*
  bit-error rate over a device lifetime is the real design constraint
  behind the paper's "I_max = 40% of switching current" choice;
* **disturb budget** — the largest read current at which N reads stay
  under a target error probability.
"""

from __future__ import annotations

import dataclasses
import math

from repro.device.mtj import MTJParams
from repro.device.switching import SwitchingModel
from repro.errors import ConfigurationError

__all__ = ["RetentionAnalysis", "SECONDS_PER_YEAR"]

SECONDS_PER_YEAR = 3.15576e7


@dataclasses.dataclass(frozen=True)
class RetentionAnalysis:
    """Lifetime retention/disturb calculator for one MTJ design.

    Attributes
    ----------
    params:
        The junction (supplies Δ, τ0, I_c0).
    read_pulse_width:
        Duration of one read's current exposure [s].
    """

    params: MTJParams
    read_pulse_width: float = 15e-9

    def __post_init__(self) -> None:
        if self.read_pulse_width <= 0.0:
            raise ConfigurationError("read_pulse_width must be positive")

    def _model(self) -> SwitchingModel:
        return SwitchingModel(self.params)

    # ------------------------------------------------------------------
    # Retention (no current)
    # ------------------------------------------------------------------
    def retention_failure_probability(self, bake_time: float) -> float:
        """P(bit flips) after ``bake_time`` seconds with no current."""
        if bake_time < 0.0:
            raise ConfigurationError("bake_time must be non-negative")
        if bake_time == 0.0:
            return 0.0
        return float(self._model().switch_probability(0.0, bake_time))

    def retention_time(self, target_probability: float = 1e-9) -> float:
        """Bake time at which the flip probability reaches the target [s].

        Inverting ``P = 1 - exp(-t/τ)`` with ``τ = τ0 exp(Δ)``.
        """
        if not 0.0 < target_probability < 1.0:
            raise ConfigurationError("target_probability must be in (0, 1)")
        tau = self.params.attempt_time * math.exp(self.params.thermal_stability)
        return -tau * math.log(1.0 - target_probability)

    def thermal_stability_for_retention(
        self, years: float = 10.0, target_probability: float = 1e-9
    ) -> float:
        """The Δ needed so a bit survives ``years`` with the target flip
        probability — the standard retention sizing rule."""
        if years <= 0.0:
            raise ConfigurationError("years must be positive")
        if not 0.0 < target_probability < 1.0:
            raise ConfigurationError("target_probability must be in (0, 1)")
        seconds = years * SECONDS_PER_YEAR
        # P = 1 - exp(-t / (τ0 e^Δ))  =>  Δ = ln(t / (τ0 · -ln(1-P))).
        return math.log(seconds / (self.params.attempt_time * -math.log1p(-target_probability)))

    # ------------------------------------------------------------------
    # Read-disturb accumulation
    # ------------------------------------------------------------------
    def disturb_probability_per_read(self, read_current: float) -> float:
        """Flip probability of a single read pulse at ``read_current``."""
        return float(
            self._model().switch_probability(read_current, self.read_pulse_width)
        )

    def accumulated_disturb_probability(
        self, read_current: float, reads: float
    ) -> float:
        """P(bit has flipped) after ``reads`` read pulses.

        Uses the exact complement product via ``expm1`` so 1e18 reads of a
        1e-30 per-read probability do not round to zero.
        """
        if reads < 0.0:
            raise ConfigurationError("reads must be non-negative")
        p_single = self.disturb_probability_per_read(read_current)
        if p_single >= 1.0:
            return 1.0
        # 1 - (1-p)^N computed stably.
        return float(-math.expm1(reads * math.log1p(-p_single)))

    def max_safe_read_current(
        self,
        reads: float,
        target_probability: float = 1e-9,
        tolerance: float = 1e-3,
    ) -> float:
        """Largest read current keeping ``reads`` reads under the target
        cumulative flip probability (bisection on the monotone accumulator).

        This is the quantitative version of the paper's 40%-of-I_c0 rule.
        """
        if reads <= 0.0:
            raise ConfigurationError("reads must be positive")
        if not 0.0 < target_probability < 1.0:
            raise ConfigurationError("target_probability must be in (0, 1)")
        low, high = 0.0, self.params.i_c0
        if self.accumulated_disturb_probability(high, reads) < target_probability:
            return high
        while (high - low) > tolerance * self.params.i_c0:
            mid = 0.5 * (low + high)
            if self.accumulated_disturb_probability(mid, reads) < target_probability:
                low = mid
            else:
                high = mid
        return low

    def lifetime_reads(self, read_current: float, target_probability: float = 1e-9) -> float:
        """How many reads the bit tolerates at ``read_current`` before the
        cumulative flip probability reaches the target."""
        if not 0.0 < target_probability < 1.0:
            raise ConfigurationError("target_probability must be in (0, 1)")
        p_single = self.disturb_probability_per_read(read_current)
        if p_single <= 0.0:
            return math.inf
        if p_single >= 1.0:
            return 0.0
        return math.log1p(-target_probability) / math.log1p(-p_single)
