"""MTJ and access-transistor device models.

This package is the silicon substitute for the paper's measured devices: a
parametric MgO magnetic-tunnel-junction model with state-dependent
resistance roll-off versus read current (the physical effect the
nondestructive scheme exploits), a spin-torque switching model (used for the
erase/write-back steps of the destructive scheme and for read-disturb
analysis), the NMOS access transistor, and process-variation sampling.
"""

from repro.device.bias import BiasDrivenRollOff, junction_voltage
from repro.device.llg import MacrospinLLG, SwitchingTrajectory
from repro.device.mtj import MTJDevice, MTJParams, MTJState, PAPER_MTJ_PARAMS
from repro.device.retention import RetentionAnalysis
from repro.device.rolloff import (
    PowerLawRollOff,
    RationalRollOff,
    RollOffModel,
    TabulatedRollOff,
)
from repro.device.ri_curve import RISweep, hysteresis_sweep, static_ri_curve
from repro.device.switching import SwitchingModel
from repro.device.thermal import ThermalModel, derate_params
from repro.device.transistor import (
    AccessTransistor,
    FixedResistanceTransistor,
    LinearRegionTransistor,
    PAPER_TRANSISTOR,
)
from repro.device.variation import CellPopulation, VariationModel
from repro.device.veriloga import export_veriloga

__all__ = [
    "BiasDrivenRollOff",
    "junction_voltage",
    "MacrospinLLG",
    "SwitchingTrajectory",
    "RetentionAnalysis",
    "MTJDevice",
    "MTJParams",
    "MTJState",
    "PAPER_MTJ_PARAMS",
    "RollOffModel",
    "PowerLawRollOff",
    "RationalRollOff",
    "TabulatedRollOff",
    "RISweep",
    "static_ri_curve",
    "hysteresis_sweep",
    "SwitchingModel",
    "ThermalModel",
    "derate_params",
    "AccessTransistor",
    "FixedResistanceTransistor",
    "LinearRegionTransistor",
    "PAPER_TRANSISTOR",
    "VariationModel",
    "CellPopulation",
    "export_veriloga",
]
