"""Resistance roll-off models: how much of the maximum resistance drop an MTJ
state exhibits at a given read current.

The nondestructive self-reference scheme of the paper rests entirely on the
observation (paper Fig. 2) that the *anti-parallel* (high) state's resistance
rolls off steeply with read current while the *parallel* (low) state is
almost flat.  We capture the curve shape with a dimensionless *roll-off
fraction* ``f(x)``, where ``x = |I| / I_max``:

    R_state(I) = R_state(0) - dR_max_state * f(|I| / I_max)

subject to ``f(0) = 0``, ``f(1) = 1`` and monotone non-decreasing.  Different
concrete shapes are provided; the calibration package fits the shape
parameters so that the paper's Table I/II operating points are reproduced.

All models accept scalars or numpy arrays and broadcast.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "RollOffModel",
    "PowerLawRollOff",
    "RationalRollOff",
    "TabulatedRollOff",
]


class RollOffModel(abc.ABC):
    """Dimensionless resistance roll-off curve ``f(x)`` on ``x >= 0``."""

    @abc.abstractmethod
    def fraction(self, current_ratio):
        """Return ``f(x)`` for ``x = |I|/I_max`` (scalar or array).

        Must satisfy ``f(0) == 0`` and ``f(1) == 1``; values for ``x > 1``
        extrapolate monotonically (sweeps may slightly exceed ``I_max``).
        """

    def derivative(self, current_ratio, step: float = 1e-6):
        """Numerical derivative ``df/dx`` (central difference).

        Concrete models may override with an analytic form.
        """
        x = np.asarray(current_ratio, dtype=float)
        lo = np.clip(x - step, 0.0, None)
        hi = x + step
        return (self.fraction(hi) - self.fraction(lo)) / (hi - lo)

    def validate(self, samples: int = 257, tolerance: float = 1e-9) -> None:
        """Raise :class:`ConfigurationError` if the curve violates the
        boundary or monotonicity contracts on ``[0, 1]``."""
        grid = np.linspace(0.0, 1.0, samples)
        values = np.asarray(self.fraction(grid), dtype=float)
        if abs(values[0]) > tolerance:
            raise ConfigurationError(f"roll-off fraction f(0) = {values[0]!r}, expected 0")
        if abs(values[-1] - 1.0) > tolerance:
            raise ConfigurationError(f"roll-off fraction f(1) = {values[-1]!r}, expected 1")
        if np.any(np.diff(values) < -tolerance):
            raise ConfigurationError("roll-off fraction must be monotone non-decreasing")


class PowerLawRollOff(RollOffModel):
    """``f(x) = x ** exponent``.

    ``exponent = 1`` gives a linear roll-off; ``exponent = 2`` matches the
    parabolic bias dependence of tunnel conductance at small bias.
    """

    def __init__(self, exponent: float = 1.0):
        if exponent <= 0.0:
            raise ConfigurationError(f"power-law exponent must be > 0, got {exponent}")
        self.exponent = float(exponent)

    def fraction(self, current_ratio):
        x = np.abs(np.asarray(current_ratio, dtype=float))
        result = np.power(x, self.exponent)
        if np.ndim(current_ratio) == 0:
            return float(result)
        return result

    def derivative(self, current_ratio, step: float = 1e-6):
        x = np.abs(np.asarray(current_ratio, dtype=float))
        result = self.exponent * np.power(x, self.exponent - 1.0, where=x > 0, out=np.zeros_like(x))
        if self.exponent < 1.0:
            result = np.where(x == 0.0, np.inf, result)
        if np.ndim(current_ratio) == 0:
            return float(result)
        return result

    def __repr__(self) -> str:
        return f"PowerLawRollOff(exponent={self.exponent:.4g})"


class RationalRollOff(RollOffModel):
    """Saturating rational roll-off ``f(x) = (1 + c) x^p / (c + x^p)``.

    Models a tunnel-magnetoresistance collapse that saturates at high bias:
    steep initial drop for small ``c``, close to a power law for large ``c``.
    """

    def __init__(self, exponent: float = 2.0, knee: float = 1.0):
        if exponent <= 0.0:
            raise ConfigurationError(f"exponent must be > 0, got {exponent}")
        if knee <= 0.0:
            raise ConfigurationError(f"knee must be > 0, got {knee}")
        self.exponent = float(exponent)
        self.knee = float(knee)

    def fraction(self, current_ratio):
        x = np.abs(np.asarray(current_ratio, dtype=float))
        xp = np.power(x, self.exponent)
        result = (1.0 + self.knee) * xp / (self.knee + xp)
        if np.ndim(current_ratio) == 0:
            return float(result)
        return result

    def __repr__(self) -> str:
        return f"RationalRollOff(exponent={self.exponent:.4g}, knee={self.knee:.4g})"


class TabulatedRollOff(RollOffModel):
    """Roll-off defined by measured ``(x, f)`` samples with monotone (PCHIP)
    interpolation — the direct stand-in for digitizing the paper's Fig. 2.
    """

    def __init__(self, ratios: Sequence[float], fractions: Sequence[float]):
        x = np.asarray(ratios, dtype=float)
        y = np.asarray(fractions, dtype=float)
        if x.ndim != 1 or x.shape != y.shape or x.size < 2:
            raise ConfigurationError("need matching 1-D ratio/fraction arrays with >= 2 points")
        if np.any(np.diff(x) <= 0):
            raise ConfigurationError("ratios must be strictly increasing")
        if np.any(np.diff(y) < 0):
            raise ConfigurationError("fractions must be non-decreasing")
        if x[0] != 0.0 or abs(y[0]) > 1e-12:
            raise ConfigurationError("table must start at (0, 0)")
        if x[-1] < 1.0:
            raise ConfigurationError("table must cover x = 1")
        # Normalize so that f(1) == 1 even if the table is given in ohms.
        from scipy.interpolate import PchipInterpolator

        interp = PchipInterpolator(x, y, extrapolate=False)
        scale = float(interp(1.0))
        if scale <= 0.0:
            raise ConfigurationError("table must have positive roll-off at x = 1")
        self._x = x
        self._y = y / scale
        self._interp = PchipInterpolator(x, self._y, extrapolate=False)
        self._end_slope = float(self._interp.derivative()(x[-1]))

    def fraction(self, current_ratio):
        x = np.abs(np.asarray(current_ratio, dtype=float))
        inside = np.clip(x, 0.0, self._x[-1])
        values = self._interp(inside)
        # Linear extrapolation beyond the last tabulated point.
        overflow = x > self._x[-1]
        if np.any(overflow):
            values = np.where(
                overflow,
                self._interp(self._x[-1]) + self._end_slope * (x - self._x[-1]),
                values,
            )
        if np.ndim(current_ratio) == 0:
            return float(values)
        return values

    def __repr__(self) -> str:
        return f"TabulatedRollOff(points={len(self._x)})"
