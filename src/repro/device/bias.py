"""Physically-derived bias-dependent roll-off.

The power-law/rational shapes in :mod:`repro.device.rolloff` are empirical
fits.  This module derives the roll-off from the standard tunnel-junction
physics instead: the anti-parallel conductance grows quadratically with
bias voltage (magnon-assisted tunneling / Slonczewski barrier model),

    G_AP(V) = G_AP0 * (1 + (V / V_h)^2)

where ``V_h`` is the bias at which the TMR has dropped to half, while the
parallel conductance is nearly bias-independent (weakly quadratic with a
much larger ``V_h``).  Under a *current* drive the junction voltage is
implicit — ``V = I / G(V)`` — which :class:`BiasDrivenRollOff` solves in
closed form (the self-consistency reduces to a depressed cubic; we use a
guarded Newton iteration for clarity and array support).

This model explains the paper's Fig. 2 asymmetry from first principles:
the AP state has the small ``V_h`` (~0.3–0.5 V for MgO), so its resistance
collapses at read currents where the P state barely moves.
"""

from __future__ import annotations

import numpy as np

from repro.device.rolloff import RollOffModel
from repro.errors import ConfigurationError, ConvergenceError

__all__ = ["junction_voltage", "BiasDrivenRollOff"]


def junction_voltage(current, r_zero: float, v_half: float, max_iterations: int = 60):
    """Solve ``V = I R(V)`` with ``R(V) = r_zero / (1 + (V/v_half)^2)``.

    Vectorized in ``current``; returns the junction voltage [V].  The
    self-consistency always has exactly one positive root for positive
    current (G grows with V, so I(V) is strictly increasing).
    """
    if r_zero <= 0.0:
        raise ConfigurationError(f"r_zero must be positive, got {r_zero}")
    if v_half <= 0.0:
        raise ConfigurationError(f"v_half must be positive, got {v_half}")
    i = np.abs(np.asarray(current, dtype=float))
    # Newton on f(V) = V (1 + (V/v_half)^2) - I r_zero = 0, seeded with the
    # zero-bias solution V = I r_zero.
    v = i * r_zero
    target = i * r_zero
    for _ in range(max_iterations):
        f = v * (1.0 + (v / v_half) ** 2) - target
        df = 1.0 + 3.0 * (v / v_half) ** 2
        step = f / df
        v = v - step
        if np.all(np.abs(step) <= 1e-15 + 1e-12 * np.abs(v)):
            break
    else:
        raise ConvergenceError("junction_voltage Newton iteration did not converge")
    if np.ndim(current) == 0:
        return float(v)
    return v


class BiasDrivenRollOff(RollOffModel):
    """Roll-off fraction derived from the quadratic-conductance bias model.

    Parameters
    ----------
    r_zero:
        Zero-bias resistance of the state this model describes [Ω].
    v_half:
        Bias at which the state's resistance has halved [V].  Small for the
        anti-parallel state (strong TMR collapse), large for parallel.
    i_max:
        The read current at which the roll-off fraction is defined to be 1
        [A] (the device's ``i_read_max``).

    The fraction is the resistance drop normalized to the drop at ``i_max``:

        f(x) = (R(0) - R(x * i_max)) / (R(0) - R(i_max))
    """

    def __init__(self, r_zero: float, v_half: float, i_max: float):
        if i_max <= 0.0:
            raise ConfigurationError(f"i_max must be positive, got {i_max}")
        self.r_zero = float(r_zero)
        self.v_half = float(v_half)
        self.i_max = float(i_max)
        v_at_max = junction_voltage(self.i_max, self.r_zero, self.v_half)
        r_at_max = self.r_zero / (1.0 + (v_at_max / self.v_half) ** 2)
        self._full_drop = self.r_zero - r_at_max
        if self._full_drop <= 0.0:
            raise ConfigurationError(
                "no measurable roll-off at i_max; increase i_max or decrease v_half"
            )

    def resistance(self, current):
        """Self-consistent resistance at a read current [Ω] (vectorized)."""
        v = junction_voltage(current, self.r_zero, self.v_half)
        r = self.r_zero / (1.0 + (np.asarray(v) / self.v_half) ** 2)
        if np.ndim(current) == 0:
            return float(r)
        return r

    def fraction(self, current_ratio):
        x = np.abs(np.asarray(current_ratio, dtype=float))
        r = self.resistance(x * self.i_max)
        result = (self.r_zero - np.asarray(r)) / self._full_drop
        if np.ndim(current_ratio) == 0:
            return float(result)
        return result

    def delta_r_max(self) -> float:
        """The absolute resistance drop between zero current and ``i_max``
        [Ω] — what :class:`~repro.device.mtj.MTJParams` calls ``dr_*_max``
        for this state."""
        return self._full_drop

    @classmethod
    def for_antiparallel(
        cls, r_high: float = 2500.0, v_half: float = 0.70, i_max: float = 200e-6
    ) -> "BiasDrivenRollOff":
        """Typical MgO anti-parallel state: strong TMR collapse.  The
        default ``v_half`` reproduces the paper's 600 Ω drop at 200 µA."""
        return cls(r_high, v_half, i_max)

    @classmethod
    def for_parallel(
        cls, r_low: float = 1220.0, v_half: float = 2.0, i_max: float = 200e-6
    ) -> "BiasDrivenRollOff":
        """Typical MgO parallel state: nearly bias-independent."""
        return cls(r_low, v_half, i_max)

    def __repr__(self) -> str:
        return (
            f"BiasDrivenRollOff(r_zero={self.r_zero:.0f}, "
            f"v_half={self.v_half:.2f}, i_max={self.i_max:.2e})"
        )
