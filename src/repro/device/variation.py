"""Process-variation models and cell-population sampling.

The paper's motivating yield problem is the large bit-to-bit MTJ resistance
variation: a 0.1 Å change in MgO barrier thickness shifts the resistance by
8% (its ref. [8]).  We model each bit's resistances as

    R = RA(t_ox) / A,    RA(t_ox) ∝ exp(t_ox / κ),   κ = 0.1 Å / ln(1.08)

with Gaussian barrier-thickness and junction-area deviations, an independent
small TMR deviation (decorrelating ``R_H`` from ``R_L``), plus transistor,
read-current-ratio (β), divider-ratio (α) and sense-amplifier-offset
variation for the circuit surroundings.

:class:`CellPopulation` carries vectorized per-bit parameter arrays used by
the Monte-Carlo engine.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from repro.device.mtj import MTJDevice, MTJParams, MTJState
from repro.device.rolloff import PowerLawRollOff, RollOffModel
from repro.errors import ConfigurationError

__all__ = ["VariationModel", "CellPopulation", "OXIDE_SENSITIVITY_PER_ANGSTROM"]

#: ln(1.08) / 0.1 Å — fractional resistance sensitivity to barrier thickness
#: [1/Å], from "resistance increases by 8% when thickness changes from
#: 14 Å to 14.1 Å" (paper §I).
OXIDE_SENSITIVITY_PER_ANGSTROM = math.log(1.08) / 0.1


@dataclasses.dataclass(frozen=True)
class VariationModel:
    """Standard deviations of every process-variation source.

    Attributes
    ----------
    sigma_tox_angstrom:
        Barrier-thickness sigma [Å].  0.04 Å ≈ 3% resistance sigma.
    sigma_area_frac:
        Fractional junction-area sigma (lithography/etch).
    sigma_tmr_frac:
        Fractional TMR sigma, independent of the common RA variation.
    sigma_rtr_frac:
        Fractional access-transistor on-resistance sigma.
    sigma_alpha_frac:
        Fractional voltage-divider-ratio sigma (nondestructive scheme).
    sigma_beta_frac:
        Fractional read-current-ratio sigma (read-driver mismatch).
    sigma_sa_offset:
        Sense-amplifier residual input offset sigma [V] after auto-zero.
    sigma_vref:
        Shared-reference error sigma [V] seen by *conventional* sensing
        only: the reference is generated from reference MTJ cells subject
        to the same process variation (averaged over a small group), so it
        carries its own mismatch.  Self-reference schemes have no shared
        reference and are immune — the core of the paper's argument.
    """

    sigma_tox_angstrom: float = 0.04
    sigma_area_frac: float = 0.03
    sigma_tmr_frac: float = 0.02
    sigma_rtr_frac: float = 0.03
    sigma_alpha_frac: float = 0.01
    sigma_beta_frac: float = 0.01
    sigma_sa_offset: float = 1.0e-3
    sigma_vref: float = 10.0e-3

    def __post_init__(self) -> None:
        for name, value in dataclasses.asdict(self).items():
            if value < 0.0:
                raise ConfigurationError(f"{name} must be non-negative, got {value}")

    def resistance_sigma_frac(self) -> float:
        """Approximate total fractional sigma of the low-state resistance
        (thickness and area contributions combined in quadrature)."""
        thickness = OXIDE_SENSITIVITY_PER_ANGSTROM * self.sigma_tox_angstrom
        return math.sqrt(thickness**2 + self.sigma_area_frac**2)

    def scaled(self, factor: float) -> "VariationModel":
        """All sigmas multiplied by ``factor`` (variation-scaling ablation)."""
        if factor < 0.0:
            raise ConfigurationError("scale factor must be non-negative")
        return VariationModel(
            sigma_tox_angstrom=self.sigma_tox_angstrom * factor,
            sigma_area_frac=self.sigma_area_frac * factor,
            sigma_tmr_frac=self.sigma_tmr_frac * factor,
            sigma_rtr_frac=self.sigma_rtr_frac * factor,
            sigma_alpha_frac=self.sigma_alpha_frac * factor,
            sigma_beta_frac=self.sigma_beta_frac * factor,
            sigma_sa_offset=self.sigma_sa_offset * factor,
            sigma_vref=self.sigma_vref * factor,
        )


@dataclasses.dataclass
class CellPopulation:
    """Vectorized per-bit electrical parameters of an STT-RAM array.

    Every attribute except the shared nominal/rolloff fields is a 1-D numpy
    array of length ``size``.  Resistance roll-off magnitudes scale with each
    bit's own resistance split so that a high-resistance bit also exhibits a
    proportionally larger roll-off (constant-shape assumption).
    """

    nominal: MTJParams
    rolloff_high: RollOffModel
    rolloff_low: RollOffModel
    r_low0: np.ndarray
    r_high0: np.ndarray
    dr_low_max: np.ndarray
    dr_high_max: np.ndarray
    r_tr: np.ndarray
    alpha_deviation: np.ndarray
    beta_deviation: np.ndarray
    sa_offset: np.ndarray
    vref_error: np.ndarray

    @property
    def size(self) -> int:
        """Number of bits in the population."""
        return int(self.r_low0.size)

    # ------------------------------------------------------------------
    # Vectorized resistance characteristics
    # ------------------------------------------------------------------
    def resistance_low(self, current) -> np.ndarray:
        """Per-bit parallel-state resistance at read current(s) [Ω]."""
        ratio = np.abs(np.asarray(current, dtype=float)) / self.nominal.i_read_max
        return self.r_low0 - self.dr_low_max * self.rolloff_low.fraction(ratio)

    def resistance_high(self, current) -> np.ndarray:
        """Per-bit anti-parallel-state resistance at read current(s) [Ω]."""
        ratio = np.abs(np.asarray(current, dtype=float)) / self.nominal.i_read_max
        return self.r_high0 - self.dr_high_max * self.rolloff_high.fraction(ratio)

    def resistance(self, current, state: MTJState) -> np.ndarray:
        """Per-bit resistance for the given state."""
        if state is MTJState.ANTIPARALLEL:
            return self.resistance_high(current)
        return self.resistance_low(current)

    def tmr(self, current=0.0) -> np.ndarray:
        """Per-bit TMR ratio at the given current."""
        r_h = self.resistance_high(current)
        r_l = self.resistance_low(current)
        return (r_h - r_l) / r_l

    # ------------------------------------------------------------------
    # State-dependent electrical view (the batch read kernel's substrate)
    # ------------------------------------------------------------------
    def state_resistance(self, current, states) -> np.ndarray:
        """Per-bit MTJ resistance for per-bit stored states (0/1) [Ω]."""
        stored = np.asarray(states).astype(bool)
        return np.where(
            stored, self.resistance_high(current), self.resistance_low(current)
        )

    def series_resistance(self, current, states) -> np.ndarray:
        """Per-bit ``R_MTJ(I) + R_TR`` [Ω] — the vectorized analogue of
        :meth:`repro.core.cell.Cell1T1J.series_resistance`."""
        return self.state_resistance(current, states) + self.r_tr

    def bitline_voltage(self, current, states) -> np.ndarray:
        """Per-bit bit-line voltage ``V_BL = I (R_MTJ + R_TR)`` [V] —
        bit-exact with the scalar cell path for identical parameters."""
        return current * self.series_resistance(current, states)

    def device(self, index: int, state: MTJState = MTJState.PARALLEL) -> MTJDevice:
        """Materialize bit ``index`` as a standalone :class:`MTJDevice`."""
        if not 0 <= index < self.size:
            raise IndexError(f"bit index {index} out of range [0, {self.size})")
        params = self.nominal.replace(
            r_low=float(self.r_low0[index]),
            r_high=float(self.r_high0[index]),
            dr_low_max=float(self.dr_low_max[index]),
            dr_high_max=float(self.dr_high_max[index]),
        )
        return MTJDevice(params, self.rolloff_high, self.rolloff_low, state)

    def subset(self, indices) -> "CellPopulation":
        """A new population restricted to the given bit indices."""
        idx = np.asarray(indices)
        return CellPopulation(
            nominal=self.nominal,
            rolloff_high=self.rolloff_high,
            rolloff_low=self.rolloff_low,
            r_low0=self.r_low0[idx],
            r_high0=self.r_high0[idx],
            dr_low_max=self.dr_low_max[idx],
            dr_high_max=self.dr_high_max[idx],
            r_tr=self.r_tr[idx],
            alpha_deviation=self.alpha_deviation[idx],
            beta_deviation=self.beta_deviation[idx],
            sa_offset=self.sa_offset[idx],
            vref_error=self.vref_error[idx],
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def sample(
        cls,
        size: int,
        variation: VariationModel,
        params: Optional[MTJParams] = None,
        rolloff_high: Optional[RollOffModel] = None,
        rolloff_low: Optional[RollOffModel] = None,
        rng: Optional[np.random.Generator] = None,
        r_tr_nominal: float = 917.0,
    ) -> "CellPopulation":
        """Draw a Monte-Carlo population of ``size`` bits.

        Thickness and area deviations move ``R_L`` and ``R_H`` together
        (common RA/A factor); a separate TMR deviation then moves ``R_H``
        relative to ``R_L``.  Roll-off magnitudes scale with each bit's
        resistances as described in the class docstring.
        """
        if size <= 0:
            raise ConfigurationError(f"population size must be positive, got {size}")
        if params is None:
            params = MTJParams()
        if rolloff_high is None:
            rolloff_high = PowerLawRollOff(1.0)
        if rolloff_low is None:
            rolloff_low = PowerLawRollOff(1.0)
        if rng is None:
            rng = np.random.default_rng()

        delta_t = rng.normal(0.0, variation.sigma_tox_angstrom, size)
        ra_factor = np.exp(OXIDE_SENSITIVITY_PER_ANGSTROM * delta_t)
        area_factor = np.clip(1.0 + rng.normal(0.0, variation.sigma_area_frac, size), 0.5, 1.5)
        common = ra_factor / area_factor

        tmr_factor = np.clip(1.0 + rng.normal(0.0, variation.sigma_tmr_frac, size), 0.1, None)
        r_low0 = params.r_low * common
        r_high0 = r_low0 * (1.0 + params.tmr * tmr_factor)

        split_nominal = params.r_high - params.r_low
        split = r_high0 - r_low0
        dr_high_max = params.dr_high_max * split / split_nominal
        dr_low_max = params.dr_low_max * r_low0 / params.r_low

        r_tr = r_tr_nominal * np.clip(
            1.0 + rng.normal(0.0, variation.sigma_rtr_frac, size), 0.1, None
        )
        alpha_dev = rng.normal(0.0, variation.sigma_alpha_frac, size)
        beta_dev = rng.normal(0.0, variation.sigma_beta_frac, size)
        sa_offset = rng.normal(0.0, variation.sigma_sa_offset, size)
        vref_error = rng.normal(0.0, variation.sigma_vref, size)

        return cls(
            nominal=params,
            rolloff_high=rolloff_high,
            rolloff_low=rolloff_low,
            r_low0=r_low0,
            r_high0=r_high0,
            dr_low_max=dr_low_max,
            dr_high_max=dr_high_max,
            r_tr=r_tr,
            alpha_deviation=alpha_dev,
            beta_deviation=beta_dev,
            sa_offset=sa_offset,
            vref_error=vref_error,
        )

    @classmethod
    def nominal_population(
        cls,
        size: int,
        params: Optional[MTJParams] = None,
        rolloff_high: Optional[RollOffModel] = None,
        rolloff_low: Optional[RollOffModel] = None,
        r_tr_nominal: float = 917.0,
    ) -> "CellPopulation":
        """A variation-free population (all bits identical) — useful for
        testing that Monte-Carlo margins reduce to the analytic ones."""
        if params is None:
            params = MTJParams()
        if rolloff_high is None:
            rolloff_high = PowerLawRollOff(1.0)
        if rolloff_low is None:
            rolloff_low = PowerLawRollOff(1.0)
        ones = np.ones(size)
        zeros = np.zeros(size)
        return cls(
            nominal=params,
            rolloff_high=rolloff_high,
            rolloff_low=rolloff_low,
            r_low0=params.r_low * ones,
            r_high0=params.r_high * ones,
            dr_low_max=params.dr_low_max * ones,
            dr_high_max=params.dr_high_max * ones,
            r_tr=r_tr_nominal * ones,
            alpha_deviation=zeros.copy(),
            beta_deviation=zeros.copy(),
            sa_offset=zeros.copy(),
            vref_error=zeros.copy(),
        )
