"""Magnetic tunnel junction (MTJ) model.

The MTJ is the storage element of an STT-RAM cell: two ferromagnetic layers
separated by an MgO barrier.  Parallel magnetization = low resistance
(``R_L``, logical "0"); anti-parallel = high resistance (``R_H``, logical
"1").  Both resistances decrease with read current; the high state much
faster (paper Fig. 2) — the effect the nondestructive scheme exploits.

Nominal numbers follow the paper's Table I after the trailing-zero OCR
recovery documented in DESIGN.md §2: ``R_H = 2500 Ω``, ``R_L = 1220 Ω``
(TMR = 105%), ``ΔR_Hmax = 600 Ω`` at ``I_max = 200 µA``, switching current
``~500 µA`` at a 4 ns pulse.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.device.rolloff import PowerLawRollOff, RollOffModel

__all__ = ["MTJState", "MTJParams", "MTJDevice", "PAPER_MTJ_PARAMS"]


class MTJState(enum.IntEnum):
    """Magnetization state of the free layer relative to the reference layer.

    The integer value is the stored logical bit.
    """

    PARALLEL = 0        #: low resistance, logical "0"
    ANTIPARALLEL = 1    #: high resistance, logical "1"

    @property
    def bit(self) -> int:
        """The logical bit this state encodes."""
        return int(self)

    @classmethod
    def from_bit(cls, bit: int) -> "MTJState":
        """Map a logical bit (0/1) to the corresponding state."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        return cls.ANTIPARALLEL if bit else cls.PARALLEL

    @property
    def opposite(self) -> "MTJState":
        """The other magnetization state."""
        return MTJState.PARALLEL if self is MTJState.ANTIPARALLEL else MTJState.ANTIPARALLEL


@dataclasses.dataclass(frozen=True)
class MTJParams:
    """Electrical and magnetic parameters of one MTJ device.

    Attributes
    ----------
    r_low:
        Parallel-state resistance extrapolated to zero read current [Ω].
    r_high:
        Anti-parallel-state resistance at zero read current [Ω].
    dr_low_max:
        Parallel-state resistance drop between zero current and
        ``i_read_max`` [Ω]; small ("close to zero" per paper Eq. 17).
    dr_high_max:
        Anti-parallel-state drop over the same range [Ω]; large.
    i_read_max:
        Largest read current that must not disturb the state [A].  The paper
        sets it to 40% of the switching current.
    i_c0:
        Critical (switching) current at the write pulse width [A].
    pulse_width_write:
        Write/erase pulse width the critical current refers to [s].
    thermal_stability:
        Thermal stability factor Δ = E_barrier / kT at operating temperature.
    attempt_time:
        Néel–Brown attempt time τ0 [s].
    cell_width / cell_length:
        Junction in-plane dimensions [m] (paper: 90 nm × 180 nm).
    """

    r_low: float = 1220.0
    r_high: float = 2500.0
    dr_low_max: float = 10.0
    dr_high_max: float = 600.0
    i_read_max: float = 200e-6
    i_c0: float = 500e-6
    pulse_width_write: float = 4e-9
    thermal_stability: float = 60.0
    attempt_time: float = 1e-9
    cell_width: float = 90e-9
    cell_length: float = 180e-9

    def __post_init__(self) -> None:
        if self.r_low <= 0.0:
            raise ConfigurationError(f"r_low must be positive, got {self.r_low}")
        if self.r_high <= self.r_low:
            raise ConfigurationError(
                f"r_high ({self.r_high}) must exceed r_low ({self.r_low})"
            )
        if not 0.0 <= self.dr_low_max < self.r_low:
            raise ConfigurationError("dr_low_max must lie in [0, r_low)")
        if not 0.0 <= self.dr_high_max < self.r_high:
            raise ConfigurationError("dr_high_max must lie in [0, r_high)")
        if self.r_high - self.dr_high_max <= self.r_low - self.dr_low_max:
            raise ConfigurationError(
                "states must remain distinguishable at i_read_max: "
                "r_high - dr_high_max must exceed r_low - dr_low_max"
            )
        if self.i_read_max <= 0.0:
            raise ConfigurationError("i_read_max must be positive")
        if self.i_c0 <= self.i_read_max:
            raise ConfigurationError(
                "switching current i_c0 must exceed the maximum read current"
            )
        if self.pulse_width_write <= 0.0 or self.attempt_time <= 0.0:
            raise ConfigurationError("pulse widths must be positive")
        if self.thermal_stability <= 0.0:
            raise ConfigurationError("thermal_stability must be positive")
        if self.cell_width <= 0.0 or self.cell_length <= 0.0:
            raise ConfigurationError("cell dimensions must be positive")

    @property
    def tmr(self) -> float:
        """Tunneling magnetoresistance ratio at zero bias:
        ``(R_H - R_L) / R_L``."""
        return (self.r_high - self.r_low) / self.r_low

    @property
    def area(self) -> float:
        """Junction area [m^2]."""
        return self.cell_width * self.cell_length

    @property
    def read_disturb_ratio(self) -> float:
        """``i_read_max / i_c0`` (paper: 40%)."""
        return self.i_read_max / self.i_c0

    def replace(self, **changes) -> "MTJParams":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)


#: Nominal device of the paper's test chip (Table I after OCR recovery).
#: ``dr_low_max`` and the roll-off shapes are refined by
#: :mod:`repro.calibration`; 10 Ω is the pre-calibration default.
PAPER_MTJ_PARAMS = MTJParams()


class MTJDevice:
    """A single MTJ with state-dependent, current-dependent resistance.

    Parameters
    ----------
    params:
        Electrical parameters.
    rolloff_high / rolloff_low:
        Dimensionless roll-off shapes for the two states.  Defaults are
        linear; :func:`repro.calibration.fit.calibrated_device` supplies
        shapes fitted to the paper's operating points.
    state:
        Initial magnetization state.
    """

    def __init__(
        self,
        params: MTJParams = PAPER_MTJ_PARAMS,
        rolloff_high: Optional[RollOffModel] = None,
        rolloff_low: Optional[RollOffModel] = None,
        state: MTJState = MTJState.PARALLEL,
    ):
        self.params = params
        self.rolloff_high = rolloff_high if rolloff_high is not None else PowerLawRollOff(1.0)
        self.rolloff_low = rolloff_low if rolloff_low is not None else PowerLawRollOff(1.0)
        self.state = state

    # ------------------------------------------------------------------
    # Resistance / voltage characteristics
    # ------------------------------------------------------------------
    def resistance(self, current, state: Optional[MTJState] = None):
        """Resistance [Ω] at the given read current [A].

        ``current`` may be a scalar or array; only its magnitude matters for
        the resistance roll-off.  ``state`` defaults to the stored state.
        """
        if state is None:
            state = self.state
        ratio = np.abs(np.asarray(current, dtype=float)) / self.params.i_read_max
        if state is MTJState.ANTIPARALLEL:
            r = self.params.r_high - self.params.dr_high_max * self.rolloff_high.fraction(ratio)
        else:
            r = self.params.r_low - self.params.dr_low_max * self.rolloff_low.fraction(ratio)
        if np.ndim(current) == 0:
            return float(r)
        return r

    def resistance_low(self, current):
        """Parallel-state resistance at ``current`` (vectorized)."""
        return self.resistance(current, MTJState.PARALLEL)

    def resistance_high(self, current):
        """Anti-parallel-state resistance at ``current`` (vectorized)."""
        return self.resistance(current, MTJState.ANTIPARALLEL)

    def voltage(self, current, state: Optional[MTJState] = None):
        """Voltage drop across the junction at the given current."""
        return np.asarray(current, dtype=float) * self.resistance(current, state)

    def conductance(self, current, state: Optional[MTJState] = None):
        """Conductance [S] at the given current."""
        return 1.0 / self.resistance(current, state)

    def tmr(self, current=0.0) -> float:
        """TMR ratio at the given read current (TMR collapses with bias)."""
        r_h = self.resistance(current, MTJState.ANTIPARALLEL)
        r_l = self.resistance(current, MTJState.PARALLEL)
        return float((r_h - r_l) / r_l)

    def delta_r(self, current, state: MTJState):
        """Roll-off ``R_state(0) - R_state(I)`` at the given current [Ω]."""
        zero = self.resistance(0.0, state)
        return zero - self.resistance(current, state)

    # ------------------------------------------------------------------
    # State manipulation
    # ------------------------------------------------------------------
    def write(self, bit: int) -> None:
        """Deterministically set the stored bit (ideal write driver)."""
        self.state = MTJState.from_bit(bit)

    def read_bit(self) -> int:
        """The stored logical bit (ground truth, not a sensing operation)."""
        return self.state.bit

    def copy(self) -> "MTJDevice":
        """An independent copy sharing params and roll-off models."""
        return MTJDevice(self.params, self.rolloff_high, self.rolloff_low, self.state)

    def __repr__(self) -> str:
        return (
            f"MTJDevice(state={self.state.name}, r_low={self.params.r_low:.0f}, "
            f"r_high={self.params.r_high:.0f})"
        )
