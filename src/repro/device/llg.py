"""Macrospin Landau–Lifshitz–Gilbert (LLG) dynamics with spin-transfer
torque.

The :class:`~repro.device.switching.SwitchingModel` is a rate model; this
module provides the time-domain physics underneath it: the free layer as a
single macrospin ``m`` on the unit sphere, evolving under

    dm/dt = -γ m × H_eff + α m × dm/dt + τ_STT m × (m × p)

with a uniaxial easy axis (z), the Gilbert damping α, and the Slonczewski
spin-torque term proportional to the drive current (polarizer ``p`` along
-z/+z depending on the write direction).  Integrated with fixed-step RK4
in normalized time.

Used for

* switching-time vs overdrive curves (checked against the Sun ``1/(I/I_c -
  1)`` scaling the rate model assumes);
* verifying the no-switching condition below the critical current;
* waveform-level write-pulse studies beyond the scope of the rate model.

Normalization: time in units of ``1 / (γ μ0 M_s)``-like precession periods
is folded into a single ``precession_rate``; the current enters as the
overdrive ``I / I_c0``.  This keeps the model free of material-parameter
bookkeeping while preserving the dynamical structure.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["MacrospinLLG", "SwitchingTrajectory"]


@dataclasses.dataclass(frozen=True)
class SwitchingTrajectory:
    """Result of one LLG integration."""

    times: np.ndarray        #: [s]
    mz: np.ndarray           #: easy-axis magnetization component
    switched: bool           #: crossed to the other hemisphere and stayed
    switching_time: float    #: first time mz crosses 0 [s]; inf if never


class MacrospinLLG:
    """Single-domain free layer with uniaxial anisotropy and STT.

    Parameters
    ----------
    damping:
        Gilbert damping α (typical MgO free layers: 0.01–0.03).
    precession_period:
        Characteristic precession period 2π/(γ H_k) [s] (~0.1–1 ns).
    initial_angle:
        Initial polar angle from the easy axis [rad]; a thermal distribution
        has ⟨θ²⟩ = 1/(2Δ), so ~0.09 rad for Δ = 60.
    """

    def __init__(
        self,
        damping: float = 0.02,
        precession_period: float = 0.2e-9,
        initial_angle: float = 0.09,
    ):
        if not 0.0 < damping < 1.0:
            raise ConfigurationError(f"damping must be in (0, 1), got {damping}")
        if precession_period <= 0.0:
            raise ConfigurationError("precession_period must be positive")
        if not 0.0 < initial_angle < math.pi / 2:
            raise ConfigurationError("initial_angle must be in (0, π/2)")
        self.damping = float(damping)
        self.precession_period = float(precession_period)
        self.initial_angle = float(initial_angle)

    # ------------------------------------------------------------------
    def _derivative(self, m, overdrive: float):
        """dm/dt in physical time (hand-expanded cross products for speed).

        Effective field: uniaxial anisotropy along z, ``H_eff = m_z ẑ`` in
        units of H_k.  STT: Slonczewski term with the polarizer along -z
        (the erase direction drives the magnetization away from +z); the
        damping-like STT magnitude equals α at exactly the critical
        current, which is what *defines* I_c0 in the macrospin picture —
        so the term is ``α · overdrive``.
        """
        mx, my, mz = m
        gamma_eff = 2.0 * math.pi / self.precession_period
        alpha = self.damping
        a_j = alpha * overdrive

        # m × H with H = (0, 0, mz):
        cx, cy, cz = my * mz, -mx * mz, 0.0
        # m × (m × H):
        ccx = my * cz - mz * cy
        ccy = mz * cx - mx * cz
        ccz = mx * cy - my * cx
        # m × p with p = (0, 0, -1):
        px, py, pz = -my, mx, 0.0
        # m × (m × p):
        ppx = my * pz - mz * py
        ppy = mz * px - mx * pz
        ppz = mx * py - my * px

        prefactor = -gamma_eff / (1.0 + alpha * alpha)
        return (
            prefactor * (cx + alpha * ccx + a_j * ppx - alpha * a_j * px),
            prefactor * (cy + alpha * ccy + a_j * ppy - alpha * a_j * py),
            prefactor * (cz + alpha * ccz + a_j * ppz - alpha * a_j * pz),
        )

    def integrate(
        self,
        overdrive: float,
        duration: float,
        dt: Optional[float] = None,
        initial_angle: Optional[float] = None,
        azimuth: float = 0.3,
    ) -> SwitchingTrajectory:
        """Integrate the magnetization under a constant drive.

        Parameters
        ----------
        overdrive:
            ``I / I_c0`` (1.0 = critical; below it the STT cannot overcome
            damping and the macrospin relaxes back to +z).
        duration:
            Pulse length [s].
        dt:
            RK4 step [s]; defaults to ``precession_period / 40``.
        initial_angle / azimuth:
            Starting orientation (thermal seed).
        """
        if duration <= 0.0:
            raise ConfigurationError("duration must be positive")
        if dt is None:
            dt = self.precession_period / 40.0
        if dt <= 0.0 or dt > duration:
            raise ConfigurationError("need 0 < dt <= duration")
        theta = initial_angle if initial_angle is not None else self.initial_angle
        if not 0.0 < theta < math.pi:
            raise ConfigurationError("initial_angle must be in (0, π)")

        steps = int(round(duration / dt))
        m = (
            math.sin(theta) * math.cos(azimuth),
            math.sin(theta) * math.sin(azimuth),
            math.cos(theta),
        )
        times = dt * np.arange(steps + 1)
        mz = np.empty(steps + 1)
        mz[0] = m[2]
        switching_time = math.inf

        derivative = self._derivative
        for step in range(1, steps + 1):
            k1 = derivative(m, overdrive)
            m2 = (m[0] + 0.5 * dt * k1[0], m[1] + 0.5 * dt * k1[1], m[2] + 0.5 * dt * k1[2])
            k2 = derivative(m2, overdrive)
            m3 = (m[0] + 0.5 * dt * k2[0], m[1] + 0.5 * dt * k2[1], m[2] + 0.5 * dt * k2[2])
            k3 = derivative(m3, overdrive)
            m4 = (m[0] + dt * k3[0], m[1] + dt * k3[1], m[2] + dt * k3[2])
            k4 = derivative(m4, overdrive)
            sixth = dt / 6.0
            mx = m[0] + sixth * (k1[0] + 2 * k2[0] + 2 * k3[0] + k4[0])
            my = m[1] + sixth * (k1[1] + 2 * k2[1] + 2 * k3[1] + k4[1])
            mz_new = m[2] + sixth * (k1[2] + 2 * k2[2] + 2 * k3[2] + k4[2])
            norm = math.sqrt(mx * mx + my * my + mz_new * mz_new)
            m = (mx / norm, my / norm, mz_new / norm)  # back onto the sphere
            mz[step] = m[2]
            if math.isinf(switching_time) and m[2] < 0.0:
                switching_time = float(times[step])

        switched = bool(mz[-1] < -0.5)
        return SwitchingTrajectory(
            times=times, mz=mz, switched=switched, switching_time=switching_time
        )

    def integrate_stochastic(
        self,
        overdrive: float,
        duration: float,
        rng: np.random.Generator,
        thermal_angle: float = 0.09,
        dt: Optional[float] = None,
    ) -> SwitchingTrajectory:
        """Integrate with a thermally-drawn initial orientation.

        The dominant stochasticity of STT switching at these time scales is
        the *initial* thermal distribution of the macrospin (the incubation
        spread), not the in-flight noise: the polar angle is drawn from the
        equilibrium Boltzmann distribution, ``P(θ) ∝ θ e^{-Δ θ²}`` for small
        angles, i.e. θ is Rayleigh with mode ``thermal_angle = 1/sqrt(2Δ)``.
        """
        if thermal_angle <= 0.0:
            raise ConfigurationError("thermal_angle must be positive")
        theta = float(rng.rayleigh(thermal_angle))
        theta = min(theta, math.pi / 2 * 0.99)
        azimuth = float(rng.uniform(0.0, 2.0 * math.pi))
        return self.integrate(
            overdrive, duration, dt=dt, initial_angle=theta, azimuth=azimuth
        )

    def switching_probability_mc(
        self,
        overdrive: float,
        duration: float,
        rng: np.random.Generator,
        trials: int = 32,
        thermal_angle: float = 0.09,
    ) -> float:
        """Monte-Carlo switching probability over the thermal initial-angle
        distribution — the LLG-level counterpart of
        :meth:`repro.device.switching.SwitchingModel.switch_probability`."""
        if trials < 1:
            raise ConfigurationError("trials must be >= 1")
        switched = 0
        for _ in range(trials):
            trajectory = self.integrate_stochastic(
                overdrive, duration, rng, thermal_angle
            )
            switched += int(trajectory.switched)
        return switched / trials

    # ------------------------------------------------------------------
    def switching_time(
        self, overdrive: float, max_duration: float = 100e-9
    ) -> float:
        """Time for the drive to switch the macrospin [s]; inf if it does
        not switch within ``max_duration``."""
        trajectory = self.integrate(overdrive, max_duration)
        if not trajectory.switched:
            return math.inf
        return trajectory.switching_time

    def critical_overdrive(
        self, duration: float, tolerance: float = 0.02
    ) -> float:
        """Smallest overdrive that switches within ``duration`` (bisection).

        For long pulses this approaches 1.0 from above — the macrospin
        definition of the critical current.
        """
        low, high = 1.0, 8.0
        if not self.integrate(high, duration).switched:
            raise ConfigurationError(
                "even 8x overdrive does not switch within the duration"
            )
        while (high - low) > tolerance:
            mid = 0.5 * (low + high)
            if self.integrate(mid, duration).switched:
                high = mid
            else:
                low = mid
        return high
