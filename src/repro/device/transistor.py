"""NMOS access transistor models for the 1T1J STT-RAM cell.

During a read the word line holds the gate at VDD and the transistor works
in the linear (triode) region, contributing a series resistance ``R_TR``
(paper: 917 Ω).  The paper's robustness analysis (its §IV-B) studies how a
*shift* of that resistance between the two reads — caused by the different
drain-source voltages at the two read currents — erodes the sense margin.

Two concrete models:

* :class:`FixedResistanceTransistor` — constant ``R_TR`` plus an optional
  explicit shift term, which is what the paper's closed-form equations use.
* :class:`LinearRegionTransistor` — a first-order triode model where the
  resistance rises with drain-source voltage (and therefore with read
  current), producing the ``ΔR_TR`` shift *physically*.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "AccessTransistor",
    "FixedResistanceTransistor",
    "LinearRegionTransistor",
    "PAPER_TRANSISTOR",
]


class AccessTransistor(abc.ABC):
    """Access device exposing an on-resistance as a function of current."""

    @abc.abstractmethod
    def resistance(self, current):
        """On-resistance [Ω] when carrying ``current`` [A] (scalar/array)."""

    def voltage(self, current):
        """Drain-source voltage drop at ``current``."""
        return np.asarray(current, dtype=float) * self.resistance(current)


class FixedResistanceTransistor(AccessTransistor):
    """Constant linear-region resistance with an optional per-read shift.

    Parameters
    ----------
    r_on:
        Nominal on-resistance [Ω].
    shift:
        Additive resistance offset [Ω]; robustness sweeps set this to model
        ``R_T1 = R_TR + ΔR_TR`` at the first read.
    """

    def __init__(self, r_on: float = 917.0, shift: float = 0.0):
        if r_on <= 0.0:
            raise ConfigurationError(f"r_on must be positive, got {r_on}")
        if r_on + shift <= 0.0:
            raise ConfigurationError("shifted resistance must remain positive")
        self.r_on = float(r_on)
        self.shift = float(shift)

    def resistance(self, current):
        value = self.r_on + self.shift
        if np.ndim(current) == 0:
            return value
        return np.full(np.shape(current), value, dtype=float)

    def shifted(self, delta: float) -> "FixedResistanceTransistor":
        """A copy with ``delta`` ohms added to the on-resistance."""
        return FixedResistanceTransistor(self.r_on, self.shift + delta)

    def __repr__(self) -> str:
        return f"FixedResistanceTransistor(r_on={self.r_on:.1f}, shift={self.shift:+.1f})"


class LinearRegionTransistor(AccessTransistor):
    """First-order triode model.

    In the linear region ``I_D = k ((V_GS - V_TH) V_DS - V_DS^2 / 2)``, so the
    effective resistance seen by the cell rises with ``V_DS``:

        R(V_DS) ≈ R_0 / (1 - V_DS / (2 (V_GS - V_TH)))

    with ``R_0 = 1 / (k (V_GS - V_TH))``.  ``resistance(current)`` solves the
    implicit relation ``V_DS = I * R(V_DS)`` exactly (quadratic).

    Parameters
    ----------
    r_zero:
        Resistance extrapolated to zero drain-source voltage [Ω].
    v_overdrive:
        Gate overdrive ``V_GS - V_TH`` [V].
    """

    def __init__(self, r_zero: float = 900.0, v_overdrive: float = 0.9):
        if r_zero <= 0.0:
            raise ConfigurationError(f"r_zero must be positive, got {r_zero}")
        if v_overdrive <= 0.0:
            raise ConfigurationError(f"v_overdrive must be positive, got {v_overdrive}")
        self.r_zero = float(r_zero)
        self.v_overdrive = float(v_overdrive)

    def resistance(self, current):
        """Exact triode on-resistance at ``current``.

        From ``I = k ((V_ov) V - V^2/2)`` with ``k = 1/(r_zero * V_ov)``,
        solving the quadratic for ``V_DS`` and returning ``V_DS / I``.
        The device must stay in the linear region: ``V_DS < V_ov`` requires
        ``I < V_ov / (2 r_zero)``; beyond that the current saturates and we
        clamp at the saturation boundary resistance.
        """
        i = np.abs(np.asarray(current, dtype=float))
        v_ov = self.v_overdrive
        k = 1.0 / (self.r_zero * v_ov)
        i_sat = 0.5 * k * v_ov * v_ov  # current where V_DS reaches V_ov
        i_clamped = np.minimum(i, i_sat * (1.0 - 1e-12))
        # V^2/2 - V_ov V + I/k = 0  ->  V = V_ov - sqrt(V_ov^2 - 2 I / k)
        v_ds = v_ov - np.sqrt(np.maximum(v_ov * v_ov - 2.0 * i_clamped / k, 0.0))
        with np.errstate(divide="ignore", invalid="ignore"):
            r = np.where(i_clamped > 0.0, v_ds / i_clamped, self.r_zero)
        if np.ndim(current) == 0:
            return float(r)
        return r

    def shift_between(self, i_first: float, i_second: float) -> float:
        """The physical ``ΔR_TR = R(i_first) - R(i_second)`` [Ω]."""
        return float(self.resistance(i_first) - self.resistance(i_second))

    def __repr__(self) -> str:
        return (
            f"LinearRegionTransistor(r_zero={self.r_zero:.1f}, "
            f"v_overdrive={self.v_overdrive:.2f})"
        )


#: The paper's access transistor: 917 Ω in the linear region (Table I).
PAPER_TRANSISTOR = FixedResistanceTransistor(r_on=917.0)
