"""Temperature dependence of MTJ parameters.

MgO-MTJ TMR decreases roughly linearly with temperature (magnon-assisted
tunneling), the parallel-state resistance is nearly temperature-independent,
and the thermal stability factor Δ = E/kT shrinks as 1/T (with the barrier
energy itself softening near the Curie temperature).  This module provides a
first-order derating so experiments can be re-run at elevated temperature —
an extension the paper leaves implicit (the test chip is measured at room
temperature).
"""

from __future__ import annotations

import dataclasses

from repro.device.mtj import MTJParams
from repro.errors import ConfigurationError
from repro.units import ROOM_TEMPERATURE

__all__ = ["ThermalModel", "derate_params"]


@dataclasses.dataclass(frozen=True)
class ThermalModel:
    """Linear temperature coefficients referenced to 300 K.

    Attributes
    ----------
    tmr_temp_coefficient:
        Fractional TMR loss per kelvin (typical MgO: ~0.1–0.2%/K).
    r_low_temp_coefficient:
        Fractional parallel-resistance change per kelvin (small, positive).
    barrier_softening:
        Fractional energy-barrier loss per kelvin (magnetization decay).
    """

    tmr_temp_coefficient: float = 1.5e-3
    r_low_temp_coefficient: float = 1.0e-4
    barrier_softening: float = 1.0e-3

    def __post_init__(self) -> None:
        if self.tmr_temp_coefficient < 0.0 or self.barrier_softening < 0.0:
            raise ConfigurationError("temperature coefficients must be non-negative")

    def tmr_at(self, tmr_300k: float, temperature: float) -> float:
        """TMR ratio at ``temperature`` [K]."""
        factor = 1.0 - self.tmr_temp_coefficient * (temperature - ROOM_TEMPERATURE)
        return max(tmr_300k * factor, 0.0)

    def thermal_stability_at(self, delta_300k: float, temperature: float) -> float:
        """Thermal stability factor Δ at ``temperature`` [K]:
        barrier softening plus the explicit 1/T of Δ = E/kT."""
        if temperature <= 0.0:
            raise ConfigurationError("temperature must be positive")
        barrier_factor = max(
            1.0 - self.barrier_softening * (temperature - ROOM_TEMPERATURE), 0.0
        )
        return delta_300k * barrier_factor * (ROOM_TEMPERATURE / temperature)


def derate_params(
    params: MTJParams,
    temperature: float,
    model: ThermalModel = ThermalModel(),
) -> MTJParams:
    """Return MTJ parameters derated to ``temperature`` [K].

    ``R_L`` moves with its (small) coefficient; ``R_H`` follows the derated
    TMR; both roll-off magnitudes scale with the resistance split so the
    roll-off *shape* is temperature-independent to first order.
    """
    if temperature <= 0.0:
        raise ConfigurationError("temperature must be positive")
    r_low = params.r_low * (
        1.0 + model.r_low_temp_coefficient * (temperature - ROOM_TEMPERATURE)
    )
    tmr = model.tmr_at(params.tmr, temperature)
    r_high = r_low * (1.0 + tmr)
    if r_high <= r_low:
        raise ConfigurationError(
            f"TMR collapses to zero at {temperature} K; device unusable"
        )
    split_scale = (r_high - r_low) / (params.r_high - params.r_low)
    return params.replace(
        r_low=r_low,
        r_high=r_high,
        dr_high_max=params.dr_high_max * split_scale,
        dr_low_max=params.dr_low_max * (r_low / params.r_low),
        thermal_stability=model.thermal_stability_at(
            params.thermal_stability, temperature
        ),
    )
