"""Spin-transfer-torque switching model.

Used by three parts of the reproduction:

* the **erase** and **write-back** steps of the conventional destructive
  self-reference scheme (a real write pulse through the cell);
* **read-disturb** analysis: the paper sets the maximum read current to 40%
  of the switching current so that a read never flips the bit — we quantify
  the residual flip probability (ablation A2 in DESIGN.md);
* the **hysteretic R–I sweep** of paper Fig. 2 (switching thresholds).

The model combines the two standard STT regimes:

* *Thermal activation* (``I < I_c0``, long pulses): Néel–Brown rate with a
  spin-torque-lowered barrier,
  ``P_sw = 1 - exp(-(t_p / τ0) · exp(-Δ (1 - I/I_c0)))``.
* *Precessional* (``I > I_c0``, short pulses): switching time inversely
  proportional to overdrive, ``t_sw ≈ c / (I/I_c0 - 1)``; we map it to a
  steep sigmoidal probability so the write pulse at the nominal write
  current succeeds with overwhelming probability.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from repro.device.mtj import MTJDevice, MTJParams, MTJState
from repro.errors import ConfigurationError

__all__ = ["SwitchingModel", "SwitchResult"]


@dataclasses.dataclass(frozen=True)
class SwitchResult:
    """Outcome of one attempted switching event."""

    switched: bool
    probability: float
    final_state: MTJState


class SwitchingModel:
    """Switching probability and critical-current model for one MTJ.

    Parameters
    ----------
    params:
        MTJ parameters supplying ``i_c0`` (critical current at the write
        pulse width), ``thermal_stability`` (Δ) and ``attempt_time`` (τ0).
    precessional_sharpness:
        Dimensionless steepness of the above-critical switching probability;
        larger = more deterministic writes.
    """

    def __init__(self, params: MTJParams, precessional_sharpness: float = 40.0):
        if precessional_sharpness <= 0.0:
            raise ConfigurationError("precessional_sharpness must be positive")
        self.params = params
        self.precessional_sharpness = float(precessional_sharpness)
        # Calibrate the reference attempt rate so the nominal write pulse
        # has its critical current exactly at i_c0: at I = I_c0 the thermal
        # expression gives P = 1 - exp(-t_p/τ0), i.e. ~1 for t_p >> τ0.
        self._tau0 = params.attempt_time

    # ------------------------------------------------------------------
    # Critical current vs pulse width (Sun / thermal-activation crossover)
    # ------------------------------------------------------------------
    def critical_current(self, pulse_width: Optional[float] = None) -> float:
        """Critical switching current [A] at the given pulse width.

        For pulses longer than the nominal write pulse the thermal-activation
        regime lowers the threshold logarithmically:

            I_c(t) = I_c0 · (1 - (1/Δ) ln(t / t_write))

        For shorter pulses the precessional regime raises it:

            I_c(t) = I_c0 · (1 + t_write / t · 0.1)

        clamped to stay positive.
        """
        p = self.params
        if pulse_width is None:
            return p.i_c0
        if pulse_width <= 0.0:
            raise ConfigurationError("pulse_width must be positive")
        if pulse_width >= p.pulse_width_write:
            factor = 1.0 - math.log(pulse_width / p.pulse_width_write) / p.thermal_stability
            return max(p.i_c0 * factor, 0.0)
        return p.i_c0 * (1.0 + 0.1 * (p.pulse_width_write / pulse_width - 1.0))

    # ------------------------------------------------------------------
    # Switching probability
    # ------------------------------------------------------------------
    def switch_probability(self, current, pulse_width: float):
        """Probability that a pulse of the given magnitude/width flips the
        free layer (direction assumed favourable).  Vectorized in
        ``current``.
        """
        if pulse_width <= 0.0:
            raise ConfigurationError("pulse_width must be positive")
        p = self.params
        i = np.abs(np.asarray(current, dtype=float))
        overdrive = i / p.i_c0

        # Thermal-activation branch (valid below critical current).
        barrier = p.thermal_stability * np.clip(1.0 - overdrive, 0.0, None)
        # Guard the exponent to avoid overflow warnings for huge barriers.
        log_rate = np.where(barrier < 700.0, -barrier, -700.0)
        rate = np.exp(log_rate) / self._tau0
        p_thermal = 1.0 - np.exp(-np.minimum(rate * pulse_width, 700.0))

        # Precessional branch: sharp turn-on above I_c0 scaled by how many
        # precessional switching times fit in the pulse.
        with np.errstate(over="ignore"):
            p_prec = 1.0 - np.exp(
                -self.precessional_sharpness
                * np.clip(overdrive - 1.0, 0.0, None)
                * (pulse_width / p.pulse_width_write)
            )

        prob = np.maximum(p_thermal, p_prec)
        prob = np.clip(prob, 0.0, 1.0)
        if np.ndim(current) == 0:
            return float(prob)
        return prob

    def read_disturb_probability(self, read_current: float, read_time: float) -> float:
        """Probability that a single read pulse flips the bit.

        At the paper's operating point (200 µA read = 40% of I_c0, ~15 ns)
        this is astronomically small — the quantitative justification for
        choosing ``I_max``.
        """
        return float(self.switch_probability(read_current, read_time))

    def write_error_rate(self, write_current: float, pulse_width: Optional[float] = None) -> float:
        """Probability a correctly-directed write pulse FAILS to switch the
        bit (WER).  The destructive scheme issues two such pulses per read;
        its data integrity rests on this staying tiny at the chosen
        overdrive."""
        width = pulse_width if pulse_width is not None else self.params.pulse_width_write
        return 1.0 - float(self.switch_probability(write_current, width))

    def mean_time_to_disturb(self, read_current: float) -> float:
        """Expected time under constant ``read_current`` until a thermal flip
        occurs [s] (Néel–Brown inverse rate)."""
        p = self.params
        overdrive = abs(read_current) / p.i_c0
        barrier = p.thermal_stability * max(1.0 - overdrive, 0.0)
        if barrier >= 700.0:
            return math.inf
        return self._tau0 * math.exp(barrier)

    # ------------------------------------------------------------------
    # Applying pulses to a device
    # ------------------------------------------------------------------
    def apply_pulse(
        self,
        device: MTJDevice,
        current: float,
        pulse_width: float,
        rng: Optional[np.random.Generator] = None,
    ) -> SwitchResult:
        """Apply a signed current pulse to ``device`` and (possibly) flip it.

        Sign convention per paper Fig. 1/2: positive current drives
        anti-parallel → parallel (write "0"); negative drives parallel →
        anti-parallel (write "1").  A pulse in the non-favourable direction
        never switches.
        """
        favourable = (
            (current > 0.0 and device.state is MTJState.ANTIPARALLEL)
            or (current < 0.0 and device.state is MTJState.PARALLEL)
        )
        if not favourable:
            return SwitchResult(False, 0.0, device.state)
        probability = self.switch_probability(current, pulse_width)
        if rng is None:
            switched = probability >= 0.5
        else:
            switched = bool(rng.random() < probability)
        if switched:
            device.state = device.state.opposite
        return SwitchResult(switched, probability, device.state)

    def write_bit(
        self,
        device: MTJDevice,
        bit: int,
        write_current: Optional[float] = None,
        pulse_width: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> SwitchResult:
        """Write a logical bit with a properly directed pulse.

        Uses 1.5× the critical current by default, matching a realistic
        write-driver overdrive.  Writing the already-stored value is a no-op
        reported as ``switched = False`` with probability 1.
        """
        target = MTJState.from_bit(bit)
        if device.state is target:
            return SwitchResult(False, 1.0, device.state)
        magnitude = write_current if write_current is not None else 1.5 * self.params.i_c0
        width = pulse_width if pulse_width is not None else self.params.pulse_width_write
        signed = magnitude if target is MTJState.PARALLEL else -magnitude
        return self.apply_pulse(device, signed, width, rng)
