"""Read cache / row-buffer layer with hit-miss accounting.

A small fully-associative LRU cache in front of the banks: a read that
hits is served at SRAM-buffer speed without occupying a bank at all — the
service analogue of a DRAM row-buffer hit.  Writes invalidate their
address (write-through to the array, no dirty state to manage), so the
cache can never serve stale data even when a destructive read or an
injected fault changes the underlying cells.

The cache is deterministic (pure LRU, no randomized replacement) and
keeps its own counters; :func:`repro.service.report.publish_report`
mirrors them into ``service.cache.*`` metrics when observability is on.
"""

from __future__ import annotations

import collections
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["ReadCache"]


class ReadCache:
    """Fully-associative LRU read cache over word addresses.

    Parameters
    ----------
    capacity:
        Number of word addresses held; 0 disables the cache (every
        lookup misses, nothing is stored).
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._lines: "collections.OrderedDict[int, Optional[int]]" = collections.OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._lines)

    def __contains__(self, address: int) -> bool:
        return address in self._lines

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction over all lookups (0.0 before any lookup)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def lookup(self, address: int) -> bool:
        """True on a hit (refreshes recency); counts the outcome."""
        if address in self._lines:
            self._lines.move_to_end(address)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, address: int, value: Optional[int] = None) -> None:
        """Insert an address after a miss was served from the banks."""
        if self.capacity == 0:
            return
        if address in self._lines:
            self._lines.move_to_end(address)
            self._lines[address] = value
            return
        if len(self._lines) >= self.capacity:
            self._lines.popitem(last=False)
            self.evictions += 1
        self._lines[address] = value

    def peek(self, address: int) -> Optional[int]:
        """Cached value without touching recency or counters."""
        return self._lines.get(address)

    def invalidate(self, address: int) -> bool:
        """Drop an address (a write made it stale); True if present."""
        if address in self._lines:
            del self._lines[address]
            self.invalidations += 1
            return True
        return False

    def clear(self) -> None:
        """Drop every line (counters are preserved)."""
        self._lines.clear()

    def resize(self, capacity: int) -> None:
        """Change the capacity in place (the adaptive controller's knob).

        Shrinking evicts least-recently-used lines (counted as
        evictions); growing keeps every resident line.  Resizing to 0
        disables the cache and drops everything.
        """
        if capacity < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        while len(self._lines) > self.capacity:
            self._lines.popitem(last=False)
            self.evictions += 1

    def statistics(self) -> dict:
        """Counters as a plain dict (report/JSON friendly)."""
        return {
            "capacity": self.capacity,
            "lines": len(self._lines),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }
