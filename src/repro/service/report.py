"""Service-level summaries: throughput, latency percentiles, saturation.

A :class:`ServiceReport` condenses one controller run into plain frozen
dataclasses (floats, ints, tuples all the way down), so two reports
compare with ``==`` — the equality check behind ``repro serve --check``,
which demands a replayed trace reproduce the live run **exactly**.

:func:`publish_report` mirrors the headline numbers into
:mod:`repro.obs` gauges (``service.*``), complementing the per-request
counters and histograms the controller emits live, and
:func:`find_saturation_rate` locates the knee of the latency curve — the
highest offered rate a scheme sustains before queueing blows its mean
read latency past ``slowdown_limit`` unloaded read times.  The paper's
§V saturation-gap claim is exactly the ratio of that knee between the
nondestructive and destructive schemes
(``benchmarks/bench_service_throughput.py``).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, FaultError
from repro.obs import runtime as _obs

__all__ = [
    "LatencyStats",
    "QueueStats",
    "ServiceReport",
    "build_report",
    "publish_report",
    "find_saturation_rate",
]


@dataclasses.dataclass(frozen=True)
class LatencyStats:
    """Latency distribution summary [s]."""

    count: int
    mean: float
    p50: float
    p99: float
    p999: float
    max: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        """Summarize samples (all-zero stats for an empty sequence)."""
        values = np.asarray(samples, dtype=float)
        if values.size == 0:
            return cls(count=0, mean=0.0, p50=0.0, p99=0.0, p999=0.0, max=0.0)
        return cls(
            count=int(values.size),
            mean=float(np.mean(values)),
            p50=float(np.percentile(values, 50.0)),
            p99=float(np.percentile(values, 99.0)),
            p999=float(np.percentile(values, 99.9)),
            max=float(np.max(values)),
        )


@dataclasses.dataclass(frozen=True)
class QueueStats:
    """Per-bank queue depth, sampled at every service start."""

    samples: int
    mean_depth: float
    max_depth: int

    @classmethod
    def from_samples(cls, samples: Sequence[int]) -> "QueueStats":
        values = np.asarray(samples, dtype=float)
        if values.size == 0:
            return cls(samples=0, mean_depth=0.0, max_depth=0)
        return cls(
            samples=int(values.size),
            mean_depth=float(np.mean(values)),
            max_depth=int(values.max()),
        )


@dataclasses.dataclass(frozen=True)
class ServiceReport:
    """One controller run, condensed and ``==``-comparable."""

    scheme: str
    policy: str
    banks: int
    offered_rate: float      #: configured arrival rate [1/s] (0 = unknown)
    read_time: float         #: unloaded read occupancy [s]
    requests: int
    completed: int
    reads: int
    writes: int
    cache_hits: int
    cache_hit_rate: float
    batches: int             #: coalesced groups of size > 1
    retried_words: int
    failed_words: int
    corrupted_words: int
    duration: float          #: makespan: last completion time [s]
    throughput: float        #: completed / duration [1/s]
    read_latency: LatencyStats
    write_latency: LatencyStats
    queue_depth: QueueStats
    bank_served: Tuple[int, ...]
    # Adaptive-serving accounting (all zero for a static run, so reports
    # from before the adaptive layer compare unchanged).  Every request
    # is either served (``completed``) or shed — nothing escapes
    # silently: ``requests == completed + shed`` on a drained run.
    shed: int = 0                #: rejected by admission control
    shed_low_priority: int = 0   #: of which priority > 0
    scrubbed_words: int = 0      #: background scrub rewrites
    adaptive_actions: int = 0    #: actuator steps the controller applied
    adaptive_alarms: int = 0     #: healthy → breached transitions
    # Resilience accounting (all zero unless deadlines, hedging,
    # controller retries, failover, or a crash were in play, so reports
    # from before the resilience layer compare unchanged).  The full
    # conservation invariant a drained run must satisfy is
    # ``requests == completed + shed + timed_out + failed_requests``
    # (:meth:`check_conservation`).
    timed_out: int = 0           #: deadline expired before service
    failed_requests: int = 0     #: terminal failures (no served response)
    detected_loss: int = 0       #: served completions flagged failed
    hedged: int = 0              #: reads cloned to a sibling bank
    hedge_wins: int = 0          #: of which the clone finished first
    request_retries: int = 0     #: controller-level re-queues performed

    @property
    def shed_rate(self) -> float:
        """Fraction of submitted requests shed by admission control."""
        return self.shed / self.requests if self.requests else 0.0

    @property
    def availability(self) -> float:
        """Fraction of submitted requests served with a real response."""
        return self.completed / self.requests if self.requests else 1.0

    def check_conservation(self) -> "ServiceReport":
        """Enforce ``requests == completed + shed + timed_out + failed``.

        Raises :class:`~repro.errors.FaultError` when a drained run lost
        track of a request — the invariant that makes "zero silent
        escapes" checkable at the request level.  Returns ``self`` so the
        call chains.
        """
        accounted = (
            self.completed + self.shed + self.timed_out + self.failed_requests
        )
        if self.requests != accounted:
            raise FaultError(
                f"request conservation violated: {self.requests} submitted "
                f"but {accounted} accounted for ({self.completed} completed "
                f"+ {self.shed} shed + {self.timed_out} timed out + "
                f"{self.failed_requests} failed)"
            )
        return self

    @property
    def read_slowdown(self) -> float:
        """Mean read latency over the unloaded read time."""
        return self.read_latency.mean / self.read_time if self.read_time else 0.0

    def to_dict(self) -> dict:
        """Plain nested dict (JSON-friendly)."""
        return dataclasses.asdict(self)


def build_report(
    controller,
    scheme: str = "",
    offered_rate: float = 0.0,
) -> ServiceReport:
    """Summarize a drained :class:`~repro.service.controller.MemoryController`.

    Latency arrays are assembled in ``request_id`` order, so the summary
    is a pure function of the completion set — independent of the order
    events happened to fire in.
    """
    ordered = sorted(controller.completions, key=lambda c: c.request.request_id)
    completions = [
        c for c in ordered if not (c.shed or c.timed_out or c.unreachable)
    ]
    shed_requests = [c for c in ordered if c.shed]
    timed_out = sum(1 for c in ordered if c.timed_out)
    failed_requests = sum(1 for c in ordered if c.unreachable)
    detected_loss = sum(1 for c in completions if c.failed)
    read_latencies = [c.latency for c in completions if c.request.is_read]
    write_latencies = [c.latency for c in completions if not c.request.is_read]
    cache_hits = sum(1 for c in completions if c.cache_hit)
    reads = len(read_latencies)
    batches = len({
        (c.bank, c.start) for c in completions if c.batched_with > 1
    })
    backend = controller.backend
    adaptive = getattr(controller, "adaptive", None)
    duration = max((c.finish for c in completions), default=0.0)
    completed = len(completions)
    return ServiceReport(
        scheme=scheme,
        policy=controller.policy,
        banks=controller.config.banks,
        offered_rate=offered_rate,
        read_time=controller.config.read_time,
        requests=controller.submitted,
        completed=completed,
        reads=reads,
        writes=len(write_latencies),
        cache_hits=cache_hits,
        cache_hit_rate=cache_hits / reads if reads else 0.0,
        batches=batches,
        retried_words=backend.retried_words if backend else 0,
        failed_words=backend.failed_words if backend else 0,
        corrupted_words=backend.corrupted_words if backend else 0,
        duration=duration,
        throughput=completed / duration if duration > 0.0 else 0.0,
        read_latency=LatencyStats.from_samples(read_latencies),
        write_latency=LatencyStats.from_samples(write_latencies),
        queue_depth=QueueStats.from_samples(controller.depth_samples),
        bank_served=controller.bank_served_counts(),
        shed=len(shed_requests),
        shed_low_priority=sum(
            1 for c in shed_requests if c.request.priority > 0
        ),
        scrubbed_words=backend.scrubbed_words if backend else 0,
        adaptive_actions=adaptive.actions if adaptive else 0,
        adaptive_alarms=adaptive.alarms if adaptive else 0,
        timed_out=timed_out,
        failed_requests=failed_requests,
        detected_loss=detected_loss,
        hedged=getattr(controller, "hedged", 0),
        hedge_wins=getattr(controller, "hedge_wins", 0),
        request_retries=getattr(controller, "retries_performed", 0),
    )


def publish_report(report: ServiceReport) -> None:
    """Mirror a report's headline numbers into ``service.*`` obs gauges.

    No-op when observability is off.  Labels carry the scheme and policy
    so sweeps (one report per offered rate) stay distinguishable.
    """
    if not _obs.active():
        return
    registry = _obs.get_registry()
    labels = {"scheme": report.scheme or "untyped", "policy": report.policy}
    registry.set_gauge("service.throughput_rps", report.throughput, **labels)
    registry.set_gauge("service.offered_rate_rps", report.offered_rate, **labels)
    registry.set_gauge(
        "service.read_latency_mean_ns", report.read_latency.mean * 1e9, **labels
    )
    registry.set_gauge(
        "service.read_latency_p99_ns", report.read_latency.p99 * 1e9, **labels
    )
    registry.set_gauge(
        "service.read_latency_p999_ns", report.read_latency.p999 * 1e9, **labels
    )
    registry.set_gauge(
        "service.queue_depth_mean", report.queue_depth.mean_depth, **labels
    )
    registry.set_gauge("service.cache_hit_rate", report.cache_hit_rate, **labels)
    registry.set_gauge("service.shed_requests", report.shed, **labels)
    registry.set_gauge("service.shed_rate", report.shed_rate, **labels)
    registry.set_gauge("service.timed_out_requests", report.timed_out, **labels)
    registry.set_gauge(
        "service.failed_requests_total", report.failed_requests, **labels
    )
    registry.set_gauge("service.availability", report.availability, **labels)
    registry.set_gauge(
        "service.adaptive.actions_total", report.adaptive_actions, **labels
    )


def find_saturation_rate(
    simulate: Callable[[float], ServiceReport],
    low: float,
    high: float,
    read_time: float,
    slowdown_limit: float = 4.0,
    tolerance: float = 0.05,
    max_expansions: int = 6,
) -> float:
    """Highest sustained offered rate [1/s] before the latency knee.

    ``simulate(rate)`` must run one fixed-seed simulation at that rate and
    return its report.  A rate is *sustained* while the mean read latency
    stays within ``slowdown_limit`` unloaded read times; the boundary is
    bisected until the bracket is within ``tolerance`` (relative) and the
    sustained end is returned.

    Corner behaviors (regression-pinned in
    ``tests/test_service.py::TestSaturationSearch``):

    * **Bracket expansion is capped.**  While ``high`` itself is still
      sustained the bracket slides up (``low = high; high *= 2``), at
      most ``max_expansions`` times.  A workload that never saturates
      therefore does not loop forever: after the last expansion the
      search returns the last *sustained* ``low`` — a lower bound on the
      knee, reached after exactly ``max_expansions + 1`` probes and no
      bisection.
    * **Degenerate brackets are rejected up front.**  ``low <= 0``,
      ``high <= low`` (inverted or empty), and ``read_time <= 0`` all
      raise :class:`~repro.errors.ConfigurationError` before any
      simulation runs.  A ``low`` that is already saturated also raises,
      since no sustained rate is bracketed.
    """
    if low <= 0.0 or high <= low:
        raise ConfigurationError(
            f"need 0 < low < high, got low={low}, high={high}"
        )
    if read_time <= 0.0:
        raise ConfigurationError(f"read_time must be positive, got {read_time}")

    def sustained(rate: float) -> bool:
        report = simulate(rate)
        return report.read_latency.mean <= slowdown_limit * read_time

    if not sustained(low):
        raise ConfigurationError(
            f"low rate {low} is already saturated; lower the starting bracket"
        )
    expansions = 0
    while sustained(high):
        low = high
        high *= 2.0
        expansions += 1
        if expansions >= max_expansions:
            return low
    while (high - low) > tolerance * low:
        mid = 0.5 * (low + high)
        if sustained(mid):
            low = mid
        else:
            high = mid
    return low
