"""Deterministic structural failure scenarios for the serving stack.

Where :mod:`repro.faults` models per-bit device faults and
:mod:`repro.faults.drift` models slow environmental drift, this module
models *structural* failures — whole components misbehaving for a window
of simulated time, the hard-fault classes the STT-MRAM testing survey
catalogs beyond per-cell transients:

* ``controller-stall`` — every occupancy stretches by a stall factor
  (a thermal throttle or a firmware hiccup inflating latency);
* ``bank-offline`` — one bank stops starting new service; queued and
  arriving requests wait (or time out) until it heals;
* ``sense-lockup`` — one bank's sense amplifiers latch: reads occupy the
  bank but return detected losses until released (writes unaffected);
* ``channel-outage`` — a whole channel disappears from the topology;
  handled by the failover path in :mod:`repro.service.topology`, never by
  a single flat controller.

Scenarios are plain data (frozen dataclasses) scheduled on the event
calendar by :func:`install_failures` — the same architecture as
:func:`repro.faults.drift.install_drift`.  Randomized scenario geometry
draws from the **reserved stream** ``(seed, 7)`` (`_FAILURE_STREAM`),
which nothing else in the library touches, so enabling the failure layer
can never shift a workload, sensing, or drift draw and existing traces
stay byte-identical.

:func:`run_chaos_campaign` sweeps every scenario under live traffic and
gates the three resilience invariants (see ``docs/RESILIENCE.md``):
zero silent escapes, request conservation
(``requests == completed + shed + timed_out + failed``), and an
availability floor — plus bit-exact journal replay for the
crash/restart scenario.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError, FaultError
from repro.obs import runtime as _obs
from repro.streams import FAILURE_STREAM, stream_rng

__all__ = [
    "CONTROLLER_STALL",
    "BANK_OFFLINE",
    "SENSE_LOCKUP",
    "CHANNEL_OUTAGE",
    "CRASH_RESTART",
    "FAILURE_KINDS",
    "CHAOS_SCENARIOS",
    "FailureEvent",
    "FailureScenario",
    "controller_stall",
    "bank_offline",
    "sense_amp_lockup",
    "channel_outage",
    "build_failure_scenario",
    "install_failures",
    "ChaosRow",
    "ChaosCampaignResult",
    "run_chaos_campaign",
]

#: Reserved RNG stream for failure-scenario geometry: ``(seed, 7)``,
#: allocated in the central :mod:`repro.streams` registry (streams 0-5
#: belong to build/fault/read/stats/workload/drift, 6 to the topology
#: seed split, 8 to prodtest) — see ``docs/RESILIENCE.md``.
_FAILURE_STREAM = FAILURE_STREAM

CONTROLLER_STALL = "controller-stall"
BANK_OFFLINE = "bank-offline"
SENSE_LOCKUP = "sense-lockup"
CHANNEL_OUTAGE = "channel-outage"
#: Not a :class:`FailureEvent` kind: the crash/restart scenario is a
#: two-phase driver (:func:`repro.service.journal.run_crash_restart`),
#: not a calendar event — but the chaos campaign sweeps it alongside.
CRASH_RESTART = "crash-restart"

FAILURE_KINDS: Tuple[str, ...] = (
    CONTROLLER_STALL, BANK_OFFLINE, SENSE_LOCKUP, CHANNEL_OUTAGE,
)
#: Everything :func:`run_chaos_campaign` sweeps by default.
CHAOS_SCENARIOS: Tuple[str, ...] = FAILURE_KINDS + (CRASH_RESTART,)


@dataclasses.dataclass(frozen=True)
class FailureEvent:
    """One structural failure window on the calendar.

    ``target`` is a bank index (``bank-offline``/``sense-lockup``) or a
    channel index (``channel-outage``); ``controller-stall`` ignores it.
    ``stall_factor`` only applies to ``controller-stall``.
    """

    kind: str
    start: float        #: window start [s]
    duration: float     #: window length [s]
    target: int = 0
    stall_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ConfigurationError(
                f"unknown failure kind {self.kind!r}; expected one of "
                f"{FAILURE_KINDS}"
            )
        if self.start < 0.0:
            raise ConfigurationError(f"start must be >= 0, got {self.start}")
        if self.duration <= 0.0:
            raise ConfigurationError(
                f"duration must be > 0, got {self.duration}"
            )
        if self.target < 0:
            raise ConfigurationError(f"target must be >= 0, got {self.target}")
        if self.kind == CONTROLLER_STALL and self.stall_factor <= 1.0:
            raise ConfigurationError(
                f"stall_factor must be > 1 for a stall, got {self.stall_factor}"
            )

    @property
    def end(self) -> float:
        """Window end [s] — the heal/release instant."""
        return self.start + self.duration


@dataclasses.dataclass(frozen=True)
class FailureScenario:
    """A named, time-ordered set of failure windows."""

    name: str
    events: Tuple[FailureEvent, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if not self.events:
            raise ConfigurationError(
                "a failure scenario needs at least one event"
            )
        starts = [event.start for event in self.events]
        if starts != sorted(starts):
            raise ConfigurationError(
                "failure events must be ordered by start time"
            )

    @property
    def kinds(self) -> Tuple[str, ...]:
        """Distinct event kinds, in first-appearance order."""
        seen = []
        for event in self.events:
            if event.kind not in seen:
                seen.append(event.kind)
        return tuple(seen)

    def outage_windows(self) -> Tuple[Tuple[int, float, float], ...]:
        """``(channel, start, end)`` for every channel-outage event —
        the shape :meth:`repro.service.topology.ShardRouter.split_with_failover`
        consumes."""
        return tuple(
            (event.target, event.start, event.end)
            for event in self.events
            if event.kind == CHANNEL_OUTAGE
        )


# ----------------------------------------------------------------------
# Scenario builders
# ----------------------------------------------------------------------
def controller_stall(
    start: float, duration: float, stall_factor: float = 8.0,
    name: str = CONTROLLER_STALL,
) -> FailureScenario:
    """Every occupancy stretches by ``stall_factor`` during the window."""
    return FailureScenario(name, (
        FailureEvent(CONTROLLER_STALL, start, duration,
                     stall_factor=stall_factor),
    ))


def bank_offline(
    start: float, duration: float, bank: int = 0, name: str = BANK_OFFLINE,
) -> FailureScenario:
    """One bank stops serving for the window, then heals and drains."""
    return FailureScenario(name, (
        FailureEvent(BANK_OFFLINE, start, duration, target=bank),
    ))


def sense_amp_lockup(
    start: float, duration: float, bank: int = 0, name: str = SENSE_LOCKUP,
) -> FailureScenario:
    """One bank's sense amps latch for the window: reads are detected
    losses until release (the nondestructive scheme's stored data
    survives — nothing was disturbed — so post-release reads succeed)."""
    return FailureScenario(name, (
        FailureEvent(SENSE_LOCKUP, start, duration, target=bank),
    ))


def channel_outage(
    start: float, duration: float, channel: int = 0, name: str = CHANNEL_OUTAGE,
) -> FailureScenario:
    """A whole channel disappears for the window (topology runs only)."""
    return FailureScenario(name, (
        FailureEvent(CHANNEL_OUTAGE, start, duration, target=channel),
    ))


def build_failure_scenario(
    name: str,
    span: float,
    *,
    seed: int = 2010,
    banks: int = 4,
    channels: int = 1,
    stall_factor: float = 8.0,
) -> FailureScenario:
    """A deterministic mid-trace scenario scaled to a trace of ``span`` [s].

    Window geometry (onset ~25-40% in, length ~25-40% of the trace) and
    the struck bank/channel draw from the reserved ``(seed, 7)`` stream —
    three draws regardless of kind, so every scenario under one seed
    shares the same window and the stream position never depends on which
    scenario ran.
    """
    if span <= 0.0:
        raise ConfigurationError(f"span must be > 0, got {span}")
    rng = stream_rng(seed, "failures")
    onset = float(rng.uniform(0.25, 0.40)) * span
    duration = float(rng.uniform(0.25, 0.40)) * span
    pool = channels if name == CHANNEL_OUTAGE else banks
    target = int(rng.integers(0, max(1, pool)))
    if name == CONTROLLER_STALL:
        return controller_stall(onset, duration, stall_factor=stall_factor)
    if name == BANK_OFFLINE:
        return bank_offline(onset, duration, bank=target)
    if name == SENSE_LOCKUP:
        return sense_amp_lockup(onset, duration, bank=target)
    if name == CHANNEL_OUTAGE:
        return channel_outage(onset, duration, channel=target)
    raise ConfigurationError(
        f"unknown failure scenario {name!r}; expected one of {FAILURE_KINDS}"
    )


# ----------------------------------------------------------------------
# Installation
# ----------------------------------------------------------------------
def install_failures(engine, controller, scenario: FailureScenario) -> int:
    """Schedule a scenario's failure and heal events on the calendar.

    Every window schedules both its onset *and* its heal, so queues
    always drain and the conservation invariant stays checkable.  Returns
    the number of calendar events added.  Channel outages are a topology
    concern (pass the scenario to
    :func:`repro.service.topology.simulate_topology` instead) and are
    rejected here.
    """
    count = 0
    for event in scenario.events:
        if event.kind == CHANNEL_OUTAGE:
            raise ConfigurationError(
                "channel-outage scenarios install at the topology layer "
                "(simulate_topology(failures=...)), not on one controller"
            )
        if event.kind == CONTROLLER_STALL:
            engine.schedule_at(
                event.start, controller.set_stall_factor, event.stall_factor
            )
            engine.schedule_at(event.end, controller.set_stall_factor, 1.0)
        elif event.kind == BANK_OFFLINE:
            engine.schedule_at(
                event.start, controller.set_bank_offline, event.target
            )
            engine.schedule_at(
                event.end, controller.set_bank_online, event.target
            )
        else:  # SENSE_LOCKUP
            engine.schedule_at(event.start, controller.lock_bank, event.target)
            engine.schedule_at(event.end, controller.unlock_bank, event.target)
        count += 2
    if _obs.active():
        _obs.get_registry().inc(
            "service.failures.scenarios", scenario=scenario.name
        )
    return count


# ----------------------------------------------------------------------
# Chaos campaign
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ChaosRow:
    """One scenario's outcome under traffic."""

    scenario: str
    requests: int
    completed: int
    shed: int
    timed_out: int
    failed_requests: int
    detected_loss: int     #: served completions flagged as detected loss
    corrupted_words: int   #: silent escapes — must stay 0
    retries: int
    hedged: int
    conserved: bool
    bit_exact: bool = True  #: journal-replay gate (crash-restart only)

    @property
    def availability(self) -> float:
        """Fraction of offered requests served with a real response."""
        return self.completed / self.requests if self.requests else 1.0


@dataclasses.dataclass(frozen=True)
class ChaosCampaignResult:
    """Every scenario's row plus the acceptance gate."""

    scheme: str
    seed: int
    bits: int
    availability_floor: float
    rows: Tuple[ChaosRow, ...]

    def check(self) -> "ChaosCampaignResult":
        """Raise :class:`~repro.errors.FaultError` unless every scenario
        conserved its requests, escaped nothing silently, replayed
        bit-exactly, and cleared the availability floor."""
        for row in self.rows:
            if not row.conserved:
                raise FaultError(
                    f"{row.scenario}: request conservation violated "
                    f"({row.requests} != {row.completed} + {row.shed} + "
                    f"{row.timed_out} + {row.failed_requests})"
                )
            if row.corrupted_words:
                raise FaultError(
                    f"{row.scenario}: {row.corrupted_words} silent escapes"
                )
            if not row.bit_exact:
                raise FaultError(
                    f"{row.scenario}: journal replay not bit-exact"
                )
            if row.availability < self.availability_floor:
                raise FaultError(
                    f"{row.scenario}: availability {row.availability:.3f} "
                    f"below floor {self.availability_floor:.3f}"
                )
        return self

    def to_dict(self) -> dict:
        """JSON-friendly view (benchmark artifacts)."""
        return {
            "scheme": self.scheme,
            "seed": self.seed,
            "bits": self.bits,
            "availability_floor": self.availability_floor,
            "scenarios": {
                row.scenario: {
                    "requests": row.requests,
                    "completed": row.completed,
                    "shed": row.shed,
                    "timed_out": row.timed_out,
                    "failed_requests": row.failed_requests,
                    "detected_loss": row.detected_loss,
                    "corrupted_words": row.corrupted_words,
                    "retries": row.retries,
                    "hedged": row.hedged,
                    "availability": row.availability,
                    "conserved": row.conserved,
                    "bit_exact": row.bit_exact,
                }
                for row in self.rows
            },
        }


def _row_from_report(
    scenario: str, report, *, retries: int = 0, hedged: int = 0,
    bit_exact: bool = True,
) -> ChaosRow:
    conserved = True
    try:
        report.check_conservation()
    except FaultError:
        conserved = False
    return ChaosRow(
        scenario=scenario,
        requests=report.requests,
        completed=report.completed,
        shed=report.shed,
        timed_out=report.timed_out,
        failed_requests=report.failed_requests,
        detected_loss=report.detected_loss,
        corrupted_words=report.corrupted_words,
        retries=retries,
        hedged=hedged,
        conserved=conserved,
        bit_exact=bit_exact,
    )


def run_chaos_campaign(
    requests: int = 400,
    *,
    scheme: str = "nondestructive",
    seed: int = 2010,
    bits: int = 2304,
    rate: float = 2.0e8,
    write_fraction: float = 0.1,
    availability_floor: float = 0.5,
    channels: int = 4,
    scenarios: Tuple[str, ...] = CHAOS_SCENARIOS,
) -> ChaosCampaignResult:
    """Sweep every failure scenario under live backed traffic.

    Each scenario runs the full serving stack with the relevant
    robustness feature engaged — deadlines under a stall, deadlines plus
    hedged reads across a bank outage, controller retries through a
    sense-amp lockup, degraded-mode failover through a channel outage,
    and a mid-trace crash with journal replay — then scores the
    invariants :meth:`ChaosCampaignResult.check` gates.
    """
    from repro.service.controller import (
        ControllerConfig, build_backend, scheme_service_times,
        simulate_service,
    )
    from repro.service.journal import run_crash_restart
    from repro.service.topology import Topology, simulate_topology
    from repro.service.workload import build_workload

    read_time, write_time = scheme_service_times(scheme)
    rows = []
    for name in scenarios:
        rng = np.random.default_rng((seed, 0))
        if name == CHANNEL_OUTAGE:
            topology = Topology(channels=channels, ranks=1, banks=4, rows=64)
            stream = build_workload(
                rate=rate, addresses=topology.capacity,
                write_fraction=write_fraction,
            )
            reqs = stream.generate(requests, rng)
            span = max(r.time for r in reqs)
            scenario = build_failure_scenario(
                name, span, seed=seed, channels=channels
            )
            report = simulate_topology(
                reqs, topology,
                read_time=read_time, write_time=write_time,
                scheme=scheme, offered_rate=rate,
                backed=True, backend_bits=bits, seed=seed,
                failures=scenario,
            ).merged
            rows.append(_row_from_report(name, report))
            continue
        if name == CRASH_RESTART:
            backend, _ = build_backend(scheme, seed, bits=bits)
            stream = build_workload(
                rate=rate, addresses=backend.size_words, write_fraction=0.35,
            )
            reqs = stream.generate(requests, rng)
            span = max(r.time for r in reqs)
            result = run_crash_restart(
                reqs, crash_time=0.5 * span, scheme=scheme, seed=seed,
                bits=bits,
            )
            rows.append(ChaosRow(
                scenario=name,
                requests=result.requests,
                completed=result.completed,
                shed=result.shed,
                timed_out=result.timed_out,
                failed_requests=result.failed_requests,
                detected_loss=result.detected_loss,
                corrupted_words=result.corrupted_words,
                retries=0,
                hedged=0,
                conserved=result.conserved,
                bit_exact=result.bit_exact,
            ))
            continue
        backend, retry_policy = build_backend(scheme, seed, bits=bits)
        stream = build_workload(
            rate=rate, addresses=backend.size_words,
            write_fraction=write_fraction,
        )
        reqs = stream.generate(requests, rng)
        span = max(r.time for r in reqs)
        scenario = build_failure_scenario(name, span, seed=seed, banks=4)
        if name == CONTROLLER_STALL:
            # Deadlines expose the stall as timeouts instead of a tail.
            slack = 25.0 * read_time
            reqs = tuple(
                dataclasses.replace(r, deadline=r.time + slack) for r in reqs
            )
            config = ControllerConfig(read_time, write_time, banks=4)
        elif name == BANK_OFFLINE:
            # Hedged reads ride around the dead bank; writes must wait
            # for the heal, so deadlines bound their exposure too.
            slack = 60.0 * read_time
            reqs = tuple(
                dataclasses.replace(r, deadline=r.time + slack) for r in reqs
            )
            config = ControllerConfig(
                read_time, write_time, banks=4,
                hedge_after=10.0 * read_time,
            )
        else:  # SENSE_LOCKUP
            config = ControllerConfig(
                read_time, write_time, banks=4,
                request_retries=2, retry_backoff=4.0 * read_time,
            )
        report = simulate_service(
            reqs, config, backend=backend, retry_policy=retry_policy,
            scheme=scheme, offered_rate=rate, failures=scenario,
        )
        rows.append(_row_from_report(
            name, report,
            retries=report.request_retries, hedged=report.hedged,
        ))
    return ChaosCampaignResult(
        scheme=scheme,
        seed=seed,
        bits=bits,
        availability_floor=availability_floor,
        rows=tuple(rows),
    )
