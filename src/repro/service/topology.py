"""Sharded channel → rank → bank topology for the serving layer.

One :class:`~repro.service.controller.MemoryController` over a flat
handful of banks is nothing like the organization a deployed part has.
This module builds the hierarchy a real deployment uses — ``channels``
independent channels, each with ``ranks × banks`` banks of ``rows``
words — and fans one request stream across it:

* :class:`Topology` — the geometry (``CxRxB`` plus rows per bank) and
  its derived address-space ``capacity``;
* **interleavers** — pluggable bijections between a flat logical address
  and a ``(channel, rank, bank, row)`` coordinate:
  ``row-major`` (consecutive addresses fill one bank's rows first — a
  hot region concentrates), ``channel-striped`` (the low address bits
  pick the channel, so consecutive and Zipf-hot addresses fan out
  across channels), and ``bank-xor`` (channel-striped plus a row-seeded
  bank permutation that breaks same-bank stride patterns, the classical
  permutation-based interleaving);
* :class:`ShardRouter` — splits a stream into per-channel shards and
  supplies each channel controller's ``bank_map`` (its local
  ``rank × banks + bank`` index);
* :func:`simulate_topology` — the driver: one deterministic
  :class:`~repro.service.engine.DiscreteEventEngine` per channel, each
  backed shard seeded from an isolated seed-split stream
  (:func:`shard_seeds`), run either sequentially (the reference) or on
  an opt-in ``multiprocessing`` pool (``processes > 1``), then merged
  into one :class:`TopologyReport`.

**Determinism contract.**  A shard's simulation depends only on its own
requests, its own engine, and its own seed — never on which executor ran
it.  The merge itself is plain arithmetic over per-shard results ordered
by channel index, so the multiprocess driver's merged
:class:`~repro.service.report.ServiceReport` is **bit-identical** to the
sequential reference under the same seed (gated in
``benchmarks/bench_topology_scaling.py`` and ``repro serve --topology
--check``).  See ``docs/TOPOLOGY.md``.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import types
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import runtime as _obs
from repro.streams import SHARD_STREAM, stream_sequence
from repro.service.cache import ReadCache
from repro.service.controller import (
    BACKEND_BATCHED,
    BACKEND_MODES,
    FCFS,
    POLICIES,
    CompletedRequest,
    ControllerConfig,
    MemoryController,
    build_backend,
)
from repro.service.engine import DiscreteEventEngine
from repro.service.report import ServiceReport, build_report, publish_report
from repro.service.workload import Request

__all__ = [
    "ROW_MAJOR",
    "BANK_XOR",
    "CHANNEL_STRIPED",
    "INTERLEAVINGS",
    "Coord",
    "Topology",
    "Interleaver",
    "build_interleaver",
    "ShardRouter",
    "FailoverStats",
    "TopologyReport",
    "shard_seeds",
    "simulate_topology",
    "publish_topology_report",
]

ROW_MAJOR = "row-major"
BANK_XOR = "bank-xor"
CHANNEL_STRIPED = "channel-striped"
#: The pluggable address-interleaving schemes (see ``docs/TOPOLOGY.md``).
INTERLEAVINGS: Tuple[str, ...] = (ROW_MAJOR, BANK_XOR, CHANNEL_STRIPED)

#: RNG stream index reserved for the topology seed split — allocated in
#: the central :mod:`repro.streams` registry (see ``docs/API.md``).
_SHARD_STREAM = SHARD_STREAM


class Coord(NamedTuple):
    """One decomposed address: where a logical word physically lives."""

    channel: int
    rank: int
    bank: int
    row: int


@dataclasses.dataclass(frozen=True)
class Topology:
    """A channels × ranks × banks hierarchy of ``rows``-word banks.

    ``banks`` counts banks *per rank* (the DDR convention), so one
    channel owns ``ranks × banks`` independently schedulable banks and
    the whole part addresses ``channels × ranks × banks × rows`` words.
    """

    channels: int = 1
    ranks: int = 1
    banks: int = 4
    rows: int = 512

    def __post_init__(self) -> None:
        for field in ("channels", "ranks", "banks", "rows"):
            value = getattr(self, field)
            if value < 1:
                raise ConfigurationError(f"{field} must be >= 1, got {value}")

    @classmethod
    def parse(cls, spec: str, rows: int = 512) -> "Topology":
        """Parse a ``CxRxB`` spec (e.g. ``4x2x4``) into a topology."""
        parts = spec.lower().split("x")
        try:
            channels, ranks, banks = (int(part) for part in parts)
        except ValueError:
            raise ConfigurationError(
                f"topology must be CHANNELSxRANKSxBANKS, got {spec!r}"
            ) from None
        return cls(channels=channels, ranks=ranks, banks=banks, rows=rows)

    @property
    def banks_per_channel(self) -> int:
        """Independently schedulable banks one channel controller owns."""
        return self.ranks * self.banks

    @property
    def total_banks(self) -> int:
        """Banks across the whole part."""
        return self.channels * self.ranks * self.banks

    @property
    def capacity(self) -> int:
        """Addressable words across the whole part."""
        return self.total_banks * self.rows

    def describe(self) -> str:
        """The ``CxRxB`` spec string of this topology."""
        return f"{self.channels}x{self.ranks}x{self.banks}"


# ---------------------------------------------------------------------------
# Interleavers
# ---------------------------------------------------------------------------
class Interleaver:
    """A bijection between logical addresses and physical coordinates.

    ``decompose``/``compose`` are written elementwise (``//``, ``%``,
    ``^``), so they accept Python ints *and* numpy integer arrays — the
    router vectorizes channel assignment over a whole stream in one call.
    Addresses must lie in ``[0, topology.capacity)``.
    """

    name = ""

    def __init__(self, topology: Topology):
        self.topology = topology

    def decompose(self, address) -> Coord:
        """The ``(channel, rank, bank, row)`` a logical address maps to."""
        raise NotImplementedError

    def compose(self, channel, rank, bank, row):
        """The logical address a coordinate maps back to (inverse)."""
        raise NotImplementedError


class RowMajorInterleaver(Interleaver):
    """Consecutive addresses fill one bank's rows before moving on.

    The simplest linear layout: row bits low, then bank, then rank, then
    channel on top.  Sequential scans and Zipf-hot prefixes concentrate
    on channel 0 — the baseline the striped schemes are measured against.
    """

    name = ROW_MAJOR

    def decompose(self, address) -> Coord:
        t = self.topology
        row = address % t.rows
        rest = address // t.rows
        bank = rest % t.banks
        rest = rest // t.banks
        rank = rest % t.ranks
        channel = rest // t.ranks
        return Coord(channel, rank, bank, row)

    def compose(self, channel, rank, bank, row):
        t = self.topology
        return ((channel * t.ranks + rank) * t.banks + bank) * t.rows + row


class ChannelStripedInterleaver(Interleaver):
    """The low address bits pick the channel (cache-line striping).

    Consecutive addresses — and the Zipf distribution's hottest words —
    land on distinct channels, so one hot region loads the whole machine
    width instead of one controller.
    """

    name = CHANNEL_STRIPED

    def decompose(self, address) -> Coord:
        t = self.topology
        channel = address % t.channels
        rest = address // t.channels
        rank = rest % t.ranks
        rest = rest // t.ranks
        bank = rest % t.banks
        row = rest // t.banks
        return Coord(channel, rank, bank, row)

    def compose(self, channel, rank, bank, row):
        t = self.topology
        return ((row * t.banks + bank) * t.ranks + rank) * t.channels + channel


class BankXorInterleaver(ChannelStripedInterleaver):
    """Channel striping plus a row-seeded bank permutation.

    On top of the striped layout the bank index is permuted by the row
    (``bank ^ (row % banks)`` when ``banks`` is a power of two, the
    classical XOR interleave; an additive rotation ``(bank + row) %
    banks`` otherwise).  Both permutations are bijective per row, so the
    scheme stays invertible — and a strided scan that would hammer one
    bank under pure striping walks all of them instead.
    """

    name = BANK_XOR

    def _pow2(self) -> bool:
        banks = self.topology.banks
        return banks & (banks - 1) == 0

    def decompose(self, address) -> Coord:
        channel, rank, bank, row = super().decompose(address)
        turn = row % self.topology.banks
        if self._pow2():
            bank = bank ^ turn
        else:
            bank = (bank + turn) % self.topology.banks
        return Coord(channel, rank, bank, row)

    def compose(self, channel, rank, bank, row):
        turn = row % self.topology.banks
        if self._pow2():
            bank = bank ^ turn
        else:
            bank = (bank - turn) % self.topology.banks
        return super().compose(channel, rank, bank, row)


_INTERLEAVERS = {
    ROW_MAJOR: RowMajorInterleaver,
    CHANNEL_STRIPED: ChannelStripedInterleaver,
    BANK_XOR: BankXorInterleaver,
}


def build_interleaver(scheme: str, topology: Topology) -> Interleaver:
    """The named interleaver bound to ``topology``."""
    try:
        return _INTERLEAVERS[scheme](topology)
    except KeyError:
        raise ConfigurationError(
            f"unknown interleaving {scheme!r}; expected one of {INTERLEAVINGS}"
        ) from None


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------
class ShardRouter:
    """Front end fanning one request stream across per-channel shards.

    Logical addresses wrap modulo the topology's capacity (the same
    convention :class:`~repro.service.controller.ArrayBackend` uses for
    its word space), then the interleaver decides which channel serves
    the word and which of the channel's ``ranks × banks`` local banks
    it occupies.
    """

    def __init__(self, topology: Topology, interleave: str = CHANNEL_STRIPED):
        self.topology = topology
        self.interleaver = build_interleaver(interleave, topology)

    def coordinate(self, address: int) -> Coord:
        """The full physical coordinate of one logical address."""
        return self.interleaver.decompose(address % self.topology.capacity)

    def channel_of(self, address: int) -> int:
        """The channel serving one logical address."""
        return int(self.coordinate(address).channel)

    def local_bank(self, address: int) -> int:
        """The channel-local bank index (``rank × banks + bank``).

        This is the ``bank_map`` each per-channel
        :class:`~repro.service.controller.MemoryController` runs with, so
        the controller's queueing happens on the interleaver's banks
        rather than a flat modulo.
        """
        coord = self.coordinate(address)
        return int(coord.rank) * self.topology.banks + int(coord.bank)

    def split(self, requests: Sequence[Request]) -> List[Tuple[Request, ...]]:
        """Per-channel shards, each preserving arrival order and ids."""
        shards: List[List[Request]] = [[] for _ in range(self.topology.channels)]
        if requests:
            addresses = np.fromiter(
                (request.address for request in requests),
                dtype=np.int64,
                count=len(requests),
            )
            channels = self.interleaver.decompose(
                addresses % self.topology.capacity
            ).channel
            for request, channel in zip(requests, channels):
                shards[int(channel)].append(request)
        return [tuple(shard) for shard in shards]

    def split_with_failover(
        self,
        requests: Sequence[Request],
        outages: Sequence[Tuple[int, float, float]],
    ):
        """Split under channel outages; degraded-mode additive failover.

        ``outages`` is a sequence of ``(channel, start, end)`` windows
        (see :meth:`repro.service.failures.FailureScenario.outage_windows`).
        The front end scans the stream in arrival order, maintaining a
        remap table from each relocated address to the surviving channel
        now holding its data:

        * a **write** whose target channel is down reroutes to the first
          surviving channel counting up from its home (additive
          fallback) and the address is remapped there — the data now
          *lives* on the fallback, so later reads follow it;
        * a **read** whose data is resident on a down channel fails
          loudly at the front end (an ``unreachable`` terminal record) —
          a detected loss, never a silently stale or invented value;
        * a **write** arriving after the home channel healed lands back
          home and the remap entry is dropped — the mapping restores
          itself through write traffic, no migration pass needed.

        Returns ``(shards, frontend_failures, stats)``: the per-channel
        shards, the terminal :class:`CompletedRequest` records the front
        end produced (bank indices already global), and a
        :class:`FailoverStats` summary.
        """
        channels = self.topology.channels
        windows: List[List[Tuple[float, float]]] = [[] for _ in range(channels)]
        for channel, start, end in outages:
            if not 0 <= channel < channels:
                raise ConfigurationError(
                    f"outage channel {channel} out of range for "
                    f"{channels} channels"
                )
            windows[int(channel)].append((float(start), float(end)))

        def down(channel: int, time: float) -> bool:
            return any(s <= time < e for s, e in windows[channel])

        per_channel = self.topology.banks_per_channel
        shards: List[List[Request]] = [[] for _ in range(channels)]
        frontend: List[CompletedRequest] = []
        remap: Dict[int, int] = {}
        ever_remapped: set = set()
        unreachable = rerouted = restored = 0
        for request in requests:
            address = request.address % self.topology.capacity
            home = int(self.interleaver.decompose(address).channel)
            target = remap.get(address, home)
            if request.is_read:
                if down(target, request.time):
                    # The resident copy is unreachable: fail loudly.
                    unreachable += 1
                    frontend.append(CompletedRequest(
                        request=request,
                        bank=home * per_channel + self.local_bank(address),
                        start=request.time,
                        finish=request.time,
                        failed=True,
                        unreachable=True,
                    ))
                else:
                    shards[target].append(request)
                continue
            # Writes carry fresh data, so they may land on any live
            # channel: first survivor counting up from home.
            fallback = None
            for offset in range(channels):
                candidate = (home + offset) % channels
                if not down(candidate, request.time):
                    fallback = candidate
                    break
            if fallback is None:
                unreachable += 1
                frontend.append(CompletedRequest(
                    request=request,
                    bank=home * per_channel + self.local_bank(address),
                    start=request.time,
                    finish=request.time,
                    failed=True,
                    unreachable=True,
                ))
                continue
            if fallback == home:
                if address in remap:
                    del remap[address]
                    restored += 1
            elif remap.get(address) != fallback:
                remap[address] = fallback
                ever_remapped.add(address)
                rerouted += 1
            shards[fallback].append(request)
        stats = FailoverStats(
            outages=tuple(
                (int(channel), float(start), float(end))
                for channel, start, end in outages
            ),
            unreachable_requests=unreachable,
            rerouted_writes=rerouted,
            remapped_words=len(ever_remapped),
            restored_words=restored,
            residual_remaps=len(remap),
        )
        return [tuple(shard) for shard in shards], tuple(frontend), stats


@dataclasses.dataclass(frozen=True)
class FailoverStats:
    """Front-end accounting of a degraded-mode (channel outage) run."""

    outages: Tuple[Tuple[int, float, float], ...]  #: (channel, start, end)
    unreachable_requests: int  #: failed loudly at the front end
    rerouted_writes: int       #: writes diverted to a surviving channel
    remapped_words: int        #: distinct addresses ever relocated
    restored_words: int        #: remaps undone by post-heal writes
    residual_remaps: int       #: still relocated when the trace ended


# ---------------------------------------------------------------------------
# Seed split
# ---------------------------------------------------------------------------
def shard_seeds(seed: int, channels: int) -> Tuple[int, ...]:
    """One independent backend seed per channel, split from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning on the dedicated
    topology stream ``(seed, 6)``: child streams are statistically
    independent of each other *and* of every other stream in the library
    (build/fault/read/stats/workload/drift).  The split is a pure
    function of ``(seed, channel)`` — channel ``c``'s seed does not
    change when the channel count does — so shard simulations replay
    bit-exactly however the work is executed.
    """
    if channels < 1:
        raise ConfigurationError(f"channels must be >= 1, got {channels}")
    sequence = stream_sequence(seed, "shards")
    return tuple(
        int(child.generate_state(1, np.uint64)[0])
        for child in sequence.spawn(channels)
    )


# ---------------------------------------------------------------------------
# Per-shard execution (picklable: runs on multiprocessing workers)
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class _ShardSpec:
    """Everything one shard simulation needs, in picklable primitives."""

    channel: int
    requests: Tuple[Request, ...]
    topology: Topology
    interleave: str
    policy: str
    read_time: float
    write_time: float
    cache_capacity: int
    batch_limit: int
    batch_extra_fraction: float
    backend_window: int
    backend_mode: str
    backed: bool
    scheme: str
    fault_rate: float
    shard_seed: int
    backend_bits: int = 16384


@dataclasses.dataclass(frozen=True)
class _ShardResult:
    """One drained shard, reduced to picklable accounting."""

    channel: int
    completions: Tuple
    depth_samples: Tuple[int, ...]
    bank_served: Tuple[int, ...]
    submitted: int
    backend_stats: Optional[Dict[str, int]]


def _run_shard(spec: _ShardSpec) -> _ShardResult:
    """Simulate one channel on its own engine (executor-agnostic).

    Module-level so :mod:`multiprocessing` can pickle it by name; the
    worker rebuilds the router, controller, and (in backed mode) the
    channel's own seed-split array backend from the spec's primitives.
    The result depends only on the spec — never on the executor.
    """
    router = ShardRouter(spec.topology, spec.interleave)
    config = ControllerConfig(
        read_time=spec.read_time,
        write_time=spec.write_time,
        banks=spec.topology.banks_per_channel,
        batch_limit=spec.batch_limit,
        batch_extra_fraction=spec.batch_extra_fraction,
        backend_window=spec.backend_window,
    )
    cache = ReadCache(spec.cache_capacity) if spec.cache_capacity > 0 else None
    backend = retry_policy = None
    if spec.backed:
        backend, retry_policy = build_backend(
            spec.scheme, seed=spec.shard_seed, bits=spec.backend_bits,
            fault_rate=spec.fault_rate,
        )
    engine = DiscreteEventEngine()
    controller = MemoryController(
        engine,
        config,
        policy=spec.policy,
        cache=cache,
        backend=backend,
        retry_policy=retry_policy,
        backend_mode=spec.backend_mode,
        bank_map=router.local_bank,
    )
    if spec.requests:
        controller.submit_all(spec.requests)
        engine.run()
    return _ShardResult(
        channel=spec.channel,
        completions=tuple(controller.completions),
        depth_samples=tuple(controller.depth_samples),
        bank_served=controller.bank_served_counts(),
        submitted=controller.submitted,
        backend_stats=backend.statistics() if backend is not None else None,
    )


# ---------------------------------------------------------------------------
# Merge
# ---------------------------------------------------------------------------
class _ResultView:
    """Duck-typed stand-in for a drained controller, feeding
    :func:`~repro.service.report.build_report` from shard results."""

    def __init__(
        self,
        completions,
        submitted: int,
        depth_samples,
        bank_served: Tuple[int, ...],
        policy: str,
        banks: int,
        read_time: float,
        backend,
    ):
        self.completions = list(completions)
        self.submitted = submitted
        self.depth_samples = list(depth_samples)
        self._bank_served = tuple(bank_served)
        self.policy = policy
        self.config = types.SimpleNamespace(banks=banks, read_time=read_time)
        self.backend = backend

    def bank_served_counts(self) -> Tuple[int, ...]:
        return self._bank_served


def _backend_totals(results: Sequence[_ShardResult]):
    """Summed backend counters across shards (None in timing mode)."""
    stats = [r.backend_stats for r in results if r.backend_stats is not None]
    if not stats:
        return None
    totals: Dict[str, int] = {}
    for entry in stats:
        for key, value in entry.items():
            totals[key] = totals.get(key, 0) + value
    return types.SimpleNamespace(**totals)


@dataclasses.dataclass(frozen=True)
class TopologyReport:
    """One sharded run: the merged report plus per-channel breakdowns.

    Compares with ``==`` like every report in this layer — the equality
    behind both ``repro serve --topology --check`` and the
    sequential-vs-multiprocess bit-identity gate.  Deliberately carries
    no record of *how* it was executed (process count, wall clock): two
    runs of the same simulation are the same report.
    """

    topology: Topology
    interleave: str
    merged: ServiceReport
    channel_reports: Tuple[ServiceReport, ...]
    #: Front-end failover accounting; None for a healthy (no-outage) run,
    #: so reports from before the resilience layer compare unchanged.
    failover: Optional["FailoverStats"] = None

    @property
    def channel_served(self) -> Tuple[int, ...]:
        """Requests completed per channel."""
        return tuple(report.completed for report in self.channel_reports)

    @property
    def rank_served(self) -> Tuple[int, ...]:
        """Requests served per rank, channel-major over the merged banks."""
        per_rank = self.topology.banks
        served = self.merged.bank_served
        return tuple(
            sum(served[start:start + per_rank])
            for start in range(0, len(served), per_rank)
        )

    def to_dict(self) -> dict:
        """Plain nested dict (JSON-friendly)."""
        return {
            "topology": dataclasses.asdict(self.topology),
            "interleave": self.interleave,
            "merged": self.merged.to_dict(),
            "channel_reports": [r.to_dict() for r in self.channel_reports],
            "channel_served": list(self.channel_served),
            "rank_served": list(self.rank_served),
            "failover": (
                dataclasses.asdict(self.failover)
                if self.failover is not None else None
            ),
        }


def _merge_results(
    results: Sequence[_ShardResult],
    topology: Topology,
    interleave: str,
    *,
    policy: str,
    read_time: float,
    scheme: str,
    offered_rate: float,
    frontend: Tuple = (),
    failover: Optional[FailoverStats] = None,
) -> TopologyReport:
    """Fold per-shard results (ordered by channel) into one report.

    Bank indices are globalized (``bank + channel × banks_per_channel``)
    before the merged :func:`build_report` pass so per-occupancy batch
    dedup — keyed on ``(bank, start)`` — cannot collide across channels.
    ``frontend`` carries the router's terminal failure records from a
    degraded-mode run (bank indices already global): they join the merged
    accounting — so the conservation invariant covers them — but no
    channel's own report, which stays a pure function of its shard.
    """
    per_channel = topology.banks_per_channel
    channel_reports = []
    merged_completions = []
    merged_depths: List[int] = []
    merged_banks: List[int] = []
    submitted = 0
    for result in results:
        channel_reports.append(build_report(
            _ResultView(
                result.completions,
                result.submitted,
                result.depth_samples,
                result.bank_served,
                policy=policy,
                banks=per_channel,
                read_time=read_time,
                backend=(
                    types.SimpleNamespace(**result.backend_stats)
                    if result.backend_stats is not None
                    else None
                ),
            ),
            scheme=scheme,
            offered_rate=offered_rate / topology.channels,
        ))
        offset = result.channel * per_channel
        merged_completions.extend(
            dataclasses.replace(completed, bank=completed.bank + offset)
            for completed in result.completions
        )
        merged_depths.extend(result.depth_samples)
        merged_banks.extend(result.bank_served)
        submitted += result.submitted
    merged_completions.extend(frontend)
    submitted += len(frontend)
    merged = build_report(
        _ResultView(
            merged_completions,
            submitted,
            merged_depths,
            tuple(merged_banks),
            policy=policy,
            banks=topology.total_banks,
            read_time=read_time,
            backend=_backend_totals(results),
        ),
        scheme=scheme,
        offered_rate=offered_rate,
    )
    # Every shard drained and the front end accounted for what it never
    # forwarded, so the merged view must conserve requests exactly.
    merged.check_conservation()
    for channel_report in channel_reports:
        channel_report.check_conservation()
    return TopologyReport(
        topology=topology,
        interleave=interleave,
        merged=merged,
        channel_reports=tuple(channel_reports),
        failover=failover,
    )


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------
def simulate_topology(
    requests: Sequence[Request],
    topology: Topology,
    *,
    read_time: float,
    write_time: float,
    interleave: str = CHANNEL_STRIPED,
    policy: str = FCFS,
    scheme: str = "",
    offered_rate: float = 0.0,
    cache_capacity: int = 0,
    batch_limit: int = 8,
    batch_extra_fraction: float = 0.4,
    backend_window: int = 1,
    backend_mode: str = BACKEND_BATCHED,
    backed: bool = False,
    fault_rate: float = 0.0,
    seed: int = 2010,
    processes: int = 1,
    backend_bits: int = 16384,
    failures=None,
) -> TopologyReport:
    """Fan ``requests`` across the topology and merge the shard runs.

    Each channel simulates on its own deterministic engine; in backed
    mode (``backed=True`` or ``fault_rate > 0``) each channel gets its
    own 16kb array seeded from :func:`shard_seeds`.  ``processes > 1``
    runs shards on a spawn-context :mod:`multiprocessing` pool — purely
    an executor choice: the merged report is bit-identical to the
    sequential reference (``processes=1``) under the same seed.  Each
    channel's ``cache_capacity``-word read cache is private to it, so
    total cache across the part scales with the channel count.

    Note: multiprocessing workers are fresh interpreters, so live
    per-request :mod:`repro.obs` instrumentation only fires in
    sequential in-process runs; :func:`publish_topology_report` gauges
    (computed from the merged report, in the parent) are identical
    either way.  The usual spawn caveat applies: a script calling this
    with ``processes > 1`` must be importable without side effects
    (guard the call with ``if __name__ == "__main__":``), or the
    workers re-execute the script top level.

    ``failures`` optionally passes a
    :class:`~repro.service.failures.FailureScenario` whose events must
    all be channel outages: the router runs
    :meth:`ShardRouter.split_with_failover` instead of :meth:`split`,
    serving degraded over the surviving channels (see
    ``docs/RESILIENCE.md``).  Flat scenarios (stalls, bank failures)
    belong to a single controller — install them via
    :func:`~repro.service.controller.simulate_service` — and are
    rejected here.
    """
    if not requests:
        raise ConfigurationError("requests must be a non-empty sequence")
    if policy not in POLICIES:
        raise ConfigurationError(
            f"unknown policy {policy!r}; expected one of {POLICIES}"
        )
    if backend_mode not in BACKEND_MODES:
        raise ConfigurationError(
            f"unknown backend_mode {backend_mode!r}; expected one of "
            f"{BACKEND_MODES}"
        )
    if processes < 1:
        raise ConfigurationError(f"processes must be >= 1, got {processes}")
    backed = backed or fault_rate > 0.0
    if backed and not scheme:
        raise ConfigurationError("backed topology runs need a sensing scheme")
    router = ShardRouter(topology, interleave)
    frontend: Tuple = ()
    failover = None
    if failures is not None:
        from repro.service.failures import CHANNEL_OUTAGE

        bad = [e.kind for e in failures.events if e.kind != CHANNEL_OUTAGE]
        if bad:
            raise ConfigurationError(
                f"topology runs only take channel-outage scenarios; got "
                f"{sorted(set(bad))} — install flat scenarios on a single "
                "controller via simulate_service(failures=...)"
            )
        shards, frontend, failover = router.split_with_failover(
            requests, failures.outage_windows()
        )
    else:
        shards = router.split(requests)
    seeds = shard_seeds(seed, topology.channels)
    specs = [
        _ShardSpec(
            channel=channel,
            requests=shard,
            topology=topology,
            interleave=interleave,
            policy=policy,
            read_time=read_time,
            write_time=write_time,
            cache_capacity=cache_capacity,
            batch_limit=batch_limit,
            batch_extra_fraction=batch_extra_fraction,
            backend_window=backend_window,
            backend_mode=backend_mode,
            backed=backed,
            scheme=scheme,
            fault_rate=fault_rate,
            shard_seed=seeds[channel],
            backend_bits=backend_bits,
        )
        for channel, shard in enumerate(shards)
    ]
    if processes > 1 and topology.channels > 1:
        # Spawn (not fork): workers import the module fresh, so shard
        # state can never leak between parent and children — the same
        # isolation the sequential reference has between iterations.
        context = multiprocessing.get_context("spawn")
        with context.Pool(min(processes, topology.channels)) as pool:
            results = pool.map(_run_shard, specs)
    else:
        results = [_run_shard(spec) for spec in specs]
    return _merge_results(
        results, topology, interleave,
        policy=policy, read_time=read_time,
        scheme=scheme, offered_rate=offered_rate,
        frontend=frontend, failover=failover,
    )


def publish_topology_report(report: TopologyReport) -> None:
    """Mirror a topology run into ``service.topology.*`` obs gauges.

    No-op when observability is off.  Publishes the merged report's
    ``service.*`` gauges first, then the topology shape and the
    per-channel / per-rank breakdowns (labelled ``channel=i`` /
    ``rank=i``, rank indices channel-major).
    """
    if not _obs.active():
        return
    publish_report(report.merged)
    registry = _obs.get_registry()
    topology = report.topology
    registry.set_gauge("service.topology.channels", topology.channels)
    registry.set_gauge("service.topology.ranks_per_channel", topology.ranks)
    registry.set_gauge("service.topology.banks_per_rank", topology.banks)
    registry.set_gauge("service.topology.total_banks", topology.total_banks)
    for index, channel_report in enumerate(report.channel_reports):
        registry.set_gauge(
            "service.topology.channel_served",
            channel_report.completed,
            channel=index,
        )
        registry.set_gauge(
            "service.topology.channel_read_p99_ns",
            channel_report.read_latency.p99 * 1e9,
            channel=index,
        )
        registry.set_gauge(
            "service.topology.channel_queue_depth_mean",
            channel_report.queue_depth.mean_depth,
            channel=index,
        )
    for index, served in enumerate(report.rank_served):
        registry.set_gauge("service.topology.rank_served", served, rank=index)
    if report.failover is not None:
        registry.set_gauge(
            "service.topology.failover.unreachable",
            report.failover.unreachable_requests,
        )
        registry.set_gauge(
            "service.topology.failover.rerouted_writes",
            report.failover.rerouted_writes,
        )
        registry.set_gauge(
            "service.topology.failover.remapped_words",
            report.failover.remapped_words,
        )
