"""Closed-loop adaptive serving: feedback control and graceful degradation.

The static serving stack runs one :class:`~repro.core.retry.RetryPolicy`,
one cache size, and no scrub no matter what the environment does.  This
module closes the loop the ROADMAP calls for: an
:class:`AdaptiveController` rides the same deterministic event calendar
as the traffic, watches windowed signals (rolling p99 read latency,
per-interval retry / failure / corruption rates from the backend's
counters), and actuates the serving policy — bounded, hysteretic, and
fully replayable:

* **margin first** — raise the retry policy's sense-current escalation
  (larger differential swing against a drifted sense-amp offset), then
  the attempt budget, both capped;
* **repair** — engage a background scrub cadence that rewrites
  known-good payloads, clearing accumulated disturb/drift flips;
* **capacity** — grow (and later shrink) the :class:`ReadCache`;
* **degrade last** — engage the token-bucket :class:`AdmissionGate` and
  shed load, lowest priority first, with per-bank backpressure, so an
  unrecoverable drift episode costs the background tier instead of
  collapsing p99 for everyone.

Every decision is a pure function of simulated state: the controller
consumes no RNG, so ``repro serve --adaptive --check`` replays
bit-exactly, and a run with zero drift and a slack SLO never actuates —
its :class:`~repro.service.report.ServiceReport` is identical to the
static policy's (the determinism guard in ``tests/test_adaptive.py``).

Scope note: the adaptive loop drives a *single* controller.  The sharded
:mod:`repro.service.topology` driver runs static policies only for now —
``repro serve --topology`` rejects ``--adaptive``/``--drift`` — since a
per-channel control loop (or a global one spanning shards) is a
coordination design of its own (see ``docs/TOPOLOGY.md``).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs import runtime as _obs
from repro.obs.window import DeltaTracker, RollingWindow
from repro.service.cache import ReadCache
from repro.service.controller import (
    BACKEND_BATCHED,
    FCFS,
    ArrayBackend,
    ControllerConfig,
    MemoryController,
)
from repro.service.engine import DiscreteEventEngine
from repro.service.workload import Request

__all__ = [
    "SLOTarget",
    "AdaptiveConfig",
    "AdmissionGate",
    "AdaptiveController",
    "simulate_adaptive_service",
]


@dataclasses.dataclass(frozen=True)
class SLOTarget:
    """The latency objective the controller defends.

    ``p99_read_latency`` is the hard target [s]; the controller starts
    acting at ``guardband × target`` so actuation leads the violation
    instead of chasing it.
    """

    p99_read_latency: float
    guardband: float = 0.75

    def __post_init__(self) -> None:
        if self.p99_read_latency <= 0.0:
            raise ConfigurationError(
                f"SLO p99 target must be positive, got {self.p99_read_latency}"
            )
        if not 0.0 < self.guardband <= 1.0:
            raise ConfigurationError(
                f"guardband must be within (0, 1], got {self.guardband}"
            )

    @property
    def act_threshold(self) -> float:
        """Rolling p99 [s] above which the controller escalates."""
        return self.guardband * self.p99_read_latency


@dataclasses.dataclass(frozen=True)
class AdaptiveConfig:
    """Tuning of the control loop: cadence, signals, bounds, hysteresis.

    All actuation is bounded — one step per actuator per control tick,
    each actuator capped — and hysteretic: escalation triggers at the
    ``*_alarm`` thresholds / the SLO guardband, relaxation only once the
    signals fall below the stricter ``*_clear`` / ``clear_fraction``
    levels, so the controller cannot chatter between states.
    """

    control_interval: float = 2.5e-7  #: time between control ticks [s]
    window: int = 96                  #: completed reads in the latency window
    min_samples: int = 16             #: ignore the window's p99 before this
    retry_rate_alarm: float = 0.05    #: retried/reads fraction that alarms
    retry_rate_clear: float = 0.01    #: fraction below which margin relaxes
    clear_fraction: float = 0.7       #: p99 must drop below this × guardband
    escalation_step: float = 0.1      #: current-escalation increment
    escalation_bound: float = 0.5     #: current-escalation cap
    attempts_bound: int = 5           #: max_attempts cap
    cache_step: int = 64              #: cache lines added/removed per step
    cache_bound: int = 512            #: cache capacity cap
    scrub_interval: float = 2.0e-6    #: background scrub cadence [s]
    scrub_chunk: int = 64             #: words rewritten per scrub pass
    burst: float = 32.0               #: admission token-bucket depth
    low_priority_reserve: float = 4.0  #: tokens held back from priority > 0
    backpressure_depth: int = 256     #: per-bank queue depth that sheds
    shed_step: float = 0.15           #: multiplicative token-rate step
    shed_floor: float = 0.25          #: min token rate as a line-rate fraction

    def __post_init__(self) -> None:
        if self.control_interval <= 0.0:
            raise ConfigurationError(
                f"control_interval must be positive, got {self.control_interval}"
            )
        if self.window < 1:
            raise ConfigurationError(f"window must be >= 1, got {self.window}")
        if self.min_samples < 1:
            raise ConfigurationError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )
        if not 0.0 <= self.retry_rate_clear < self.retry_rate_alarm <= 1.0:
            raise ConfigurationError(
                "contradictory retry thresholds: need 0 <= clear < alarm <= 1, "
                f"got clear={self.retry_rate_clear}, alarm={self.retry_rate_alarm}"
            )
        if not 0.0 < self.clear_fraction <= 1.0:
            raise ConfigurationError(
                f"clear_fraction must be within (0, 1], got {self.clear_fraction}"
            )
        if self.escalation_step <= 0.0 or self.escalation_bound < 0.0:
            raise ConfigurationError(
                "escalation_step must be positive and escalation_bound >= 0"
            )
        if self.attempts_bound < 1:
            raise ConfigurationError(
                f"attempts_bound must be >= 1, got {self.attempts_bound}"
            )
        if self.cache_step < 1 or self.cache_bound < 0:
            raise ConfigurationError(
                "cache_step must be >= 1 and cache_bound >= 0"
            )
        if self.scrub_interval <= 0.0 or self.scrub_chunk < 1:
            raise ConfigurationError(
                "scrub_interval must be positive and scrub_chunk >= 1"
            )
        if self.burst < 1.0:
            raise ConfigurationError(f"burst must be >= 1, got {self.burst}")
        if not 0.0 <= self.low_priority_reserve < self.burst:
            raise ConfigurationError(
                "contradictory shed thresholds: low_priority_reserve must be "
                f">= 0 and below burst, got reserve={self.low_priority_reserve}, "
                f"burst={self.burst}"
            )
        if self.backpressure_depth < 1:
            raise ConfigurationError(
                f"backpressure_depth must be >= 1, got {self.backpressure_depth}"
            )
        if not 0.0 < self.shed_step < 1.0:
            raise ConfigurationError(
                f"shed_step must be within (0, 1), got {self.shed_step}"
            )
        if not 0.0 < self.shed_floor <= 1.0:
            raise ConfigurationError(
                f"shed_floor must be within (0, 1], got {self.shed_floor}"
            )


class AdmissionGate:
    """Token-bucket admission with priority shedding and backpressure.

    Disengaged (the default) the gate is invisible: every request is
    admitted, no token accounting runs, no metrics move — which is what
    keeps a zero-drift adaptive run bit-exact with the static policy.
    Once :meth:`engage` sets a token rate, each admitted request spends
    one token (refilled at ``rate`` tokens/s of *simulated* time, capped
    at ``burst``); requests with ``priority > 0`` additionally need
    ``low_priority_reserve`` tokens of headroom, so as the bucket drains
    the background tier sheds first and the foreground tier last.
    Independently, an arrival to a bank whose queue has reached
    ``backpressure_depth`` is shed regardless of tokens — a saturated
    bank must drain, not deepen.
    """

    def __init__(
        self,
        burst: float = 32.0,
        low_priority_reserve: float = 4.0,
        backpressure_depth: int = 256,
    ):
        if burst < 1.0:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        if not 0.0 <= low_priority_reserve < burst:
            raise ConfigurationError(
                "contradictory shed thresholds: low_priority_reserve must be "
                f">= 0 and below burst, got reserve={low_priority_reserve}, "
                f"burst={burst}"
            )
        if backpressure_depth < 1:
            raise ConfigurationError(
                f"backpressure_depth must be >= 1, got {backpressure_depth}"
            )
        self.burst = float(burst)
        self.low_priority_reserve = float(low_priority_reserve)
        self.backpressure_depth = int(backpressure_depth)
        self.engaged = False
        self.rate = 0.0           #: tokens/s while engaged
        self._tokens = float(burst)
        self._refilled_at = 0.0
        self.admitted = 0         #: admissions while engaged
        self.shed = 0
        self.shed_low_priority = 0
        self.shed_backpressure = 0

    def _refill(self, now: float) -> None:
        if now > self._refilled_at:
            self._tokens = min(
                self.burst, self._tokens + (now - self._refilled_at) * self.rate
            )
        self._refilled_at = now

    def engage(self, rate: float, now: float) -> None:
        """Start (or re-tune) shedding at ``rate`` admitted requests/s."""
        if rate <= 0.0:
            raise ConfigurationError(f"token rate must be positive, got {rate}")
        if self.engaged:
            self._refill(now)  # the old rate applies up to now, not beyond
        else:
            self.engaged = True
            self._tokens = self.burst
            self._refilled_at = now
            if _obs.active():
                _obs.get_registry().inc("service.admission.engaged")
        self.rate = float(rate)

    def disengage(self) -> None:
        """Stop shedding; the gate goes invisible again."""
        self.engaged = False
        self.rate = 0.0

    def admit(self, request: Request, depth: int, now: float) -> bool:
        """Decide one arrival given its bank's queue depth."""
        if not self.engaged:
            return True
        low = request.priority > 0
        if depth >= self.backpressure_depth:
            self.shed += 1
            self.shed_backpressure += 1
            if low:
                self.shed_low_priority += 1
            return False
        self._refill(now)
        need = 1.0 + (self.low_priority_reserve if low else 0.0)
        if self._tokens >= need:
            self._tokens -= 1.0
            self.admitted += 1
            if _obs.active():
                _obs.get_registry().inc("service.admission.admitted")
            return True
        self.shed += 1
        if low:
            self.shed_low_priority += 1
        return False

    def statistics(self) -> dict:
        """Gate counters as a plain dict."""
        return {
            "engaged": self.engaged,
            "rate": self.rate,
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_low_priority": self.shed_low_priority,
            "shed_backpressure": self.shed_backpressure,
        }


class AdaptiveController:
    """The feedback loop: windowed signals in, bounded actuation out.

    Attach to the same engine as the traffic; a control tick fires every
    ``config.control_interval`` of simulated time, reads the signals, and
    applies at most one step per actuator.  Escalation order (most
    targeted, least costly first): sense-current escalation → attempt
    budget → background scrub → cache growth → admission shedding.
    Relaxation unwinds in the reverse order, one step per tick, restoring
    the base policy once conditions clear.  The controller consumes no
    RNG and stops rescheduling itself once every submitted request is
    accounted, so the calendar drains exactly as a static run's would.
    """

    def __init__(
        self,
        controller: MemoryController,
        slo: SLOTarget,
        config: Optional[AdaptiveConfig] = None,
        line_rate: float = 0.0,
    ):
        if controller.backend is None:
            raise ConfigurationError(
                "adaptive serving requires a backed controller (ArrayBackend)"
            )
        if controller.retry_policy is None:
            raise ConfigurationError(
                "adaptive serving requires a retry policy to actuate"
            )
        if line_rate <= 0.0:
            raise ConfigurationError(
                f"line_rate must be positive, got {line_rate}"
            )
        self.controller = controller
        self.backend: ArrayBackend = controller.backend
        self.slo = slo
        self.config = config if config is not None else AdaptiveConfig()
        self.line_rate = float(line_rate)
        self._base_policy = controller.retry_policy
        self._base_cache = (
            controller.cache.capacity if controller.cache is not None else None
        )
        self.gate = AdmissionGate(
            burst=self.config.burst,
            low_priority_reserve=self.config.low_priority_reserve,
            backpressure_depth=self.config.backpressure_depth,
        )
        controller.admission = self.gate
        controller.adaptive = self
        self._latency = RollingWindow(self.config.window)
        self._deltas = DeltaTracker()
        self._baseline()
        self._seen = 0          # completions consumed into the window
        self._alarm = False
        self._scrub_active = False
        self._scrub_cursor = 0
        self._engine = None
        self.ticks = 0
        self.actions = 0        #: actuator steps applied (any direction)
        self.alarms = 0         #: healthy → breached transitions

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def _baseline(self) -> dict:
        return self._deltas.update(
            reads=self.backend.reads,
            retried=self.backend.retried_words,
            failed=self.backend.failed_words,
            corrupted=self.backend.corrupted_words,
        )

    def _consume_completions(self) -> None:
        completions = self.controller.completions
        for completed in completions[self._seen:]:
            if not completed.shed and completed.request.is_read:
                self._latency.push(completed.latency)
        self._seen = len(completions)

    def _done(self) -> bool:
        return len(self.controller.completions) >= self.controller.submitted

    @property
    def policy(self):
        """The retry policy currently in force."""
        return self.controller.retry_policy

    def _apply_policy(self, policy) -> None:
        # The controller charges backoff from its copy; the ladder reads
        # its own — keep the two views of the policy in lockstep.
        self.controller.retry_policy = policy
        self.backend.memory.policy = policy

    def _act(self, actuator: str, direction: str) -> None:
        self.actions += 1
        if _obs.active():
            _obs.get_registry().inc(
                "service.adaptive.actions", actuator=actuator, direction=direction
            )

    # ------------------------------------------------------------------
    # The control tick
    # ------------------------------------------------------------------
    def attach(self, engine: DiscreteEventEngine) -> None:
        """Schedule the first control tick (call before ``engine.run``)."""
        self._engine = engine
        engine.schedule(self.config.control_interval, self._tick)

    def _tick(self) -> None:
        self.ticks += 1
        self._consume_completions()
        delta = self._baseline()
        reads = delta["reads"]
        retry_rate = delta["retried"] / reads if reads else 0.0
        fail_rate = delta["failed"] / reads if reads else 0.0
        corrupted = delta["corrupted"]
        p99 = (
            self._latency.percentile(99.0)
            if len(self._latency) >= self.config.min_samples
            else 0.0
        )
        threshold = self.slo.act_threshold
        breached = (
            p99 > threshold
            or retry_rate > self.config.retry_rate_alarm
            or fail_rate > 0.0
            or corrupted > 0
        )
        healthy = (
            p99 <= self.config.clear_fraction * threshold
            and retry_rate <= self.config.retry_rate_clear
            and fail_rate == 0.0
            and corrupted == 0
        )
        if breached:
            if not self._alarm:
                self._alarm = True
                self.alarms += 1
                if _obs.active():
                    _obs.get_registry().inc("service.adaptive.alarms")
            self._escalate(p99, retry_rate, fail_rate, corrupted)
        elif healthy:
            self._alarm = False
            self._relax()
        if _obs.active():
            registry = _obs.get_registry()
            registry.inc("service.adaptive.ticks")
            registry.set_gauge("service.adaptive.window_p99_ns", p99 * 1e9)
            registry.set_gauge("service.adaptive.retry_rate", retry_rate)
            registry.set_gauge(
                "service.adaptive.escalation", self.policy.current_escalation
            )
            registry.set_gauge(
                "service.adaptive.token_rate_rps",
                self.gate.rate if self.gate.engaged else 0.0,
            )
        if not self._done():
            self._engine.schedule(self.config.control_interval, self._tick)

    # ------------------------------------------------------------------
    # Actuation
    # ------------------------------------------------------------------
    def _escalate(self, p99, retry_rate, fail_rate, corrupted) -> None:
        config = self.config
        policy = self.policy
        if retry_rate > config.retry_rate_alarm or fail_rate > 0.0:
            if policy.current_escalation < config.escalation_bound - 1e-12:
                self._apply_policy(dataclasses.replace(
                    policy,
                    current_escalation=min(
                        config.escalation_bound,
                        policy.current_escalation + config.escalation_step,
                    ),
                ))
                self._act("escalation", "up")
            elif fail_rate > 0.0 and policy.max_attempts < config.attempts_bound:
                self._apply_policy(dataclasses.replace(
                    policy, max_attempts=policy.max_attempts + 1
                ))
                self._act("attempts", "up")
        if (fail_rate > 0.0 or corrupted > 0) and not self._scrub_active:
            self._scrub_active = True
            self._act("scrub", "on")
            self._engine.schedule(self.config.scrub_interval, self._scrub_pass)
        cache = self.controller.cache
        if (
            p99 > self.slo.act_threshold
            and cache is not None
            and 0 < cache.capacity < config.cache_bound
        ):
            cache.resize(min(config.cache_bound, cache.capacity + config.cache_step))
            self._act("cache", "up")
        if p99 > self.slo.act_threshold:
            self._shed_harder()

    def _shed_harder(self) -> None:
        floor = self.config.shed_floor * self.line_rate
        now = self._engine.now
        if not self.gate.engaged:
            self.gate.engage(
                max(floor, self.line_rate * (1.0 - self.config.shed_step)), now
            )
            self._act("admission", "on")
        elif self.gate.rate > floor:
            self.gate.engage(
                max(floor, self.gate.rate * (1.0 - self.config.shed_step)), now
            )
            self._act("admission", "down")

    def _relax(self) -> None:
        """Unwind one actuator step (reverse escalation order)."""
        config = self.config
        if self.gate.engaged:
            raised = self.gate.rate * (1.0 + config.shed_step)
            if raised >= self.line_rate:
                self.gate.disengage()
                self._act("admission", "off")
            else:
                self.gate.engage(raised, self._engine.now)
                self._act("admission", "up")
            return
        cache = self.controller.cache
        if (
            cache is not None
            and self._base_cache is not None
            and cache.capacity > self._base_cache
        ):
            cache.resize(max(self._base_cache, cache.capacity - config.cache_step))
            self._act("cache", "down")
            return
        if self._scrub_active:
            self._scrub_active = False
            self._act("scrub", "off")
            return
        policy = self.policy
        if policy.max_attempts > self._base_policy.max_attempts:
            self._apply_policy(dataclasses.replace(
                policy, max_attempts=policy.max_attempts - 1
            ))
            self._act("attempts", "down")
            return
        if policy.current_escalation > self._base_policy.current_escalation + 1e-12:
            self._apply_policy(dataclasses.replace(
                policy,
                current_escalation=max(
                    self._base_policy.current_escalation,
                    policy.current_escalation - config.escalation_step,
                ),
            ))
            self._act("escalation", "down")

    def _scrub_pass(self) -> None:
        """One background scrub chunk; reschedules while active.

        Scrub rewrites ride a dedicated maintenance port in this model —
        they restore ground truth (clearing drift flips) without
        occupying a bank or consuming sensing RNG, so the traffic stream
        is untouched and replays stay bit-exact.
        """
        if not self._scrub_active or self._done():
            return
        size = self.backend.size_words
        chunk = min(self.config.scrub_chunk, size)
        addresses = [(self._scrub_cursor + i) % size for i in range(chunk)]
        self._scrub_cursor = (self._scrub_cursor + chunk) % size
        count = self.backend.rewrite_words(addresses)
        if _obs.active() and count:
            _obs.get_registry().inc("service.adaptive.scrubbed_words", count)
        self._engine.schedule(self.config.scrub_interval, self._scrub_pass)


def simulate_adaptive_service(
    requests: Sequence[Request],
    config: ControllerConfig,
    *,
    backend: ArrayBackend,
    slo: Optional[SLOTarget] = None,
    adaptive_config: Optional[AdaptiveConfig] = None,
    adaptive: bool = True,
    policy: str = FCFS,
    cache: Optional[ReadCache] = None,
    retry_policy=None,
    scenario=None,
    drift_rng=None,
    scheme: str = "",
    offered_rate: float = 0.0,
    backend_mode: str = BACKEND_BATCHED,
):
    """One full drift-aware simulation; returns its ``ServiceReport``.

    The adaptive counterpart of
    :func:`~repro.service.controller.simulate_service`: optionally
    installs a :class:`~repro.faults.drift.DriftScenario` on the calendar
    and (with ``adaptive=True``) attaches an :class:`AdaptiveController`
    defending ``slo``.  ``adaptive=False`` runs the *static* policy under
    the same drift — the baseline the benchmarks compare against.
    ``drift_rng`` is the dedicated stream for flip strikes (scenarios
    without strikes need none).
    """
    from repro.faults.drift import install_drift
    from repro.service.report import build_report

    if not requests:
        raise ConfigurationError("requests must be a non-empty sequence")
    if backend is None:
        raise ConfigurationError("adaptive serving requires an ArrayBackend")
    engine = DiscreteEventEngine()
    controller = MemoryController(
        engine, config, policy=policy, cache=cache, backend=backend,
        retry_policy=retry_policy, backend_mode=backend_mode,
    )
    if adaptive:
        if slo is None:
            raise ConfigurationError("adaptive serving requires an SLOTarget")
        line_rate = offered_rate
        if line_rate <= 0.0:
            span = max(request.time for request in requests)
            line_rate = len(requests) / span if span > 0.0 else 1.0
        AdaptiveController(
            controller, slo, adaptive_config, line_rate=line_rate
        ).attach(engine)
    if scenario is not None:
        install_drift(engine, backend, scenario, rng=drift_rng)
    controller.submit_all(requests)
    engine.run()
    report = build_report(controller, scheme=scheme, offered_rate=offered_rate)
    # A drained calendar must account for every request exactly once.
    report.check_conservation()
    return report
