"""Workload generators and the replayable JSONL trace format.

A workload is a finite stream of :class:`Request` records — absolute
arrival time, word address, and operation — produced by composing an
**arrival process** with an **address distribution** and a read/write mix:

* :class:`PoissonArrivals` — memoryless traffic at a fixed rate (the
  classical open-loop model the old scheduler used);
* :class:`MMPPArrivals` — a two-state Markov-modulated Poisson process
  (ON/OFF bursts: exponentially distributed dwell times, each state with
  its own arrival rate) for bursty front-end traffic;
* :class:`UniformAddresses` / :class:`ZipfianAddresses` — flat versus
  hot-spot address popularity (Zipf exponent ``s``; rank 1 is the
  hottest word).

Every generator draws from the caller's ``numpy.random.Generator`` in a
fixed, documented order (arrival times first, then addresses, then the
read/write coin flips), so a seed fully determines the stream.

Traces are JSON Lines: one request per line with keys ``id``/``t``/
``addr``/``op``.  Python's JSON float encoding uses ``repr`` round-trip
semantics, so :func:`save_trace` → :func:`load_trace` reproduces every
arrival time **bit-for-bit** — replaying a saved trace through the
controller yields the identical simulation as the live generation that
produced it (the ``repro serve --check`` gate).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "READ",
    "WRITE",
    "Request",
    "PoissonArrivals",
    "MMPPArrivals",
    "UniformAddresses",
    "ZipfianAddresses",
    "RequestStream",
    "build_workload",
    "save_trace",
    "load_trace",
]

READ = "read"
WRITE = "write"


@dataclasses.dataclass(frozen=True)
class Request:
    """One memory request.

    Attributes
    ----------
    request_id:
        Dense 0-based index within the stream (stable across save/load).
    time:
        Absolute arrival time [s].
    address:
        Logical word address.
    op:
        ``"read"`` or ``"write"``.
    priority:
        Shedding class: 0 (the default) is foreground traffic; larger
        values are lower priority and are dropped first when admission
        control engages (see :class:`repro.service.adaptive.AdmissionGate`).
    deadline:
        Absolute service-start deadline [s]; 0 (the default) means no
        deadline.  A request still waiting when the clock passes its
        deadline is dropped by the controller and recorded as
        ``timed_out`` instead of being served (see ``docs/RESILIENCE.md``).
    """

    request_id: int
    time: float
    address: int
    op: str = READ
    priority: int = 0
    deadline: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in (READ, WRITE):
            raise ConfigurationError(f"op must be 'read' or 'write', got {self.op!r}")
        if self.time < 0.0:
            raise ConfigurationError(f"arrival time must be >= 0, got {self.time}")
        if self.address < 0:
            raise ConfigurationError(f"address must be >= 0, got {self.address}")
        if self.priority < 0:
            raise ConfigurationError(f"priority must be >= 0, got {self.priority}")
        if self.deadline < 0.0:
            raise ConfigurationError(f"deadline must be >= 0, got {self.deadline}")

    @property
    def is_read(self) -> bool:
        return self.op == READ


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class PoissonArrivals:
    """Memoryless arrivals at ``rate`` requests per second."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise ConfigurationError(f"arrival rate must be positive, got {self.rate}")

    @property
    def mean_rate(self) -> float:
        """Long-run arrival rate [1/s]."""
        return self.rate

    def arrival_times(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """``count`` absolute arrival times (one vectorized draw)."""
        return np.cumsum(rng.exponential(1.0 / self.rate, count))


@dataclasses.dataclass(frozen=True)
class MMPPArrivals:
    """Two-state (ON/OFF) Markov-modulated Poisson arrivals.

    The process alternates between an ON state emitting at ``on_rate``
    and an OFF state emitting at ``off_rate`` (0 allowed: pure silence);
    dwell times in each state are exponential with means ``mean_on`` /
    ``mean_off`` seconds.  The stream starts in the ON state.
    """

    on_rate: float
    off_rate: float = 0.0
    mean_on: float = 1.0e-6
    mean_off: float = 1.0e-6

    def __post_init__(self) -> None:
        if self.on_rate <= 0.0:
            raise ConfigurationError(f"on_rate must be positive, got {self.on_rate}")
        if self.off_rate < 0.0:
            raise ConfigurationError(f"off_rate must be >= 0, got {self.off_rate}")
        if self.off_rate >= self.on_rate:
            raise ConfigurationError(
                "off_rate must be below on_rate (otherwise the process is "
                f"not bursty): {self.off_rate} >= {self.on_rate}"
            )
        if self.mean_on <= 0.0 or self.mean_off <= 0.0:
            raise ConfigurationError("state dwell means must be positive")

    @property
    def mean_rate(self) -> float:
        """Long-run arrival rate [1/s] (dwell-time-weighted)."""
        total = self.mean_on + self.mean_off
        return (self.on_rate * self.mean_on + self.off_rate * self.mean_off) / total

    def arrival_times(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """``count`` absolute arrival times.

        Draw order per arrival: candidate inter-arrival gaps in the
        current state, interleaved with one dwell draw at each state
        toggle — sequential by construction, so a seed pins the stream.
        """
        times = np.empty(count)
        now = 0.0
        on = True
        remaining = rng.exponential(self.mean_on)
        for index in range(count):
            while True:
                rate = self.on_rate if on else self.off_rate
                gap = rng.exponential(1.0 / rate) if rate > 0.0 else np.inf
                if gap <= remaining:
                    remaining -= gap
                    now += gap
                    times[index] = now
                    break
                now += remaining
                on = not on
                remaining = rng.exponential(self.mean_on if on else self.mean_off)
        return times


# ---------------------------------------------------------------------------
# Address distributions
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class UniformAddresses:
    """Uniformly random word addresses in ``[0, addresses)``."""

    addresses: int

    def __post_init__(self) -> None:
        if self.addresses < 1:
            raise ConfigurationError(f"addresses must be >= 1, got {self.addresses}")

    def draw(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return rng.integers(0, self.addresses, count)


@dataclasses.dataclass(frozen=True)
class ZipfianAddresses:
    """Zipf-popular addresses: P(address k) ∝ 1 / (k+1)^s.

    Address 0 is the hottest word; with the controller's modulo bank
    interleaving the top ``banks`` hot addresses still land on distinct
    banks.  ``s`` around 1 matches measured storage/key-value skew.
    """

    addresses: int
    s: float = 1.1

    def __post_init__(self) -> None:
        if self.addresses < 1:
            raise ConfigurationError(f"addresses must be >= 1, got {self.addresses}")
        if self.s <= 0.0:
            raise ConfigurationError(f"zipf exponent must be positive, got {self.s}")

    def probabilities(self) -> np.ndarray:
        """Normalized popularity of every address (hottest first).

        The analytic ground truth the topology layer's spread statistics
        compare against: summing these per channel/bank gives the exact
        expected share of traffic each shard receives under a given
        interleaving (``tests/test_topology.py``).
        """
        weights = 1.0 / np.power(np.arange(1, self.addresses + 1, dtype=float), self.s)
        return weights / weights.sum()

    def _cdf(self) -> np.ndarray:
        # Kept as cumsum-then-normalize (NOT cumsum of probabilities()):
        # the rounding of this exact expression is regression-pinned by
        # every saved trace and --check gate, so the draw stream must not
        # move by even one ulp.
        weights = 1.0 / np.power(np.arange(1, self.addresses + 1, dtype=float), self.s)
        cdf = np.cumsum(weights)
        return cdf / cdf[-1]

    def draw(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return np.searchsorted(self._cdf(), rng.random(count), side="left")


# ---------------------------------------------------------------------------
# Composition
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class RequestStream:
    """An arrival process × address distribution × read/write mix.

    ``write_fraction`` of the requests (an independent coin per request)
    are writes, and ``low_priority_fraction`` (another independent coin)
    are priority-1 background traffic that admission control sheds first.
    Draw order inside :meth:`generate` is fixed: all arrival times, then
    all addresses, then all op coins, then all priority coins — and each
    coin block is only drawn when its fraction is nonzero, so streams
    generated before these knobs existed are unchanged.
    """

    arrivals: object
    addresses: object
    write_fraction: float = 0.0
    low_priority_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigurationError(
                f"write_fraction must be within [0, 1], got {self.write_fraction}"
            )
        if not 0.0 <= self.low_priority_fraction <= 1.0:
            raise ConfigurationError(
                "low_priority_fraction must be within [0, 1], got "
                f"{self.low_priority_fraction}"
            )

    def generate(self, count: int, rng: np.random.Generator) -> Tuple[Request, ...]:
        """``count`` requests, arrival-ordered, ids dense from 0."""
        if count < 1:
            raise ConfigurationError(f"request count must be >= 1, got {count}")
        times = self.arrivals.arrival_times(count, rng)
        addresses = self.addresses.draw(count, rng)
        if self.write_fraction > 0.0:
            writes = rng.random(count) < self.write_fraction
        else:
            writes = np.zeros(count, dtype=bool)
        if self.low_priority_fraction > 0.0:
            low = rng.random(count) < self.low_priority_fraction
        else:
            low = np.zeros(count, dtype=bool)
        return tuple(
            Request(
                request_id=index,
                time=float(times[index]),
                address=int(addresses[index]),
                op=WRITE if writes[index] else READ,
                priority=1 if low[index] else 0,
            )
            for index in range(count)
        )


def build_workload(
    kind: str = "poisson",
    addressing: str = "uniform",
    rate: float = 5.0e7,
    addresses: int = 2048,
    write_fraction: float = 0.0,
    low_priority_fraction: float = 0.0,
    burst_ratio: float = 4.0,
    mean_on: float = 1.0e-6,
    mean_off: float = 1.0e-6,
    zipf_s: float = 1.1,
) -> RequestStream:
    """Convenience factory for the CLI and benchmarks.

    ``kind`` is ``poisson`` or ``bursty``; a bursty stream keeps the same
    *mean* rate as the Poisson one but emits it in ON bursts running at
    ``burst_ratio`` × the mean (OFF rate chosen to balance), so workloads
    of the two kinds are directly comparable at equal offered load.
    """
    if kind == "poisson":
        arrivals = PoissonArrivals(rate)
    elif kind == "bursty":
        if burst_ratio <= 1.0:
            raise ConfigurationError(
                f"burst_ratio must exceed 1, got {burst_ratio}"
            )
        on_rate = burst_ratio * rate
        # Solve the dwell-weighted mean for the OFF rate.  When the burst
        # carries more than the entire load (the solution would go
        # negative), emit silence in the OFF state and stretch its dwell
        # so the long-run mean still equals ``rate``.
        off_rate = (rate * (mean_on + mean_off) - on_rate * mean_on) / mean_off
        if off_rate < 0.0:
            off_rate = 0.0
            mean_off = mean_on * (on_rate / rate - 1.0)
        arrivals = MMPPArrivals(
            on_rate=on_rate, off_rate=off_rate, mean_on=mean_on, mean_off=mean_off
        )
    else:
        raise ConfigurationError(
            f"unknown workload kind {kind!r}; expected poisson/bursty"
        )
    if addressing == "uniform":
        address_dist = UniformAddresses(addresses)
    elif addressing == "zipfian":
        address_dist = ZipfianAddresses(addresses, s=zipf_s)
    else:
        raise ConfigurationError(
            f"unknown addressing {addressing!r}; expected uniform/zipfian"
        )
    return RequestStream(
        arrivals=arrivals,
        addresses=address_dist,
        write_fraction=write_fraction,
        low_priority_fraction=low_priority_fraction,
    )


# ---------------------------------------------------------------------------
# Trace persistence (JSON Lines)
# ---------------------------------------------------------------------------
def save_trace(path, requests: Iterable[Request]) -> int:
    """Write requests to ``path`` as JSONL; returns the line count.

    Floats serialize via ``repr`` round-trip semantics, so a reloaded
    trace reproduces every arrival time exactly.
    """
    count = 0
    with open(path, "w") as handle:
        for request in requests:
            record = {
                "id": request.request_id,
                "t": request.time,
                "addr": request.address,
                "op": request.op,
            }
            if request.priority:
                # Written only when nonzero: priority-0 traces stay
                # byte-identical to those from before the field existed.
                record["pri"] = request.priority
            if request.deadline:
                # Same backward-compatibility contract as ``pri``: the
                # key only appears when a deadline is actually set.
                record["dl"] = request.deadline
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def load_trace(path) -> Tuple[Request, ...]:
    """Load a JSONL trace written by :func:`save_trace`."""
    requests = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                requests.append(Request(
                    request_id=int(record["id"]),
                    time=float(record["t"]),
                    address=int(record["addr"]),
                    op=str(record["op"]),
                    priority=int(record.get("pri", 0)),
                    deadline=float(record.get("dl", 0.0)),
                ))
            except (KeyError, ValueError, TypeError) as error:
                raise ConfigurationError(
                    f"malformed trace line {line_number} in {path}: {error}"
                ) from error
    return tuple(requests)
