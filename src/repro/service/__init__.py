"""repro.service — trace-driven memory-controller and serving subsystem.

This package evaluates sensing schemes at the array-controller level,
under realistic request streams, rather than per cell: the paper's ~2×
read-latency advantage of the nondestructive self-reference scheme
compounds under load into a ≥ 1.5× gap in the request rate a 4-bank macro
sustains before saturating (``benchmarks/bench_service_throughput.py``).

Layers (see ``docs/SERVICE.md`` for the full model):

* :class:`DiscreteEventEngine` — deterministic event calendar (no RNG);
* :mod:`~repro.service.workload` — Poisson / bursty-MMPP arrivals ×
  uniform / Zipfian addresses × read-write mix, plus the JSONL trace
  format (:func:`save_trace` / :func:`load_trace` round-trip is
  bit-exact);
* :class:`MemoryController` — per-bank queues with pluggable policies
  (``fcfs``, ``read-priority``, ``batch``), a bounded write buffer, an
  optional :class:`ReadCache`, and an optional :class:`ArrayBackend`
  running every read through the retry → ECC → scrub → repair ladder
  under fault injection;
* :class:`ServiceReport` — throughput, mean/p50/p99/p99.9 latency,
  queue-depth stats, and :func:`find_saturation_rate`, all mirrored into
  ``service.*`` :mod:`repro.obs` metrics;
* :mod:`~repro.service.topology` — the sharded channel → rank → bank
  hierarchy: pluggable address interleavers, a :class:`ShardRouter`
  fanning one stream across per-channel controllers on independent
  engines with seed-split RNG, and :func:`simulate_topology` (sequential
  reference or bit-identical multiprocess executor) merging the shards
  into one :class:`TopologyReport` (see ``docs/TOPOLOGY.md``).

CLI front end: ``python -m repro serve`` (``--check`` replays a saved
trace and asserts report equality with the live run;
``--topology CxRxB --interleave <scheme> --shards N`` runs the sharded
hierarchy under the same gate).

The resilience layer (:mod:`~repro.service.failures` +
:mod:`~repro.service.journal`, see ``docs/RESILIENCE.md``) adds
deterministic structural failure scenarios (channel outage, controller
stall, bank-offline, sense-amp lockup) scheduled from the reserved
``(seed, 7)`` stream, request deadlines / hedged reads / bounded
controller retries, degraded-mode failover over surviving channels, and
a write-ahead journal whose replay after a mid-trace crash is bit-exact
for every acknowledged write — all swept by :func:`run_chaos_campaign`
under the enforced conservation invariant
``requests == completed + shed + timed_out + failed``.
"""

from repro.service.adaptive import (
    AdaptiveConfig,
    AdaptiveController,
    AdmissionGate,
    SLOTarget,
    simulate_adaptive_service,
)
from repro.service.cache import ReadCache
from repro.service.controller import (
    BACKEND_BATCHED,
    BACKEND_MODES,
    BACKEND_SCALAR,
    BATCH,
    FCFS,
    POLICIES,
    READ_PRIORITY,
    ArrayBackend,
    CompletedRequest,
    ControllerConfig,
    MemoryController,
    build_backend,
    scheme_service_times,
    simulate_service,
)
from repro.service.engine import DiscreteEventEngine
from repro.service.failures import (
    CHAOS_SCENARIOS,
    FAILURE_KINDS,
    ChaosCampaignResult,
    ChaosRow,
    FailureEvent,
    FailureScenario,
    bank_offline,
    build_failure_scenario,
    channel_outage,
    controller_stall,
    install_failures,
    run_chaos_campaign,
    sense_amp_lockup,
)
from repro.service.journal import (
    CrashRestartResult,
    JournalRecord,
    WriteAheadJournal,
    run_crash_restart,
)
from repro.service.report import (
    LatencyStats,
    QueueStats,
    ServiceReport,
    build_report,
    find_saturation_rate,
    publish_report,
)
from repro.service.topology import (
    BANK_XOR,
    CHANNEL_STRIPED,
    INTERLEAVINGS,
    ROW_MAJOR,
    Coord,
    FailoverStats,
    Interleaver,
    ShardRouter,
    Topology,
    TopologyReport,
    build_interleaver,
    publish_topology_report,
    shard_seeds,
    simulate_topology,
)
from repro.service.workload import (
    READ,
    WRITE,
    MMPPArrivals,
    PoissonArrivals,
    Request,
    RequestStream,
    UniformAddresses,
    ZipfianAddresses,
    build_workload,
    load_trace,
    save_trace,
)

__all__ = [
    "DiscreteEventEngine",
    "READ",
    "WRITE",
    "Request",
    "PoissonArrivals",
    "MMPPArrivals",
    "UniformAddresses",
    "ZipfianAddresses",
    "RequestStream",
    "build_workload",
    "save_trace",
    "load_trace",
    "ReadCache",
    "FCFS",
    "READ_PRIORITY",
    "BATCH",
    "POLICIES",
    "BACKEND_BATCHED",
    "BACKEND_SCALAR",
    "BACKEND_MODES",
    "ControllerConfig",
    "CompletedRequest",
    "ArrayBackend",
    "MemoryController",
    "simulate_service",
    "scheme_service_times",
    "build_backend",
    "LatencyStats",
    "QueueStats",
    "ServiceReport",
    "build_report",
    "publish_report",
    "find_saturation_rate",
    "SLOTarget",
    "AdaptiveConfig",
    "AdmissionGate",
    "AdaptiveController",
    "simulate_adaptive_service",
    "ROW_MAJOR",
    "BANK_XOR",
    "CHANNEL_STRIPED",
    "INTERLEAVINGS",
    "Coord",
    "Topology",
    "Interleaver",
    "build_interleaver",
    "ShardRouter",
    "FailoverStats",
    "TopologyReport",
    "shard_seeds",
    "simulate_topology",
    "publish_topology_report",
    "FAILURE_KINDS",
    "CHAOS_SCENARIOS",
    "FailureEvent",
    "FailureScenario",
    "controller_stall",
    "bank_offline",
    "sense_amp_lockup",
    "channel_outage",
    "build_failure_scenario",
    "install_failures",
    "ChaosRow",
    "ChaosCampaignResult",
    "run_chaos_campaign",
    "JournalRecord",
    "WriteAheadJournal",
    "CrashRestartResult",
    "run_crash_restart",
]
