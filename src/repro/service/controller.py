"""Multi-bank memory controller driven by the discrete-event engine.

The controller models the array-level serving path the paper's §V argues
about: requests arrive (from a :mod:`repro.service.workload` stream or a
replayed trace), are interleaved over ``banks`` independent banks
(``bank = address % banks``, or a pluggable ``bank_map`` — the topology
layer routes each channel's requests through its interleaver this way),
queue per bank, and occupy their bank for
the sensing scheme's full read time — ~27 ns for the destructive
self-reference scheme versus ~12.6 ns for the nondestructive one, which
is why the same request rate saturates one macro and not the other.

Three scheduling policies are pluggable:

* ``fcfs`` — strict per-bank arrival order (the historical
  :func:`repro.array.scheduler.simulate_read_queue` semantics);
* ``read-priority`` — reads overtake buffered writes; a bank's write
  buffer bounds the starvation (once more than
  ``write_buffer_depth`` writes wait, the oldest write goes next);
* ``batch`` — read-priority plus batch coalescing: up to ``batch_limit``
  queued reads to the same bank are served in one bank occupancy (each
  extra read costs ``batch_extra_fraction`` of a full read — shared
  word-line/decode overhead), the service analogue of
  :meth:`repro.core.base.SensingScheme.read_many`.

A controller can run in pure **timing mode** (no cell-level simulation;
fast, used for saturation sweeps) or **backed mode**: an
:class:`ArrayBackend` performs every read through a real
:class:`~repro.faults.recovery.RecoveryController` ladder — retry → ECC →
scrub → repair — over an :class:`~repro.ecc.array.EccArray`, optionally
under a :class:`~repro.faults.FaultInjector`, so fault campaigns run
*under load* and per-word retry attempts stretch the bank occupancy they
caused.

In backed mode the coalesced group is the unit of backend work: each
service group reaches the ladder as one vectorized
:meth:`ArrayBackend.read_batch` call (``backend_mode="batched"``, the
default), regression-pinned bit-exact against the historical per-word
loop (``"scalar"``); the FCFS and read-priority policies can additionally
accumulate up to ``ControllerConfig.backend_window`` queued reads into
one occupancy so there is a group to amortize (see ``docs/SERVICE.md``).
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, RetryExhaustedError
from repro.obs import runtime as _obs
from repro.obs.registry import (
    ATTEMPTS_EDGES,
    BATCH_SIZE_EDGES,
    QUEUE_DEPTH_EDGES,
    SERVICE_LATENCY_NS_EDGES,
)
from repro.service.cache import ReadCache
from repro.service.engine import DiscreteEventEngine
from repro.service.workload import READ, Request

__all__ = [
    "FCFS",
    "READ_PRIORITY",
    "BATCH",
    "POLICIES",
    "BACKEND_BATCHED",
    "BACKEND_SCALAR",
    "BACKEND_MODES",
    "ControllerConfig",
    "CompletedRequest",
    "ArrayBackend",
    "MemoryController",
    "simulate_service",
    "scheme_service_times",
    "build_backend",
]

FCFS = "fcfs"
READ_PRIORITY = "read-priority"
BATCH = "batch"
POLICIES: Tuple[str, ...] = (FCFS, READ_PRIORITY, BATCH)

BACKEND_BATCHED = "batched"
BACKEND_SCALAR = "scalar"
#: How backed reads reach the recovery ladder: one vectorized
#: :meth:`ArrayBackend.read_batch` per coalesced group, or the historical
#: per-word :meth:`ArrayBackend.read` loop (kept as the bit-exactness
#: reference the batched path is regression-pinned against).
BACKEND_MODES: Tuple[str, ...] = (BACKEND_BATCHED, BACKEND_SCALAR)


@dataclasses.dataclass(frozen=True)
class ControllerConfig:
    """Geometry and timing parameters of one controller.

    ``read_time``/``write_time`` are the unloaded bank-occupancy times of
    one operation [s] — for a sensing scheme, the scheme's full read
    latency (see :func:`scheme_service_times`).
    """

    read_time: float
    write_time: float
    banks: int = 4
    cache_hit_time: float = 1.0e-9   #: buffer-hit service time [s]
    batch_limit: int = 8             #: max reads coalesced per occupancy
    batch_extra_fraction: float = 0.4  #: extra cost per coalesced read
    write_buffer_depth: int = 4      #: writes a bank may hold back
    #: Backed-serving accumulation window for the FCFS and read-priority
    #: policies: up to this many queued reads are coalesced into one bank
    #: occupancy (and one backend ladder call) even though those policies
    #: nominally serve one request at a time.  1 (the default) preserves
    #: the historical strictly-scalar service order; BATCH ignores it and
    #: uses ``batch_limit``.  Timing-mode runs are unaffected.
    backend_window: int = 1
    #: Controller-level read retries: a read whose recovery ladder is
    #: exhausted is re-queued up to this many times before the controller
    #: gives up and records a terminal failure (``unreachable``).  0 (the
    #: default) keeps the historical semantics — a detected loss completes
    #: with ``failed=True`` and is never re-queued.
    request_retries: int = 0
    #: Base delay [s] before a controller-level re-queue; doubles with
    #: every retry the request has already consumed (exponential backoff).
    retry_backoff: float = 0.0
    #: Hedged reads: a read still waiting this long [s] after arrival is
    #: cloned onto the next bank and the first completion wins (the
    #: straggler copy is dropped when it reaches the head of its queue).
    #: 0 (the default) disables hedging.
    hedge_after: float = 0.0

    def __post_init__(self) -> None:
        if self.read_time <= 0.0 or self.write_time <= 0.0:
            raise ConfigurationError("read_time and write_time must be positive")
        if self.banks < 1:
            raise ConfigurationError(f"banks must be >= 1, got {self.banks}")
        if self.cache_hit_time < 0.0:
            raise ConfigurationError("cache_hit_time must be non-negative")
        if self.batch_limit < 1:
            raise ConfigurationError(f"batch_limit must be >= 1, got {self.batch_limit}")
        if not 0.0 <= self.batch_extra_fraction <= 1.0:
            raise ConfigurationError(
                "batch_extra_fraction must be within [0, 1], got "
                f"{self.batch_extra_fraction}"
            )
        if self.write_buffer_depth < 0:
            raise ConfigurationError("write_buffer_depth must be non-negative")
        if self.backend_window < 1:
            raise ConfigurationError(
                f"backend_window must be >= 1, got {self.backend_window}"
            )
        if self.request_retries < 0:
            raise ConfigurationError(
                f"request_retries must be >= 0, got {self.request_retries}"
            )
        if self.retry_backoff < 0.0:
            raise ConfigurationError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        if self.hedge_after < 0.0:
            raise ConfigurationError(
                f"hedge_after must be >= 0, got {self.hedge_after}"
            )

    def batch_duration(self, reads: int) -> float:
        """Bank occupancy of ``reads`` coalesced reads [s]."""
        return self.read_time * (1.0 + (reads - 1) * self.batch_extra_fraction)


@dataclasses.dataclass(frozen=True)
class CompletedRequest:
    """One finished request with its service accounting."""

    request: Request
    bank: int
    start: float        #: service start [s] (cache hits: arrival time)
    finish: float       #: completion [s]
    cache_hit: bool = False
    batched_with: int = 1  #: size of the coalesced group it rode in
    attempts: int = 1      #: worst sensing attempts (backed mode)
    failed: bool = False   #: recovery ladder exhausted (detected loss)
    shed: bool = False     #: rejected by admission control (never served)
    timed_out: bool = False  #: deadline expired before service (dropped)
    #: Terminal failure without a served response: the controller's retry
    #: budget ran out, the data's home shard was unreachable, or the
    #: request was in flight when the controller crashed.  Distinct from
    #: ``failed`` (which is a *served* response carrying a detected loss).
    unreachable: bool = False
    retries: int = 0       #: controller-level re-queues this request used

    @property
    def latency(self) -> float:
        """Arrival-to-completion latency [s]."""
        return self.finish - self.request.time

    @property
    def queue_delay(self) -> float:
        """Arrival-to-service-start wait [s]."""
        return self.start - self.request.time


class ArrayBackend:
    """Cell-level backing store: every read runs the real recovery ladder.

    Parameters
    ----------
    memory:
        A :class:`~repro.faults.recovery.RecoveryController` (retry → ECC
        → scrub → repair over an :class:`~repro.ecc.array.EccArray`).
    scheme:
        The sensing scheme reads go through.
    rng:
        Sensing RNG — isolated from workload generation and (if present)
        the injector's RNG, preserving the library-wide stream contract.
    injector:
        Optional :class:`~repro.faults.FaultInjector`; its per-operation
        transients (:meth:`perturb_scheme`) strike every read, so a fault
        campaign runs under live traffic.
    """

    def __init__(
        self,
        memory,
        scheme,
        rng: np.random.Generator,
        injector=None,
    ):
        self.memory = memory
        self.scheme = scheme
        self.rng = rng
        self.injector = injector
        self._truth: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0
        self.failed_words = 0     #: detected losses (ladder exhausted)
        self.corrupted_words = 0  #: silent wrong values (escaped)
        self.retried_words = 0    #: words that needed > 1 attempt
        #: Extra input-referred sense-amp offset [V] currently in effect;
        #: the drift scenario layer (:mod:`repro.faults.drift`) steps this
        #: mid-trace via the event calendar.  0.0 keeps the read paths
        #: byte-identical to a build without the drift layer.
        self.drift_offset = 0.0
        self.drift_flips = 0      #: stored cells flipped by drift strikes
        self.scrubbed_words = 0   #: words rewritten by background scrub
        if _obs.active():
            # Register the loss counter at zero so "no failures" is an
            # explicit 0 row in metric dumps, not an absent series.
            _obs.get_registry().inc("service.backend.failed_words", 0)

    @property
    def size_words(self) -> int:
        """Addressable words of the backing memory."""
        return self.memory.size_words

    def _physical(self, address: int) -> int:
        return address % self.size_words

    @staticmethod
    def payload(request_id: int, data_bits: int = 64) -> int:
        """Deterministic write payload derived from the request id."""
        value = (request_id * 0x9E3779B1 + 0x7F4A7C15) & 0xFFFFFFFFFFFFFFFF
        return value & ((1 << data_bits) - 1)

    def write(self, address: int, value: int) -> None:
        """Write through the ladder's remap table, tracking ground truth."""
        physical = self._physical(address)
        self.memory.write_word(physical, value)
        self._truth[physical] = value
        self.writes += 1

    # ------------------------------------------------------------------
    # Drift-scenario hooks (see :mod:`repro.faults.drift`)
    # ------------------------------------------------------------------
    def set_drift_offset(self, offset: float) -> None:
        """Set the sense-amp offset [V] in effect from now on (0 clears)."""
        self.drift_offset = float(offset)

    def _drifted(self, scheme):
        """The scheme as the current drift conditions see it."""
        if self.drift_offset == 0.0:
            return scheme
        from repro.faults.injector import _with_sense_offset

        return _with_sense_offset(scheme, self.drift_offset)

    def strike_flips(self, fraction: float, rng: np.random.Generator) -> int:
        """Flip ``fraction`` of stored cells (an external-field strike).

        Draws one uniform per cell from the **dedicated** drift ``rng`` —
        never from the sensing stream — so a struck run stays
        draw-for-draw aligned with an unstruck one.  Returns the flip
        count.  Flips persist until a write or scrub rewrites the word.
        """
        states = self.memory.memory.array._states
        idx = np.nonzero(rng.random(states.size) < fraction)[0]
        states[idx] ^= 1
        self.drift_flips += int(idx.size)
        return int(idx.size)

    def rewrite_words(self, addresses: Sequence[int]) -> int:
        """Background scrub: rewrite known-good payloads over ``addresses``.

        Restores the ground-truth value of every address that has one
        (clearing accumulated disturb/drift flips) without touching the
        sensing RNG and without counting as workload writes.  Returns the
        number of words rewritten.
        """
        count = 0
        for address in addresses:
            physical = self._physical(address)
            value = self._truth.get(physical)
            if value is None:
                continue
            self.memory.write_word(physical, value)
            count += 1
        self.scrubbed_words += count
        return count

    def _meter_outcome(self, attempts: int, failed: bool) -> None:
        """Record one word's ladder outcome in obs (no-op when off).

        The attempts histogram is fed on the exhausted path too — a lost
        word's sensing effort must not vanish from the telemetry just
        because the ladder gave up on it.
        """
        if not _obs.active():
            return
        registry = _obs.get_registry()
        registry.observe(
            "service.backend.attempts", attempts, edges=ATTEMPTS_EDGES
        )
        if failed:
            registry.inc("service.backend.failed_words")

    def read(self, address: int) -> Tuple[int, bool]:
        """Read one word; returns (worst attempts, failed).

        A detected loss (:class:`~repro.errors.RetryExhaustedError`)
        counts as failed; a silently wrong value counts as corrupted.
        """
        physical = self._physical(address)
        scheme = self.scheme
        if self.injector is not None:
            scheme = self.injector.perturb_scheme(scheme)
        scheme = self._drifted(scheme)
        self.reads += 1
        try:
            recovered = self.memory.read_word(physical, scheme, self.rng)
        except RetryExhaustedError as error:
            self.failed_words += 1
            attempts = max(1, error.attempts)
            self._meter_outcome(attempts, failed=True)
            return attempts, True
        if recovered.attempts > 1:
            self.retried_words += 1
        expected = self._truth.get(physical)
        if expected is not None and recovered.value != expected:
            self.corrupted_words += 1
        self._meter_outcome(recovered.attempts, failed=False)
        return recovered.attempts, False

    def read_batch(self, addresses: Sequence[int]) -> List[Tuple[int, bool]]:
        """Read one coalesced group; returns ``(attempts, failed)`` per word.

        The whole group goes through the recovery ladder as ONE batched
        call (:meth:`~repro.faults.recovery.RecoveryController.read_words`)
        instead of a Python loop of scalar reads.  Draw-order contract,
        pinned by the parity regressions in ``tests/test_service_batch.py``:

        * Injector transients are drawn **once per group** and strike every
          word of it (a coalesced group is one array operation — shared
          word-line activation, shared bit-line conditions).  With no
          injector — or one whose transients draw nothing per operation,
          e.g. drift-only — ``read_batch(addrs)`` is bit-exact with
          ``[read(a) for a in addrs]`` under the same RNG; per-operation
          noise faults draw once per group here versus once per word there.
        * Sensing draws are group-major: the fused clean pass consumes the
          read stream exactly as a word-by-word loop's first attempts
          would, and any group that needs the ladder is rewound and split
          at the escalating words (clean segments re-fuse, escalating
          words replay through the scalar ladder), so the stream stays
          bit-exact with the scalar loop in every case.

        Addresses may repeat: a repeated word ends the current fused run
        and starts a new one (re-reading the same cells within one batch
        has no sequential meaning), preserving loop order and semantics.
        """
        addresses = list(addresses)
        if not addresses:
            return []
        scheme = self.scheme
        if self.injector is not None:
            scheme = self.injector.perturb_scheme(scheme)
        scheme = self._drifted(scheme)
        if _obs.active():
            _obs.get_registry().observe(
                "service.backend.batch_size",
                len(addresses),
                edges=BATCH_SIZE_EDGES,
            )
        outcomes: List[Tuple[int, bool]] = []
        start = 0
        while start < len(addresses):
            stop = start
            seen = set()
            while stop < len(addresses):
                physical = self._physical(addresses[stop])
                if physical in seen:
                    break
                seen.add(physical)
                stop += 1
            outcomes.extend(self._read_group(addresses[start:stop], scheme))
            start = stop
        return outcomes

    def _read_group(self, addresses, scheme) -> List[Tuple[int, bool]]:
        """One fused ladder call over distinct words, scalar accounting."""
        self.reads += len(addresses)
        words = self.memory.read_words(
            [self._physical(address) for address in addresses], scheme, self.rng
        )
        outcomes = []
        for address, word in zip(addresses, words):
            if word.failed:
                self.failed_words += 1
                attempts, failed = max(1, word.attempts), True
            else:
                if word.attempts > 1:
                    self.retried_words += 1
                expected = self._truth.get(self._physical(address))
                if expected is not None and word.value != expected:
                    self.corrupted_words += 1
                attempts, failed = word.attempts, False
            self._meter_outcome(attempts, failed)
            outcomes.append((attempts, failed))
        return outcomes

    def statistics(self) -> dict:
        """Backend counters as a plain dict."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "retried_words": self.retried_words,
            "failed_words": self.failed_words,
            "corrupted_words": self.corrupted_words,
            "drift_flips": self.drift_flips,
            "scrubbed_words": self.scrubbed_words,
        }


class _Bank:
    """One bank: arrival-ordered pending requests plus busy state.

    FCFS keeps the single interleaved ``queue`` (relative read/write
    order is its semantics); the read-priority and batch policies only
    ever consume "next read in arrival order" or "next write in arrival
    order", so they store the two ops in separate deques — O(1) pops
    instead of rescanning a deep saturated queue.  ``queued_writes``
    mirrors the number of writes currently in ``queue`` (FCFS only).
    """

    __slots__ = ("queue", "reads", "writes", "busy", "served",
                 "queued_writes")

    def __init__(self) -> None:
        self.queue: List[Request] = []
        self.reads: Deque[Request] = collections.deque()
        self.writes: Deque[Request] = collections.deque()
        self.busy = False
        self.served = 0
        self.queued_writes = 0

    def depth(self) -> int:
        """Pending requests across whichever storage the policy uses."""
        return len(self.queue) + len(self.reads) + len(self.writes)


class MemoryController:
    """Schedules requests over banks on a :class:`DiscreteEventEngine`."""

    def __init__(
        self,
        engine: DiscreteEventEngine,
        config: ControllerConfig,
        policy: str = FCFS,
        cache: Optional[ReadCache] = None,
        backend: Optional[ArrayBackend] = None,
        retry_policy=None,
        backend_mode: str = BACKEND_BATCHED,
        bank_map=None,
    ):
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown policy {policy!r}; expected one of {POLICIES}"
            )
        if backend_mode not in BACKEND_MODES:
            raise ConfigurationError(
                f"unknown backend_mode {backend_mode!r}; expected one of "
                f"{BACKEND_MODES}"
            )
        self.engine = engine
        self.config = config
        self.policy = policy
        self.cache = cache
        self.backend = backend
        self.retry_policy = retry_policy
        self.backend_mode = backend_mode
        #: Optional ``address -> bank index`` override.  The topology
        #: layer (:mod:`repro.service.topology`) supplies each channel
        #: controller's interleaver-driven local bank mapping here; None
        #: keeps the historical flat ``address % banks`` interleaving.
        self.bank_map = bank_map
        #: Optional admission gate (see
        #: :class:`repro.service.adaptive.AdmissionGate`): consulted at
        #: every arrival; a rejected request is recorded as a ``shed``
        #: completion at its arrival time and never touches a bank.
        self.admission = None
        #: Optional :class:`repro.service.journal.WriteAheadJournal`: every
        #: write is journaled at arrival (ahead of the write buffer) and
        #: acknowledged at completion, so a mid-trace crash can replay the
        #: acknowledged suffix bit-exactly (see ``docs/RESILIENCE.md``).
        self.journal = None
        #: Service-time multiplier (1.0 = healthy).  The failure-scenario
        #: layer (:mod:`repro.service.failures`) inflates this mid-trace to
        #: model a stalled controller; every occupancy is stretched by it.
        self.stall_factor = 1.0
        self._banks = [_Bank() for _ in range(config.banks)]
        self._offline_banks: set = set()
        self._locked_banks: set = set()
        #: Terminal request ids + ids currently occupying a bank — the
        #: dedupe state hedged reads need; maintained only while hedging.
        self._finished: set = set()
        self._in_service: set = set()
        self._retry_counts: Dict[int, int] = {}
        self._deadlines = False
        self._hedging = config.hedge_after > 0.0 and config.banks > 1
        self.hedged = 0
        self.hedge_wins = 0
        self.retries_performed = 0
        self.completions: List[CompletedRequest] = []
        self.depth_samples: List[int] = []
        self.submitted = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def bank_of(self, address: int) -> int:
        """The bank an address queues on: ``bank_map`` if set, else
        flat modulo interleaving."""
        if self.bank_map is not None:
            return self.bank_map(address)
        return address % self.config.banks

    def submit(self, request: Request) -> None:
        """Schedule one request's arrival on the engine."""
        self.submitted += 1
        if request.deadline > 0.0:
            self._deadlines = True
        self.engine.schedule_at(request.time, self._arrive, request)

    def submit_all(self, requests: Sequence[Request]) -> None:
        """Schedule a whole stream as one bulk calendar load.

        :meth:`DiscreteEventEngine.schedule_batch` assigns sequence numbers
        in iteration order, so the execution order — ties included — is
        identical to submitting one request at a time.
        """
        self.submitted += len(requests)
        if not self._deadlines and any(r.deadline > 0.0 for r in requests):
            self._deadlines = True
        self.engine.schedule_batch(
            (request.time, self._arrive, (request,)) for request in requests
        )

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _arrive(self, request: Request) -> None:
        if _obs.active():
            _obs.get_registry().inc("service.requests", op=request.op)
        if self.admission is not None:
            bank_index = self.bank_of(request.address)
            depth = self._banks[bank_index].depth()
            if not self.admission.admit(request, depth, self.engine.now):
                self._record(CompletedRequest(
                    request=request,
                    bank=bank_index,
                    start=self.engine.now,
                    finish=self.engine.now,
                    shed=True,
                ))
                return
        if request.is_read and self.cache is not None:
            if self.cache.lookup(request.address):
                bank = self.bank_of(request.address)
                self.engine.schedule(
                    self.config.cache_hit_time,
                    self._complete_cache_hit,
                    request,
                    bank,
                    self.engine.now,
                )
                return
        elif not request.is_read and self.cache is not None:
            self.cache.invalidate(request.address)
        if self.journal is not None and not request.is_read:
            # Write-ahead: journaled before the write buffer may hold it.
            self.journal.append(
                request.request_id,
                request.address,
                ArrayBackend.payload(request.request_id),
                self.engine.now,
            )
        bank_index = self.bank_of(request.address)
        bank = self._banks[bank_index]
        if self.policy == FCFS:
            bank.queue.append(request)
            if not request.is_read:
                bank.queued_writes += 1
        elif request.is_read:
            bank.reads.append(request)
        else:
            bank.writes.append(request)
        if self._hedging and request.is_read:
            self.engine.schedule(
                self.config.hedge_after, self._maybe_hedge, request, bank_index
            )
        if not bank.busy:
            self._start_service(bank_index)

    def _complete_cache_hit(self, request: Request, bank: int, start: float) -> None:
        self._record(CompletedRequest(
            request=request,
            bank=bank,
            start=start,
            finish=self.engine.now,
            cache_hit=True,
        ))

    def _start_service(self, bank_index: int) -> None:
        bank = self._banks[bank_index]
        if bank.busy or bank_index in self._offline_banks:
            return
        taken = self._select(bank)
        if self._deadlines or self._hedging:
            # Screening drops expired and already-won requests at the
            # head of the queue; keep selecting until a group survives.
            while taken:
                taken = self._screen(taken, bank_index)
                if taken:
                    break
                taken = self._select(bank)
        if not taken:
            return
        bank.busy = True
        self.depth_samples.append(bank.depth())
        if _obs.active():
            _obs.get_registry().observe(
                "service.queue_depth", bank.depth(), edges=QUEUE_DEPTH_EDGES
            )
        if self._hedging:
            self._in_service.update(r.request_id for r in taken)
        duration, attempts, failed = self._serve(taken, bank_index)
        self.engine.schedule(
            duration, self._complete, bank_index, taken, self.engine.now,
            attempts, failed,
        )

    def _screen(self, taken: List[Request], bank_index: int) -> List[Request]:
        """Drop finished hedge twins and expired requests from a group.

        A request whose deadline passed while it queued is recorded as a
        ``timed_out`` drop — the deadline bounds *service start*, so an
        expired request never occupies a bank.  Only active when deadlines
        or hedging are in play; otherwise selection is untouched.
        """
        kept: List[Request] = []
        now = self.engine.now
        for request in taken:
            rid = request.request_id
            if self._hedging and (rid in self._finished or rid in self._in_service):
                continue  # the twin already won (or is being served)
            if 0.0 < request.deadline < now:
                self._record(CompletedRequest(
                    request=request,
                    bank=bank_index,
                    start=now,
                    finish=now,
                    timed_out=True,
                ))
                continue
            kept.append(request)
        return kept

    def _maybe_hedge(self, request: Request, home_bank: int) -> None:
        """Clone a still-waiting read onto the sibling bank.

        Fires ``hedge_after`` seconds after arrival; a no-op if the read
        already finished or is being served.  The clone joins the sibling
        bank's read queue and whichever copy is served first wins — the
        straggler is screened out when it reaches the head of its queue.
        """
        rid = request.request_id
        if rid in self._finished or rid in self._in_service:
            return
        sibling = (home_bank + 1) % self.config.banks
        if sibling == home_bank or sibling in self._offline_banks:
            return
        bank = self._banks[sibling]
        if self.policy == FCFS:
            bank.queue.append(request)
        else:
            bank.reads.append(request)
        self.hedged += 1
        if _obs.active():
            _obs.get_registry().inc("service.hedged")
        if not bank.busy:
            self._start_service(sibling)

    def _requeue(self, request: Request) -> None:
        """Re-enqueue a read whose ladder failed (controller-level retry)."""
        bank_index = self.bank_of(request.address)
        bank = self._banks[bank_index]
        if self.policy == FCFS:
            bank.queue.append(request)
            if not request.is_read:
                bank.queued_writes += 1
        elif request.is_read:
            bank.reads.append(request)
        else:
            bank.writes.append(request)
        if not bank.busy:
            self._start_service(bank_index)

    def _complete(
        self,
        bank_index: int,
        taken: List[Request],
        start: float,
        attempts: int,
        failed: Tuple[int, ...],
    ) -> None:
        bank = self._banks[bank_index]
        group = len(taken)
        budget = self.config.request_retries
        for request in taken:
            rid = request.request_id
            if self._hedging:
                self._in_service.discard(rid)
            word_failed = rid in failed
            if word_failed and budget > 0 and request.is_read:
                used = self._retry_counts.get(rid, 0)
                if used < budget:
                    # The ladder lost this word: back off and re-queue
                    # rather than answering with a detected loss.
                    self._retry_counts[rid] = used + 1
                    self.retries_performed += 1
                    if _obs.active():
                        _obs.get_registry().inc("service.retries")
                    self.engine.schedule(
                        self.config.retry_backoff * (2 ** used),
                        self._requeue,
                        request,
                    )
                    continue
                self._record(CompletedRequest(
                    request=request,
                    bank=bank_index,
                    start=start,
                    finish=self.engine.now,
                    batched_with=group,
                    attempts=attempts,
                    failed=True,
                    unreachable=True,
                    retries=used,
                ))
                continue
            if request.is_read and self.cache is not None:
                self.cache.fill(request.address)
            self._record(CompletedRequest(
                request=request,
                bank=bank_index,
                start=start,
                finish=self.engine.now,
                batched_with=group,
                attempts=attempts,
                failed=word_failed,
                retries=self._retry_counts.get(rid, 0),
            ))
        bank.served += group
        bank.busy = False
        if bank.depth():
            self._start_service(bank_index)

    # ------------------------------------------------------------------
    # Structural-failure hooks (see :mod:`repro.service.failures`)
    # ------------------------------------------------------------------
    def _failure_event(self, kind: str) -> None:
        if _obs.active():
            _obs.get_registry().inc("service.failures.events", kind=kind)

    def _check_bank(self, bank_index: int) -> None:
        if not 0 <= bank_index < self.config.banks:
            raise ConfigurationError(
                f"bank {bank_index} out of range for {self.config.banks} banks"
            )

    def set_stall_factor(self, factor: float) -> None:
        """Inflate (or restore) every occupancy by ``factor`` from now on."""
        if factor <= 0.0:
            raise ConfigurationError(f"stall factor must be > 0, got {factor}")
        self.stall_factor = float(factor)
        self._failure_event(
            "controller-stall" if factor != 1.0 else "stall-cleared"
        )

    def set_bank_offline(self, bank_index: int) -> None:
        """Take a bank offline: its in-flight group finishes, nothing new
        starts, arrivals keep queueing until :meth:`set_bank_online`."""
        self._check_bank(bank_index)
        self._offline_banks.add(bank_index)
        self._failure_event("bank-offline")

    def set_bank_online(self, bank_index: int) -> None:
        """Heal an offline bank and kick its queue back into service."""
        self._check_bank(bank_index)
        self._offline_banks.discard(bank_index)
        self._failure_event("bank-online")
        if self._banks[bank_index].depth():
            self._start_service(bank_index)

    def lock_bank(self, bank_index: int) -> None:
        """Latch a bank's sense amps: reads occupy the bank but return
        detected losses (no sensing happens); writes are unaffected."""
        self._check_bank(bank_index)
        self._locked_banks.add(bank_index)
        self._failure_event("sense-lockup")

    def unlock_bank(self, bank_index: int) -> None:
        """Release a latched bank's sense amps."""
        self._check_bank(bank_index)
        self._locked_banks.discard(bank_index)
        self._failure_event("sense-unlocked")

    # ------------------------------------------------------------------
    # Policy and service model
    # ------------------------------------------------------------------
    def _read_window(self) -> int:
        """Reads the FCFS/read-priority policies may coalesce per service.

        Accumulation windows are a *backed-serving* feature: in timing
        mode the historical one-request-at-a-time semantics are kept
        (there is no per-word backend work to amortize).
        """
        if self.backend is None:
            return 1
        return self.config.backend_window

    def _select(self, bank: _Bank) -> List[Request]:
        """Pop the next group to serve according to the policy."""
        if self.policy == FCFS:
            # Strict arrival order: only the *leading* run of consecutive
            # reads may coalesce (no read overtakes a queued write).
            queue = bank.queue
            if not queue:
                return []
            window = self._read_window()
            taken = [queue.pop(0)]
            if not taken[0].is_read:
                bank.queued_writes -= 1
            while (
                taken[0].is_read
                and len(taken) < window
                and queue
                and queue[0].is_read
            ):
                taken.append(queue.pop(0))
            return taken
        # Read-priority/batch: reads overtake writes, each op served in
        # its own arrival order, so the split deques pop in O(1) — no
        # rescans of a deep saturated queue.
        reads, writes = bank.reads, bank.writes
        if not reads and not writes:
            return []
        if not reads or len(writes) > self.config.write_buffer_depth:
            if writes:
                return [writes.popleft()]
        limit = (
            self.config.batch_limit
            if self.policy == BATCH
            else self._read_window()
        )
        return [reads.popleft() for _ in range(min(limit, len(reads)))]

    def _serve(
        self, taken: List[Request], bank_index: int = 0
    ) -> Tuple[float, int, Tuple[int, ...]]:
        """Bank occupancy of one group; backed mode performs real reads.

        Returns ``(duration, worst_attempts, failed_request_ids)``.  In
        backed mode every extra sensing attempt of the slowest word adds
        one more read pass plus the retry policy's simulated backoff.
        A nonzero stall factor stretches the final duration; a latched
        bank (:meth:`lock_bank`) turns every read of the group into a
        detected loss without touching the backend or its RNG.
        """
        if not taken[0].is_read:
            if self.backend is not None:
                request = taken[0]
                self.backend.write(
                    request.address, ArrayBackend.payload(request.request_id)
                )
            return self.config.write_time * self.stall_factor, 1, ()
        if bank_index in self._locked_banks:
            # Sense amps latched: the occupancy happens, the sensing
            # doesn't — every word comes back as a flagged loss.
            duration = self.config.batch_duration(len(taken)) * self.stall_factor
            return duration, 1, tuple(r.request_id for r in taken)
        duration = self.config.batch_duration(len(taken))
        attempts = 1
        failed: List[int] = []
        if self.backend is not None:
            if self.backend_mode == BACKEND_BATCHED:
                with _obs.profile_block("service.backend.batched"):
                    outcomes = self.backend.read_batch(
                        [request.address for request in taken]
                    )
            else:
                with _obs.profile_block("service.backend.scalar"):
                    outcomes = [
                        self.backend.read(request.address) for request in taken
                    ]
            for request, (word_attempts, word_failed) in zip(taken, outcomes):
                attempts = max(attempts, word_attempts)
                if word_failed:
                    failed.append(request.request_id)
            if attempts > 1:
                duration += (attempts - 1) * self.config.read_time
                if self.retry_policy is not None:
                    duration += self.retry_policy.total_backoff(attempts) * 1e-9
        if _obs.active() and len(taken) > 1:
            registry = _obs.get_registry()
            registry.inc("service.batches")
            registry.inc("service.batched_reads", len(taken))
        return duration * self.stall_factor, attempts, tuple(failed)

    def _record(self, completed: CompletedRequest) -> None:
        self.completions.append(completed)
        request = completed.request
        if self._hedging:
            self._finished.add(request.request_id)
            if (
                request.is_read
                and not (completed.shed or completed.timed_out or completed.cache_hit)
                and completed.bank != self.bank_of(request.address)
            ):
                # Terminal record came from the sibling bank: the hedge won.
                self.hedge_wins += 1
        if (
            self.journal is not None
            and not request.is_read
            and not (completed.shed or completed.timed_out or completed.unreachable)
        ):
            self.journal.acknowledge(request.request_id, self.engine.now)
        if _obs.active():
            registry = _obs.get_registry()
            if completed.shed:
                registry.inc(
                    "service.admission.shed",
                    priority="low" if completed.request.priority > 0 else "normal",
                )
                return
            if completed.timed_out:
                registry.inc("service.timed_out", op=request.op)
                return
            if completed.unreachable:
                registry.inc("service.failed_requests", op=request.op)
                return
            registry.inc("service.completions", op=completed.request.op)
            registry.observe(
                "service.latency_ns",
                completed.latency * 1e9,
                edges=SERVICE_LATENCY_NS_EDGES,
                op=completed.request.op,
            )
            if completed.cache_hit:
                registry.inc("service.cache.hits")
            if completed.failed:
                registry.inc("service.failed_words")

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        """Requests finished so far."""
        return len(self.completions)

    def bank_served_counts(self) -> Tuple[int, ...]:
        """Requests served per bank."""
        return tuple(bank.served for bank in self._banks)


def simulate_service(
    requests: Sequence[Request],
    config: ControllerConfig,
    policy: str = FCFS,
    cache: Optional[ReadCache] = None,
    backend: Optional[ArrayBackend] = None,
    retry_policy=None,
    scheme: str = "",
    offered_rate: float = 0.0,
    backend_mode: str = BACKEND_BATCHED,
    failures=None,
):
    """Run one full simulation and return its
    :class:`~repro.service.report.ServiceReport`.

    The convenience entry point the CLI, the benchmarks, and the
    :func:`repro.array.scheduler.simulate_read_queue` wrapper all share:
    build an engine, submit the stream, drain the calendar, summarize.
    ``failures`` optionally installs a
    :class:`~repro.service.failures.FailureScenario` on the calendar
    before the stream runs (channel outages need the topology driver).
    """
    from repro.service.report import build_report

    if not requests:
        raise ConfigurationError("requests must be a non-empty sequence")
    engine = DiscreteEventEngine()
    controller = MemoryController(
        engine, config, policy=policy, cache=cache, backend=backend,
        retry_policy=retry_policy, backend_mode=backend_mode,
    )
    if failures is not None:
        from repro.service.failures import install_failures

        install_failures(engine, controller, failures)
    controller.submit_all(requests)
    engine.run()
    report = build_report(
        controller, scheme=scheme, offered_rate=offered_rate
    )
    # A drained calendar must account for every request exactly once.
    report.check_conservation()
    return report


def scheme_service_times(scheme: str, config=None) -> Tuple[float, float]:
    """(read_time, write_time) of one sensing scheme on the paper device.

    The read time is the scheme's full modelled latency from
    :mod:`repro.timing.latency` at its calibrated β (~27 ns destructive,
    ~12.6 ns nondestructive); the write time is word-line activation plus
    write-driver setup plus the 4 ns switching pulse.
    """
    from repro.calibration import calibrate, calibrated_cell
    from repro.timing.latency import (
        TimingConfig,
        destructive_read_latency,
        nondestructive_read_latency,
    )

    calibration = calibrate()
    cell = calibrated_cell()
    timing = config if config is not None else TimingConfig()
    if scheme == "destructive":
        breakdown = destructive_read_latency(
            cell, beta=calibration.beta_destructive, config=timing
        )
    elif scheme == "nondestructive":
        breakdown = nondestructive_read_latency(
            cell, beta=calibration.beta_nondestructive, config=timing
        )
    else:
        raise ConfigurationError(
            f"unknown scheme {scheme!r}; expected destructive/nondestructive"
        )
    write_time = (
        timing.t_wordline
        + timing.t_write_setup
        + cell.mtj.params.pulse_width_write
        + timing.t_latch
    )
    return breakdown.total, write_time


def build_backend(
    scheme: str,
    seed: int,
    bits: int = 16384,
    fault_rate: float = 0.0,
    data_bits: int = 64,
    retry_policy=None,
    transients: bool = True,
) -> Tuple[ArrayBackend, object]:
    """A fully initialized :class:`ArrayBackend` on the 16kb test chip.

    Mirrors the fault campaign's construction recipe — calibrated device,
    test-chip variation, SECDED words behind a
    :class:`~repro.faults.recovery.RecoveryController` — with the same
    three-way RNG split (build / fault / read streams), writes a known
    pattern into every word, and (at ``fault_rate > 0``) injects
    :func:`~repro.faults.campaign.default_fault_models` so the service
    simulation reads a genuinely damaged array.  ``transients=False``
    restricts the injection to permanent faults — the configuration the
    batched-vs-scalar parity regressions use, since per-operation noise
    transients deliberately draw once per coalesced group rather than
    once per word (see :meth:`ArrayBackend.read_batch`).

    Returns ``(backend, retry_policy)`` — the policy so the controller can
    charge simulated backoff time for retried reads.
    """
    from repro.array.array import STTRAMArray
    from repro.array.testchip import TESTCHIP_VARIATION
    from repro.calibration import calibrate
    from repro.calibration.targets import PAPER_TARGETS
    from repro.core.retry import RetryPolicy
    from repro.device.variation import CellPopulation
    from repro.ecc.array import EccArray
    from repro.faults.campaign import build_scheme, default_fault_models
    from repro.faults.injector import FaultInjector
    from repro.faults.recovery import RecoveryController

    if retry_policy is None:
        retry_policy = RetryPolicy(max_attempts=3, backoff_ns=5.0, current_escalation=0.1)
    calibration = calibrate()
    sensing = build_scheme(scheme, calibration, PAPER_TARGETS.r_transistor)
    rng_build = np.random.default_rng((seed, 0))
    rng_fault = np.random.default_rng((seed, 1))
    rng_read = np.random.default_rng((seed, 2))
    population = CellPopulation.sample(
        bits,
        TESTCHIP_VARIATION,
        params=calibration.params,
        rolloff_high=calibration.rolloff_high(),
        rolloff_low=calibration.rolloff_low(),
        rng=rng_build,
        r_tr_nominal=PAPER_TARGETS.r_transistor,
    )
    array = STTRAMArray(population)
    memory = EccArray(array, data_bits=data_bits)
    ladder = RecoveryController(memory, retry_policy, scrub_rounds=2, spare_words=8)
    injector = None
    if fault_rate > 0.0:
        injector = FaultInjector(
            list(default_fault_models(fault_rate, transients=transients)),
            rng_fault,
        )
    backend = ArrayBackend(ladder, sensing, rng_read, injector=injector)
    for address in range(backend.size_words):
        backend.write(address, ArrayBackend.payload(address, data_bits))
    backend.writes = 0  # initialization fill is not workload traffic
    if injector is not None:
        injector.inject_array(array)
    return backend, retry_policy
