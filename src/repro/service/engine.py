"""Deterministic discrete-event engine for the serving subsystem.

The engine is a classic event-calendar loop: callbacks are scheduled at
absolute simulated times, popped in time order, and executed with the
clock advanced to their timestamp.  Two properties make it the foundation
every :mod:`repro.service` simulation builds on:

* **Determinism.**  Ties are broken by insertion order (a monotonically
  increasing sequence number), never by callback identity or hash order,
  so the same schedule of events always executes in the same order and a
  same-seed simulation is bit-reproducible.
* **No randomness.**  The engine owns no RNG.  Workload generators and
  sensing backends each carry their own seeded generator, so the event
  calendar can never shift a sensing draw stream (the same isolation
  contract as :class:`repro.faults.FaultInjector`).

This engine subsumes the ad-hoc loop that
:func:`repro.array.scheduler.simulate_read_queue` used to hand-roll: that
function is now a thin wrapper over an engine-driven
:class:`~repro.service.controller.MemoryController`.

Usage::

    engine = DiscreteEventEngine()
    engine.schedule(5e-9, lambda: print(engine.now))
    engine.run()            # prints 5e-09
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["DiscreteEventEngine"]


class DiscreteEventEngine:
    """A minimal, deterministic event calendar.

    Events are ``(time, seq, callback, args)`` tuples on a binary heap;
    ``seq`` is the global insertion counter, so events at equal times run
    in the order they were scheduled (a completion scheduled before an
    arrival at the same instant frees its bank first — exactly the
    sequential semantics of the historical scheduler loop).
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = itertools.count()
        self._heap: List[Tuple[float, int, Callable, tuple]] = []
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time [s]."""
        return self._now

    @property
    def pending(self) -> int:
        """Events still on the calendar."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, callback: Callable, *args) -> None:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise ConfigurationError(
                f"cannot schedule an event at {time} before now ({self._now})"
            )
        heapq.heappush(self._heap, (time, next(self._seq), callback, args))

    def schedule(self, delay: float, callback: Callable, *args) -> None:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0.0:
            raise ConfigurationError(f"delay must be non-negative, got {delay}")
        self.schedule_at(self._now + delay, callback, *args)

    def schedule_batch(
        self, events: Iterable[Tuple[float, Callable, tuple]]
    ) -> int:
        """Bulk-load ``(time, callback, args)`` events in one heapify pass.

        Execution order is identical to calling :meth:`schedule_at` once
        per event in iteration order: sequence numbers are assigned in that
        order, and the heap is a total order on ``(time, seq)``, so how the
        entries entered the heap cannot change pop order.  What changes is
        the cost — one :func:`heapq.heapify` (O(n)) instead of n pushes —
        which is what lets a controller submit a whole request trace as a
        single vectorized chunk.  Returns the number of events loaded.
        """
        entries = [
            (time, next(self._seq), callback, args)
            for time, callback, args in events
        ]
        for time, _, _, _ in entries:
            if time < self._now:
                raise ConfigurationError(
                    f"cannot schedule an event at {time} before now ({self._now})"
                )
        self._heap.extend(entries)
        heapq.heapify(self._heap)
        return len(entries)

    def drop_pending(self) -> int:
        """Discard every event still on the calendar; returns the count.

        This is the power-loss primitive the crash/restart scenario uses
        (:func:`repro.service.journal.run_crash_restart`): whatever was
        scheduled — queued arrivals, in-flight completions, retry timers —
        vanishes, exactly as volatile controller state does when power
        drops.  The clock is left where it stopped.
        """
        dropped = len(self._heap)
        self._heap.clear()
        return dropped

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event; False when the calendar is empty."""
        if not self._heap:
            return False
        time, _, callback, args = heapq.heappop(self._heap)
        self._now = time
        self.events_processed += 1
        callback(*args)
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Drain the calendar; returns the number of events executed.

        ``until`` stops the clock once the next event lies strictly beyond
        it (that event stays scheduled); ``max_events`` bounds runaway
        feedback loops.
        """
        executed = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        return executed
