"""Write-ahead journal and the mid-trace crash/restart scenario.

The paper's nondestructive scheme protects *stored* data from the read
path; this module protects *acknowledged writes* from the controller
itself.  Every write is journaled at arrival — before it can sit in a
bank's write buffer — and acknowledged when its bank occupancy completes.
If the controller dies mid-trace, volatile state (queues, the event
calendar, in-flight service) is gone, but the journal survives: a
restarted controller rebuilds its backing array from the deterministic
base image and replays the acknowledged journal suffix in order, after
which every acknowledged write is bit-exact with an uninterrupted run.

Unacknowledged writes and requests caught in flight are *lost loudly*:
the crash driver records each as a terminal ``failed_requests`` entry
(the client never got an acknowledgement, so nothing silent happened),
and the conservation invariant
``requests == completed + shed + timed_out + failed`` still holds over
the two phases combined.  See ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, FaultError

__all__ = [
    "JournalRecord",
    "WriteAheadJournal",
    "CrashRestartResult",
    "run_crash_restart",
]


@dataclasses.dataclass(frozen=True)
class JournalRecord:
    """One journaled write: what would be replayed after a crash."""

    seq: int           #: append order — replay order
    request_id: int
    address: int
    value: int         #: the payload the write carries
    time: float        #: journal-append (arrival) time [s]

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise ConfigurationError(f"seq must be >= 0, got {self.seq}")
        if self.value < 0:
            raise ConfigurationError(f"value must be >= 0, got {self.value}")


class WriteAheadJournal:
    """An append-only write journal with acknowledgement tracking.

    The controller appends at write *arrival* (write-ahead of the buffer)
    and acknowledges at completion; only acknowledged entries replay.
    Same-address writes replay in append order, which per bank is arrival
    order — exactly the order the controller's FIFO write path applies
    them — so replay converges to the uninterrupted run's final value.
    """

    def __init__(self) -> None:
        self._records: List[JournalRecord] = []
        self._acked: Dict[int, float] = {}

    def __len__(self) -> int:
        return len(self._records)

    @property
    def appended(self) -> int:
        """Writes journaled so far."""
        return len(self._records)

    @property
    def acknowledged(self) -> int:
        """Writes whose completion was acknowledged."""
        return len(self._acked)

    def append(self, request_id: int, address: int, value: int,
               time: float) -> int:
        """Journal one write; returns its sequence number."""
        seq = len(self._records)
        self._records.append(
            JournalRecord(seq, request_id, address, value, time)
        )
        return seq

    def acknowledge(self, request_id: int, time: float) -> None:
        """Mark a journaled write as acknowledged to its client."""
        self._acked[request_id] = time

    def acknowledged_records(self) -> Tuple[JournalRecord, ...]:
        """Acknowledged entries in append (replay) order."""
        return tuple(
            record for record in self._records
            if record.request_id in self._acked
        )

    def unacknowledged_records(self) -> Tuple[JournalRecord, ...]:
        """Journaled but never acknowledged — lost loudly on a crash."""
        return tuple(
            record for record in self._records
            if record.request_id not in self._acked
        )

    def replay(self, backend) -> int:
        """Apply every acknowledged write to ``backend`` in order.

        Returns the number of writes replayed.  Replay does not count as
        workload traffic: the backend's write counter is restored.
        """
        records = self.acknowledged_records()
        before = backend.writes
        for record in records:
            backend.write(record.address, record.value)
        backend.writes = before
        return len(records)

    # ------------------------------------------------------------------
    # Durable form
    # ------------------------------------------------------------------
    def write_jsonl(self, path) -> int:
        """Persist the journal as JSONL; returns the record count."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self._records:
                payload = {
                    "seq": record.seq,
                    "id": record.request_id,
                    "addr": record.address,
                    "val": record.value,
                    "t": record.time,
                }
                if record.request_id in self._acked:
                    payload["ack"] = self._acked[record.request_id]
                handle.write(json.dumps(payload, sort_keys=True) + "\n")
        return len(self._records)

    @classmethod
    def load_jsonl(cls, path) -> "WriteAheadJournal":
        """Rebuild a journal persisted by :meth:`write_jsonl`."""
        journal = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line)
                journal._records.append(JournalRecord(
                    seq=int(payload["seq"]),
                    request_id=int(payload["id"]),
                    address=int(payload["addr"]),
                    value=int(payload["val"]),
                    time=float(payload["t"]),
                ))
                if "ack" in payload:
                    journal._acked[int(payload["id"])] = float(payload["ack"])
        return journal


@dataclasses.dataclass(frozen=True)
class CrashRestartResult:
    """Combined accounting of a crash at ``crash_time`` plus the restart."""

    crash_time: float
    requests: int
    completed: int
    shed: int
    timed_out: int
    failed_requests: int      #: incl. every request lost in the crash
    detected_loss: int
    corrupted_words: int      #: silent escapes across both phases
    pre_crash_completed: int
    resumed_completed: int
    journaled_writes: int
    acknowledged_writes: int  #: acknowledged before the crash — replayed
    replayed_writes: int
    lost_writes: int          #: journaled, never acknowledged
    durable_addresses: int    #: acked addresses checked against the
                              #: uninterrupted run
    mismatched_addresses: int

    @property
    def bit_exact(self) -> bool:
        """True when every checkable acknowledged write matches the
        uninterrupted run bit-for-bit."""
        return self.mismatched_addresses == 0

    @property
    def conserved(self) -> bool:
        return self.requests == (
            self.completed + self.shed + self.timed_out + self.failed_requests
        )

    def check(self) -> "CrashRestartResult":
        """Raise :class:`~repro.errors.FaultError` on any broken invariant."""
        if not self.conserved:
            raise FaultError(
                f"crash-restart: conservation violated ({self.requests} != "
                f"{self.completed} + {self.shed} + {self.timed_out} + "
                f"{self.failed_requests})"
            )
        if self.corrupted_words:
            raise FaultError(
                f"crash-restart: {self.corrupted_words} silent escapes"
            )
        if not self.bit_exact:
            raise FaultError(
                f"crash-restart: {self.mismatched_addresses} acknowledged "
                "writes diverged from the uninterrupted run"
            )
        return self


def run_crash_restart(
    requests: Sequence,
    *,
    crash_time: float,
    scheme: str = "nondestructive",
    seed: int = 2010,
    bits: int = 2304,
    fault_rate: float = 0.0,
    policy: str = "fcfs",
    config=None,
) -> CrashRestartResult:
    """Kill the controller mid-trace, restart from the journal, compare.

    Three runs share one request stream:

    1. **Phase A** serves normally with a write-ahead journal attached
       until ``crash_time``, then the calendar is dropped
       (:meth:`~repro.service.engine.DiscreteEventEngine.drop_pending`) —
       queues, in-flight occupancies, and timers vanish.
    2. **Restart** rebuilds the backing array from the same deterministic
       base image (same seed → same initial fill and injected faults — the
       "snapshot") and replays the journal's acknowledged suffix, then
       serves every request that arrives after the crash.  Requests caught
       non-terminal at the crash become ``failed_requests``.
    3. **Reference** serves the whole stream uninterrupted.

    The durability gate: every address whose last journaled state is an
    acknowledged write — and that no lost (unacknowledged) write also
    targeted — must hold the identical value in the restarted and the
    uninterrupted backends.
    """
    from repro.service.controller import (
        ControllerConfig, MemoryController, build_backend,
        scheme_service_times,
    )
    from repro.service.engine import DiscreteEventEngine
    from repro.service.report import build_report

    if not requests:
        raise ConfigurationError("requests must be a non-empty sequence")
    if crash_time <= 0.0:
        raise ConfigurationError(
            f"crash_time must be > 0, got {crash_time}"
        )
    if config is None:
        read_time, write_time = scheme_service_times(scheme)
        config = ControllerConfig(read_time, write_time, banks=4)

    def _controller(journal: Optional[WriteAheadJournal]):
        backend, retry_policy = build_backend(
            scheme, seed, bits=bits, fault_rate=fault_rate
        )
        engine = DiscreteEventEngine()
        controller = MemoryController(
            engine, config, policy=policy, backend=backend,
            retry_policy=retry_policy,
        )
        controller.journal = journal
        return engine, controller, backend

    # Phase A: serve until the power drops.
    journal = WriteAheadJournal()
    engine_a, controller_a, backend_a = _controller(journal)
    controller_a.submit_all(requests)
    engine_a.run(until=crash_time)
    engine_a.drop_pending()
    done_ids = {c.request.request_id for c in controller_a.completions}
    acked = journal.acknowledged_records()
    lost_records = journal.unacknowledged_records()
    lost_addresses = {record.address for record in lost_records}

    # Restart: fresh image + journal replay, then the post-crash tail.
    engine_b, controller_b, backend_b = _controller(journal)
    replayed = journal.replay(backend_b)
    lost_in_flight = [
        r for r in requests
        if r.time <= crash_time and r.request_id not in done_ids
    ]
    resumed = [
        r for r in requests
        if r.time > crash_time and r.request_id not in done_ids
    ]
    if resumed:
        controller_b.submit_all(resumed)
        engine_b.run()

    # Reference: the same stream with the power never dropping.
    engine_u, controller_u, backend_u = _controller(None)
    controller_u.submit_all(requests)
    engine_u.run()

    report_a = build_report(controller_a, scheme=scheme)
    report_b = (
        build_report(controller_b, scheme=scheme)
        if controller_b.completions else None
    )

    def _sum(field: str) -> int:
        total = getattr(report_a, field)
        if report_b is not None:
            total += getattr(report_b, field)
        return total

    # Durability gate: acknowledged writes must survive bit-exactly
    # unless a lost write raced the same address (the reference run
    # applied that write; the restart — correctly — never saw it).
    final_acked: Dict[int, int] = {}
    for record in acked:
        final_acked[record.address % backend_b.size_words] = record.value
    checked = mismatched = 0
    for physical in final_acked:
        if any(
            addr % backend_b.size_words == physical
            for addr in lost_addresses
        ):
            continue
        checked += 1
        if backend_b._truth.get(physical) != backend_u._truth.get(physical):
            mismatched += 1

    return CrashRestartResult(
        crash_time=crash_time,
        requests=len(requests),
        completed=_sum("completed"),
        shed=_sum("shed"),
        timed_out=_sum("timed_out"),
        failed_requests=_sum("failed_requests") + len(lost_in_flight),
        detected_loss=_sum("detected_loss"),
        corrupted_words=(
            backend_a.corrupted_words + backend_b.corrupted_words
        ),
        pre_crash_completed=report_a.completed,
        resumed_completed=report_b.completed if report_b else 0,
        journaled_writes=journal.appended,
        acknowledged_writes=len(acked),
        replayed_writes=replayed,
        lost_writes=len(lost_records),
        durable_addresses=checked,
        mismatched_addresses=mismatched,
    )
