"""End-to-end read bit-error-rate model.

Combines every error source the library models into one per-read BER per
scheme:

* **margin failures** — bits whose process-variation margin falls below
  zero always misread (from the Monte-Carlo margin distribution);
* **metastability** — bits whose margin is positive but inside the latch's
  resolution window resolve randomly (½ error);
* **electronic noise** — Gaussian noise can flip a comparison whose margin
  exceeds the window (usually negligible; included for completeness);
* **write errors** (destructive scheme only) — each read's erase and
  write-back pulses can fail, silently corrupting the *stored* value.

The result is the full error budget a memory architect would quote.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np
from scipy.stats import norm

from repro.array.montecarlo import MonteCarloMargins
from repro.circuit.noise import NoiseBudget
from repro.core.base import SensingScheme
from repro.device.switching import SwitchingModel
from repro.device.variation import CellPopulation
from repro.errors import ConfigurationError

__all__ = [
    "ReadErrorBudget",
    "read_error_budget",
    "EmpiricalBER",
    "sample_read_ber",
    "expected_behavioral_ber",
]


@dataclasses.dataclass(frozen=True)
class ReadErrorBudget:
    """Per-read error probabilities of one scheme."""

    scheme: str
    margin_failure: float    #: P(margin <= 0): deterministic misread
    metastability: float     #: P(0 < margin < window) x 1/2
    noise_flip: float        #: noise-induced flip of an otherwise-good bit
    write_error: float       #: per-read storage corruption (writes)

    @property
    def sensing_ber(self) -> float:
        """Total probability the *returned* value is wrong."""
        return min(self.margin_failure + self.metastability + self.noise_flip, 1.0)

    @property
    def total_per_read(self) -> float:
        """Sensing BER plus storage corruption per read."""
        return min(self.sensing_ber + self.write_error, 1.0)


def read_error_budget(
    monte_carlo: MonteCarloMargins,
    resolution_window: float = 8.0e-3,
    noise: NoiseBudget = None,
    switching: SwitchingModel = None,
    write_overdrive: float = 1.5,
) -> Dict[str, ReadErrorBudget]:
    """Assemble the error budget of every scheme from a Monte-Carlo run.

    ``noise`` defaults to the standard budget evaluated per bit against its
    own margin; ``switching`` (needed for the destructive write term)
    defaults to the population's nominal parameters.
    """
    if resolution_window < 0.0:
        raise ConfigurationError("resolution_window must be non-negative")
    if switching is None:
        switching = SwitchingModel(monte_carlo.population.nominal)
    wer = switching.write_error_rate(
        write_overdrive * monte_carlo.population.nominal.i_c0
    )
    per_read_write_error = 1.0 - (1.0 - wer) ** 2

    noise_sigma = (
        noise.total_noise if noise is not None else NoiseBudget(margin=1.0).total_noise
    )

    budgets: Dict[str, ReadErrorBudget] = {}
    for name, margins in monte_carlo.schemes.items():
        binding = margins.min_margin
        margin_failure = float(np.mean(binding <= 0.0))
        inside_window = float(
            np.mean((binding > 0.0) & (binding < resolution_window))
        )
        # Metastable comparisons resolve to a random rail.
        metastability = 0.5 * inside_window
        # Noise flip of bits clearing the window: Gaussian tail at each
        # bit's own margin.
        good = binding >= resolution_window
        if good.any():
            z = binding[good] / noise_sigma
            noise_flip = float(np.mean(norm.sf(z)) * np.mean(good))
        else:
            noise_flip = 0.0
        budgets[name] = ReadErrorBudget(
            scheme=name,
            margin_failure=margin_failure,
            metastability=metastability,
            noise_flip=noise_flip,
            write_error=per_read_write_error if name == "destructive" else 0.0,
        )
    return budgets


# ----------------------------------------------------------------------
# Sampled (behavioural) BER — the batch-kernel cross-check of the budget
# ----------------------------------------------------------------------
def expected_behavioral_ber(margins, resolution: float) -> float:
    """Per-read sensing error probability implied by behavioural margins.

    A read with signed margin ``m`` against a latch window ``resolution``
    misreads deterministically when ``m <= -resolution``, resolves to a
    random rail (½ error) when ``|m| < resolution``, and is correct
    otherwise (electronic noise ignored — it is negligible at these
    margins, see :func:`read_error_budget`).
    """
    if resolution < 0.0:
        raise ConfigurationError("resolution must be non-negative")
    m = np.asarray(margins, dtype=float)
    p = np.where(m <= -resolution, 1.0, np.where(m < resolution, 0.5, 0.0))
    return float(p.mean()) if m.size else 0.0


@dataclasses.dataclass(frozen=True)
class EmpiricalBER:
    """Sampled sensing BER of one scheme over a population.

    ``ber`` is the observed uniform-data misread fraction;
    ``expected_ber`` is what the observed behavioural margins predict via
    :func:`expected_behavioral_ber` — the two must agree within binomial
    sampling noise, and both cross-check the *worst-case* (binding-state)
    closed-form :attr:`ReadErrorBudget.sensing_ber` from above.
    """

    scheme: str
    trials: int
    errors: int
    metastable_events: int
    expected_ber: float

    @property
    def ber(self) -> float:
        """Observed misread fraction."""
        return self.errors / self.trials if self.trials else 0.0

    @property
    def std_error(self) -> float:
        """Binomial standard error of :attr:`ber`."""
        if self.trials == 0:
            return 0.0
        p = self.ber
        return float(np.sqrt(p * (1.0 - p) / self.trials))


def sample_read_ber(
    population: CellPopulation,
    scheme: SensingScheme,
    rng: np.random.Generator = None,
    rounds: int = 1,
    **read_kwargs,
) -> EmpiricalBER:
    """Measure the sensing BER by actually reading every bit.

    Each round reads the whole population twice through the batch kernel —
    once with every bit storing 0, once storing 1 (uniform data, both
    states equally weighted) — and tallies misreads.  Destructive state
    mutation is confined to throwaway state arrays; the caller's population
    is never modified.
    """
    if rounds < 1:
        raise ConfigurationError("rounds must be >= 1")
    if rng is None:
        rng = np.random.default_rng()
    n = population.size
    resolution = scheme.sense_amp.resolution
    errors = 0
    metastable = 0
    trials = 0
    expected_sum = 0.0
    for _ in range(rounds):
        for stored in (0, 1):
            states = np.full(n, stored, dtype=np.uint8)
            batch = scheme.read_many(population, states, rng=rng, **read_kwargs)
            errors += batch.error_count
            metastable += batch.metastable_count
            expected_sum += expected_behavioral_ber(batch.margins, resolution) * n
            trials += n
    return EmpiricalBER(
        scheme=scheme.name,
        trials=trials,
        errors=errors,
        metastable_events=metastable,
        expected_ber=expected_sum / trials,
    )
