"""CSV export of every figure series.

Downstream users who want to re-plot the paper's figures in their own
tooling get machine-readable series: one CSV per figure, written by
:func:`export_all_figures` (also exposed as ``python -m repro export``).
"""

from __future__ import annotations

import csv
import pathlib
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["write_series_csv", "export_all_figures"]

PathLike = Union[str, pathlib.Path]


def write_series_csv(
    path: PathLike,
    x_label: str,
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
) -> pathlib.Path:
    """Write one x column plus named y columns to ``path``."""
    x = np.asarray(x_values, dtype=float)
    columns = {name: np.asarray(values, dtype=float) for name, values in series.items()}
    for name, values in columns.items():
        if values.shape != x.shape:
            raise ConfigurationError(
                f"series {name!r} length {values.shape} != x length {x.shape}"
            )
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_label, *columns.keys()])
        for index in range(x.size):
            writer.writerow(
                [repr(float(x[index]))]
                + [repr(float(values[index])) for values in columns.values()]
            )
    return target


def export_all_figures(directory: PathLike) -> List[pathlib.Path]:
    """Regenerate every figure series and write one CSV per figure.

    Returns the written paths.  Fig. 11 exports the per-bit (SM0, SM1)
    scatter of all three schemes.
    """
    from repro.analysis.figures import (
        fig2_ri_curve,
        fig6_beta_sweep,
        fig7_rtr_sweep,
        fig8_alpha_sweep,
    )
    from repro.array.testchip import run_testchip_experiment
    from repro.calibration import calibrate, calibrated_cell, calibrated_device

    directory = pathlib.Path(directory)
    calibration = calibrate()
    cell = calibrated_cell()
    written: List[pathlib.Path] = []

    fig2 = fig2_ri_curve(calibrated_device())
    written.append(write_series_csv(
        directory / "fig2_ri_curve.csv",
        "current_A",
        fig2.currents,
        {"r_high_ohm": fig2.r_high, "r_low_ohm": fig2.r_low},
    ))

    fig6 = fig6_beta_sweep(cell)
    written.append(write_series_csv(
        directory / "fig6_beta_sweep.csv",
        "beta",
        fig6.betas,
        {
            "sm0_destructive_V": fig6.sm0_destructive,
            "sm1_destructive_V": fig6.sm1_destructive,
            "sm0_nondestructive_V": fig6.sm0_nondestructive,
            "sm1_nondestructive_V": fig6.sm1_nondestructive,
        },
    ))

    fig7 = fig7_rtr_sweep(
        cell, calibration.beta_destructive, calibration.beta_nondestructive
    )
    written.append(write_series_csv(
        directory / "fig7_rtr_sweep.csv",
        "delta_rtr_ohm",
        fig7.shifts,
        {
            "sm0_destructive_V": fig7.sm0_destructive,
            "sm1_destructive_V": fig7.sm1_destructive,
            "sm0_nondestructive_V": fig7.sm0_nondestructive,
            "sm1_nondestructive_V": fig7.sm1_nondestructive,
        },
    ))

    fig8 = fig8_alpha_sweep(cell, calibration.beta_nondestructive)
    written.append(write_series_csv(
        directory / "fig8_alpha_sweep.csv",
        "alpha_deviation_frac",
        fig8.deviations,
        {"sm0_V": fig8.sm0, "sm1_V": fig8.sm1},
    ))

    testchip = run_testchip_experiment()
    for scheme in ("conventional", "destructive", "nondestructive"):
        sm0, sm1 = testchip.scatter(scheme)
        written.append(write_series_csv(
            directory / f"fig11_{scheme}_scatter.csv",
            "bit_index",
            np.arange(sm0.size, dtype=float),
            {"sm0_V": sm0, "sm1_V": sm1},
        ))

    return written
