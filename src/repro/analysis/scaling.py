"""Capacity-scaling projections from Monte-Carlo margin statistics.

The paper's chip is 16kb; a product is gigabits.  Assuming the binding
margin is approximately Gaussian across bits (verified to hold in the bulk
by the Monte-Carlo runs), project each scheme's fail counts to arbitrary
array sizes and find the capacity at which the first uncorrectable bit is
expected — the honest way to compare the schemes' scalability.
"""

from __future__ import annotations

import dataclasses
import math

from scipy.stats import norm

from repro.array.yield_analysis import MarginStatistics
from repro.errors import ConfigurationError

__all__ = ["ScalingProjection", "project_fail_fraction", "project_scaling"]


def project_fail_fraction(
    mean_margin: float, std_margin: float, required_margin: float
) -> float:
    """Gaussian-tail estimate of the per-bit fail probability."""
    if std_margin < 0.0:
        raise ConfigurationError("std_margin must be non-negative")
    if std_margin == 0.0:
        return 0.0 if mean_margin > required_margin else 1.0
    z = (mean_margin - required_margin) / std_margin
    return float(norm.sf(z))


@dataclasses.dataclass(frozen=True)
class ScalingProjection:
    """Projected behaviour of one scheme at scale."""

    scheme: str
    bit_fail_probability: float
    expected_fails_per_megabit: float
    expected_fails_per_gigabit: float
    clean_capacity_bits: float  #: capacity with < 1 expected failing bit

    @property
    def supports_gigabit_without_repair(self) -> bool:
        """Whether a 1 Gb array is expected to have zero failing bits."""
        return self.clean_capacity_bits >= 2**30


def project_scaling(
    statistics: MarginStatistics, required_margin: float = 8.0e-3
) -> ScalingProjection:
    """Project a measured margin distribution to product capacities."""
    p_bit = project_fail_fraction(
        statistics.mean_margin, statistics.std_margin, required_margin
    )
    if p_bit <= 0.0:
        clean_capacity = math.inf
    else:
        clean_capacity = 1.0 / p_bit
    return ScalingProjection(
        scheme=statistics.scheme,
        bit_fail_probability=p_bit,
        expected_fails_per_megabit=p_bit * 2**20,
        expected_fails_per_gigabit=p_bit * 2**30,
        clean_capacity_bits=clean_capacity,
    )
