"""ASCII density scatter plots — a terminal rendering of paper Fig. 11.

Maps per-bit (SM0, SM1) points onto a character grid, with density shading
and the pass/fail boundary marked, so the benchmark output visually
resembles the paper's scatter figure.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ascii_scatter"]

_SHADES = " .:+*#@"


def ascii_scatter(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 56,
    height: int = 20,
    x_label: str = "SM0 [mV]",
    y_label: str = "SM1 [mV]",
    scale: float = 1e3,
    boundary: Optional[float] = None,
    x_range: Optional[Tuple[float, float]] = None,
    y_range: Optional[Tuple[float, float]] = None,
) -> str:
    """Render points as a density map.

    ``boundary`` (in the same units as x/y, before ``scale``) draws the
    pass/fail threshold as ``|``/``-`` lines — the paper's Fig. 11 split.
    """
    x = np.asarray(x, dtype=float) * scale
    y = np.asarray(y, dtype=float) * scale
    if x.shape != y.shape or x.ndim != 1 or x.size == 0:
        raise ConfigurationError("x and y must be equal-length non-empty 1-D arrays")
    if width < 8 or height < 4:
        raise ConfigurationError("grid too small to render")

    x_lo, x_hi = x_range if x_range else (float(x.min()), float(x.max()))
    y_lo, y_hi = y_range if y_range else (float(y.min()), float(y.max()))
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    # Pad 5% so edge points stay inside.
    x_pad = 0.05 * (x_hi - x_lo)
    y_pad = 0.05 * (y_hi - y_lo)
    x_lo, x_hi = x_lo - x_pad, x_hi + x_pad
    y_lo, y_hi = y_lo - y_pad, y_hi + y_pad

    columns = np.clip(((x - x_lo) / (x_hi - x_lo) * (width - 1)).astype(int), 0, width - 1)
    rows = np.clip(((y - y_lo) / (y_hi - y_lo) * (height - 1)).astype(int), 0, height - 1)
    density = np.zeros((height, width), dtype=int)
    np.add.at(density, (rows, columns), 1)

    peak = density.max()
    grid: List[List[str]] = []
    for row in range(height - 1, -1, -1):  # y grows upward
        line = []
        for column in range(width):
            count = density[row, column]
            if count == 0:
                line.append(" ")
            else:
                shade = 1 + int((len(_SHADES) - 2) * np.log1p(count) / np.log1p(peak))
                line.append(_SHADES[min(shade, len(_SHADES) - 1)])
        grid.append(line)

    if boundary is not None:
        b = boundary * scale
        if x_lo < b < x_hi:
            column = int((b - x_lo) / (x_hi - x_lo) * (width - 1))
            for line in grid:
                if line[column] == " ":
                    line[column] = "|"
        if y_lo < b < y_hi:
            row_index = int((b - y_lo) / (y_hi - y_lo) * (height - 1))
            line = grid[height - 1 - row_index]
            for column in range(width):
                if line[column] == " ":
                    line[column] = "-"

    rendered = []
    rendered.append(f"  {y_label} ^   ({y_lo:.1f} .. {y_hi:.1f})")
    for line in grid:
        rendered.append("  |" + "".join(line))
    rendered.append("  +" + "-" * width + f"> {x_label}  ({x_lo:.1f} .. {x_hi:.1f})")
    return "\n".join(rendered)
