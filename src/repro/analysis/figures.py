"""Figure-series generators.

Each function returns the exact x/y series the corresponding paper figure
plots, so a benchmark (or a notebook) can print or plot them directly.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.core.cell import Cell1T1J
from repro.core.margins import destructive_margins, nondestructive_margins
from repro.core.robustness import (
    alpha_deviation_window,
    rtr_shift_window_destructive,
    rtr_shift_window_nondestructive,
    valid_beta_window_destructive,
    valid_beta_window_nondestructive,
)
from repro.device.mtj import MTJDevice
from repro.device.ri_curve import RISweep, hysteresis_sweep, static_ri_curve

__all__ = [
    "Fig2Series",
    "fig2_ri_curve",
    "Fig6Series",
    "fig6_beta_sweep",
    "Fig7Series",
    "fig7_rtr_sweep",
    "Fig8Series",
    "fig8_alpha_sweep",
]


# ----------------------------------------------------------------------
# Fig. 2: measured R–I curve
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Fig2Series:
    """Static branches plus the full hysteresis loop of paper Fig. 2."""

    currents: np.ndarray       #: read currents of the static branches [A]
    r_high: np.ndarray         #: anti-parallel branch [Ω]
    r_low: np.ndarray          #: parallel branch [Ω]
    hysteresis: RISweep        #: full loop incl. switching events

    @property
    def tmr_collapse(self) -> float:
        """Fractional TMR loss from zero current to ``i_read_max``."""
        tmr_zero = (self.r_high[0] - self.r_low[0]) / self.r_low[0]
        tmr_max = (self.r_high[-1] - self.r_low[-1]) / self.r_low[-1]
        return 1.0 - tmr_max / tmr_zero


def fig2_ri_curve(device: MTJDevice, points: int = 64) -> Fig2Series:
    """R–I characteristics of the (calibrated) device, as in paper Fig. 2."""
    currents, r_high, r_low = static_ri_curve(
        device, np.linspace(0.0, device.params.i_read_max, points)
    )
    return Fig2Series(
        currents=currents,
        r_high=r_high,
        r_low=r_low,
        hysteresis=hysteresis_sweep(device),
    )


# ----------------------------------------------------------------------
# Fig. 6: sense margin vs read-current ratio β
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Fig6Series:
    """SM0/SM1 of both schemes over a β sweep, plus the valid windows."""

    betas: np.ndarray
    sm0_destructive: np.ndarray
    sm1_destructive: np.ndarray
    sm0_nondestructive: np.ndarray
    sm1_nondestructive: np.ndarray
    window_destructive: Tuple[float, float]
    window_nondestructive: Tuple[float, float]

    def crossing_destructive(self) -> float:
        """β where the destructive margins cross (the optimum)."""
        return _crossing(self.betas, self.sm1_destructive - self.sm0_destructive)

    def crossing_nondestructive(self) -> float:
        """β where the nondestructive margins cross (the optimum)."""
        return _crossing(self.betas, self.sm1_nondestructive - self.sm0_nondestructive)


def _crossing(x: np.ndarray, diff: np.ndarray) -> float:
    sign_change = np.nonzero(np.diff(np.signbit(diff)))[0]
    if sign_change.size == 0:
        raise ValueError("series do not cross on the sweep range")
    i = int(sign_change[0])
    # Linear interpolation of the zero crossing.
    x0, x1, d0, d1 = x[i], x[i + 1], diff[i], diff[i + 1]
    return float(x0 - d0 * (x1 - x0) / (d1 - d0))


def fig6_beta_sweep(
    cell: Cell1T1J,
    i_read2: float = 200e-6,
    alpha: float = 0.5,
    betas: Optional[np.ndarray] = None,
) -> Fig6Series:
    """Margins of both self-reference schemes vs β (paper Fig. 6)."""
    if betas is None:
        betas = np.linspace(1.02, 3.0, 100)
    sm0_d = np.array([destructive_margins(cell, i_read2, b).sm0 for b in betas])
    sm1_d = np.array([destructive_margins(cell, i_read2, b).sm1 for b in betas])
    sm0_n = np.array(
        [nondestructive_margins(cell, i_read2, b, alpha=alpha).sm0 for b in betas]
    )
    sm1_n = np.array(
        [nondestructive_margins(cell, i_read2, b, alpha=alpha).sm1 for b in betas]
    )
    return Fig6Series(
        betas=betas,
        sm0_destructive=sm0_d,
        sm1_destructive=sm1_d,
        sm0_nondestructive=sm0_n,
        sm1_nondestructive=sm1_n,
        window_destructive=valid_beta_window_destructive(cell, i_read2),
        window_nondestructive=valid_beta_window_nondestructive(cell, i_read2, alpha),
    )


# ----------------------------------------------------------------------
# Fig. 7: sense margin vs transistor-resistance shift ΔR_TR
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Fig7Series:
    """SM0/SM1 of both schemes vs ΔR_TR at their design β."""

    shifts: np.ndarray
    sm0_destructive: np.ndarray
    sm1_destructive: np.ndarray
    sm0_nondestructive: np.ndarray
    sm1_nondestructive: np.ndarray
    window_destructive: Tuple[float, float]
    window_nondestructive: Tuple[float, float]


def fig7_rtr_sweep(
    cell: Cell1T1J,
    beta_destructive: float,
    beta_nondestructive: float,
    i_read2: float = 200e-6,
    alpha: float = 0.5,
    shifts: Optional[np.ndarray] = None,
) -> Fig7Series:
    """Margins vs first-read transistor shift (paper Fig. 7)."""
    if shifts is None:
        shifts = np.linspace(-600.0, 600.0, 121)
    sm0_d = np.array(
        [destructive_margins(cell, i_read2, beta_destructive, rtr_shift=s).sm0 for s in shifts]
    )
    sm1_d = np.array(
        [destructive_margins(cell, i_read2, beta_destructive, rtr_shift=s).sm1 for s in shifts]
    )
    sm0_n = np.array(
        [
            nondestructive_margins(
                cell, i_read2, beta_nondestructive, alpha=alpha, rtr_shift=s
            ).sm0
            for s in shifts
        ]
    )
    sm1_n = np.array(
        [
            nondestructive_margins(
                cell, i_read2, beta_nondestructive, alpha=alpha, rtr_shift=s
            ).sm1
            for s in shifts
        ]
    )
    return Fig7Series(
        shifts=shifts,
        sm0_destructive=sm0_d,
        sm1_destructive=sm1_d,
        sm0_nondestructive=sm0_n,
        sm1_nondestructive=sm1_n,
        window_destructive=rtr_shift_window_destructive(cell, i_read2, beta_destructive),
        window_nondestructive=rtr_shift_window_nondestructive(
            cell, i_read2, beta_nondestructive, alpha
        ),
    )


# ----------------------------------------------------------------------
# Fig. 8: sense margin vs divider-ratio variation Δα
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Fig8Series:
    """Nondestructive SM0/SM1 vs fractional divider-ratio deviation."""

    deviations: np.ndarray  #: fractional Δα values
    sm0: np.ndarray
    sm1: np.ndarray
    window: Tuple[float, float]


def fig8_alpha_sweep(
    cell: Cell1T1J,
    beta: float,
    i_read2: float = 200e-6,
    alpha: float = 0.5,
    deviations: Optional[np.ndarray] = None,
) -> Fig8Series:
    """Nondestructive margins vs Δα (paper Fig. 8)."""
    if deviations is None:
        deviations = np.linspace(-0.08, 0.05, 131)
    sm0 = np.array(
        [
            nondestructive_margins(
                cell, i_read2, beta, alpha=alpha, alpha_deviation=d
            ).sm0
            for d in deviations
        ]
    )
    sm1 = np.array(
        [
            nondestructive_margins(
                cell, i_read2, beta, alpha=alpha, alpha_deviation=d
            ).sm1
            for d in deviations
        ]
    )
    return Fig8Series(
        deviations=deviations,
        sm0=sm0,
        sm1=sm1,
        window=alpha_deviation_window(cell, i_read2, beta, alpha),
    )
