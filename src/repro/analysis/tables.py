"""Row generators for the paper's Tables I and II.

Each row is ``(quantity, reproduced value, paper value)`` so benchmarks can
print a direct paper-vs-measured comparison (also recorded in
EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.calibration.table1 import Table1, derive_table1
from repro.calibration.targets import PAPER_TARGETS, PaperTargets
from repro.core.robustness import RobustnessSummary, robustness_summary
from repro.units import format_si

__all__ = ["table1_rows", "table2_rows"]

Row = Tuple[str, str, str]


def table1_rows(
    table: Optional[Table1] = None, targets: PaperTargets = PAPER_TARGETS
) -> List[Row]:
    """Paper Table I: device parameters and scheme operating points."""
    if table is None:
        table = derive_table1(targets)
    rows: List[Row] = [
        ("R_H (I→0)", format_si(table.r_high, "Ω"), format_si(targets.r_high, "Ω")),
        ("R_L (I→0)", format_si(table.r_low, "Ω"), format_si(targets.r_low, "Ω")),
        ("ΔR_Hmax", format_si(table.dr_high_max, "Ω"), format_si(targets.dr_high_max, "Ω")),
        ("ΔR_Lmax", format_si(table.dr_low_max, "Ω"), "≈0 (unreadable in scan)"),
        ("R_TR", format_si(table.r_transistor, "Ω"), format_si(targets.r_transistor, "Ω")),
        ("I_max (I_R2)", format_si(table.i_read_max, "A"), format_si(targets.i_read_max, "A")),
        ("TMR", f"{table.tmr:.1%}", f"{targets.tmr:.1%}"),
    ]
    d, n = table.destructive, table.nondestructive
    rows += [
        ("β (destructive)", f"{d.beta:.3f}", f"{targets.beta_destructive:.2f}"),
        (
            "max SM (destructive)",
            format_si(d.max_sense_margin, "V"),
            format_si(targets.margin_destructive, "V"),
        ),
        ("R_H1 (destructive)", format_si(d.r_high_1, "Ω"), "(unreadable in scan)"),
        ("R_L1 (destructive)", format_si(d.r_low_1, "Ω"), "(unreadable in scan)"),
        ("β (nondestructive)", f"{n.beta:.3f}", f"{targets.beta_nondestructive:.2f}"),
        (
            "max SM (nondestructive)",
            format_si(n.max_sense_margin, "V"),
            format_si(targets.margin_nondestructive, "V"),
        ),
        ("R_H1 (nondestructive)", format_si(n.r_high_1, "Ω"), "(unreadable in scan)"),
        ("R_L1 (nondestructive)", format_si(n.r_low_1, "Ω"), "(unreadable in scan)"),
    ]
    return rows


def table2_rows(
    summaries: Optional[Tuple[RobustnessSummary, RobustnessSummary]] = None,
    cell=None,
    targets: PaperTargets = PAPER_TARGETS,
) -> List[Row]:
    """Paper Table II: robustness windows of the two self-reference schemes."""
    if summaries is None:
        if cell is None:
            from repro.calibration.fit import calibrated_cell

            cell = calibrated_cell(targets)
        summaries = robustness_summary(cell, targets.i_read_max, alpha=targets.alpha)
    destructive, nondestructive = summaries
    rows: List[Row] = [
        (
            "Max./Min. β (destructive)",
            f"{destructive.beta_window[1]:.3f} / {destructive.beta_window[0]:.3f}",
            "(max unreadable) / ~1",
        ),
        (
            "Max./Min. β (nondestructive)",
            f"{nondestructive.beta_window[1]:.3f} / {nondestructive.beta_window[0]:.3f}",
            f"(max unreadable) / {targets.beta_min_nondestructive:.0f}",
        ),
        (
            "ΔR_TR window (destructive)",
            f"{destructive.rtr_window[0]:+.0f} / {destructive.rtr_window[1]:+.0f} Ω",
            f"±{targets.rtr_window_destructive:.0f} Ω",
        ),
        (
            "ΔR_TR window (nondestructive)",
            f"{nondestructive.rtr_window[0]:+.0f} / {nondestructive.rtr_window[1]:+.0f} Ω",
            f"±{targets.rtr_window_nondestructive:.0f} Ω",
        ),
        ("Δα window (destructive)", "N/A", "N/A"),
        (
            "Δα window (nondestructive)",
            f"{nondestructive.alpha_window[0]:+.2%} / {nondestructive.alpha_window[1]:+.2%}",
            f"{targets.alpha_window_lower:+.2%} / {targets.alpha_window_upper:+.2%}",
        ),
    ]
    return rows
