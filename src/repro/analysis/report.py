"""Plain-text rendering helpers for the benchmark harness.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output aligned and readable in a terminal.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

__all__ = ["format_table", "render_series"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Render an ASCII table with column alignment."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    separator = "-+-".join("-" * w for w in widths)
    parts = [line(headers), separator]
    parts.extend(line(row) for row in materialized)
    return "\n".join(parts)


def render_series(
    x: np.ndarray,
    series: dict,
    x_label: str,
    y_scale: float = 1.0,
    max_rows: int = 16,
) -> str:
    """Render named y-series against x as a compact table (downsampled to at
    most ``max_rows`` evenly spaced points)."""
    x = np.asarray(x)
    count = len(x)
    step = max(1, count // max_rows)
    indices = list(range(0, count, step))
    if indices[-1] != count - 1:
        indices.append(count - 1)
    headers = [x_label] + list(series.keys())
    rows = []
    for index in indices:
        row = [f"{x[index]:.4g}"]
        for values in series.values():
            row.append(f"{np.asarray(values)[index] * y_scale:.4g}")
        rows.append(row)
    return format_table(headers, rows)
