"""Corner analysis: operating margins across temperature and variation.

The paper measures at room temperature; a deployable part must hold its
margins over the industrial range.  This module re-derives each scheme's
optimal operating point on the temperature-derated device (TMR collapses
with T, shrinking every margin) and produces the margin/robustness map a
designer would sign off against.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.core.cell import Cell1T1J
from repro.core.optimize import (
    BetaOptimum,
    optimize_beta_destructive,
    optimize_beta_nondestructive,
)
from repro.core.robustness import rtr_shift_window_nondestructive
from repro.device.mtj import MTJDevice, MTJParams
from repro.device.rolloff import RollOffModel
from repro.device.thermal import ThermalModel, derate_params
from repro.device.transistor import FixedResistanceTransistor
from repro.errors import ConfigurationError

__all__ = ["TemperatureCorner", "temperature_corner_sweep"]


@dataclasses.dataclass(frozen=True)
class TemperatureCorner:
    """One row of the temperature margin map."""

    temperature: float                 #: [K]
    tmr: float                         #: derated TMR ratio
    destructive: BetaOptimum           #: re-optimized destructive point
    nondestructive: BetaOptimum        #: re-optimized nondestructive point
    rtr_window_nondestructive: float   #: |ΔR_TR| window at the hot point [Ω]

    @property
    def nondestructive_margin_ok(self) -> bool:
        """Does the re-optimized nondestructive margin clear 8 mV?"""
        return self.nondestructive.max_sense_margin > 8.0e-3


def temperature_corner_sweep(
    params: MTJParams,
    rolloff_high: RollOffModel,
    rolloff_low: RollOffModel,
    temperatures: Sequence[float] = (250.0, 300.0, 330.0, 360.0, 390.0),
    thermal: Optional[ThermalModel] = None,
    r_transistor: float = 917.0,
    i_read2: float = 200e-6,
    alpha: float = 0.5,
) -> List[TemperatureCorner]:
    """Re-optimize both schemes at each temperature corner.

    The roll-off *shape* is kept (first-order) while the magnitudes derate
    with the TMR; the transistor resistance is held (its tempco is small
    compared to the TMR collapse and would only shift both margins
    together).
    """
    if not temperatures:
        raise ConfigurationError("need at least one temperature")
    if thermal is None:
        thermal = ThermalModel()
    corners: List[TemperatureCorner] = []
    for temperature in temperatures:
        derated = derate_params(params, float(temperature), thermal)
        cell = Cell1T1J(
            MTJDevice(derated, rolloff_high, rolloff_low),
            FixedResistanceTransistor(r_transistor),
        )
        destructive = optimize_beta_destructive(cell, i_read2)
        nondestructive = optimize_beta_nondestructive(cell, i_read2, alpha=alpha)
        window = rtr_shift_window_nondestructive(
            cell, i_read2, nondestructive.beta, alpha
        )
        corners.append(
            TemperatureCorner(
                temperature=float(temperature),
                tmr=derated.tmr,
                destructive=destructive,
                nondestructive=nondestructive,
                rtr_window_nondestructive=window[1],
            )
        )
    return corners
