"""Series and table generators for every figure and table in the paper,
plus plain-text report rendering used by the benchmark harness."""

from repro.analysis.figures import (
    Fig2Series,
    Fig6Series,
    Fig7Series,
    Fig8Series,
    fig2_ri_curve,
    fig6_beta_sweep,
    fig7_rtr_sweep,
    fig8_alpha_sweep,
)
from repro.analysis.corners import TemperatureCorner, temperature_corner_sweep
from repro.analysis.ber import (
    EmpiricalBER,
    ReadErrorBudget,
    expected_behavioral_ber,
    read_error_budget,
    sample_read_ber,
)
from repro.analysis.sensitivity import SensitivityEntry, margin_sensitivities
from repro.analysis.scaling import ScalingProjection, project_fail_fraction, project_scaling
from repro.analysis.export import export_all_figures, write_series_csv
from repro.analysis.scatter import ascii_scatter
from repro.analysis.report import format_table, render_series
from repro.analysis.tables import table1_rows, table2_rows

__all__ = [
    "TemperatureCorner",
    "temperature_corner_sweep",
    "ascii_scatter",
    "export_all_figures",
    "write_series_csv",
    "ReadErrorBudget",
    "read_error_budget",
    "EmpiricalBER",
    "sample_read_ber",
    "expected_behavioral_ber",
    "SensitivityEntry",
    "margin_sensitivities",
    "ScalingProjection",
    "project_fail_fraction",
    "project_scaling",
    "Fig2Series",
    "fig2_ri_curve",
    "Fig6Series",
    "fig6_beta_sweep",
    "Fig7Series",
    "fig7_rtr_sweep",
    "Fig8Series",
    "fig8_alpha_sweep",
    "table1_rows",
    "table2_rows",
    "format_table",
    "render_series",
]
