"""First-order sensitivity analysis of the sense margins.

For each design/device parameter ``x``, computes the normalized sensitivity

    S_x = (∂SM/∂x) · (x / SM)

of each scheme's binding margin by central differences — the designer's
map of *which* variations matter.  The paper's robustness section studies
three knobs (β, ΔR_TR, Δα); this generalizes to every model parameter and
ranks them.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.core.cell import Cell1T1J
from repro.core.margins import destructive_margins, nondestructive_margins
from repro.device.mtj import MTJDevice
from repro.device.transistor import FixedResistanceTransistor
from repro.errors import ConfigurationError

__all__ = ["SensitivityEntry", "margin_sensitivities"]


@dataclasses.dataclass(frozen=True)
class SensitivityEntry:
    """Normalized sensitivity of one scheme's margin to one parameter."""

    parameter: str
    scheme: str
    sensitivity: float  #: dimensionless (% margin change per % parameter change)

    @property
    def magnitude(self) -> float:
        """Absolute sensitivity (for ranking)."""
        return abs(self.sensitivity)


def _rebuild_cell(cell: Cell1T1J, parameter: str, factor: float) -> Cell1T1J:
    """A copy of ``cell`` with one parameter scaled by ``factor``."""
    params = cell.mtj.params
    r_tr = float(cell.transistor.resistance(0.0))
    changes = {}
    if parameter == "r_low":
        changes["r_low"] = params.r_low * factor
    elif parameter == "r_high":
        changes["r_high"] = params.r_high * factor
    elif parameter == "dr_high_max":
        changes["dr_high_max"] = params.dr_high_max * factor
    elif parameter == "dr_low_max":
        changes["dr_low_max"] = params.dr_low_max * factor
    elif parameter == "r_transistor":
        r_tr *= factor
    else:
        raise ConfigurationError(f"unknown parameter {parameter!r}")
    mtj = MTJDevice(
        params.replace(**changes) if changes else params,
        cell.mtj.rolloff_high,
        cell.mtj.rolloff_low,
    )
    return Cell1T1J(mtj, FixedResistanceTransistor(r_tr))


_DEVICE_PARAMETERS = ("r_low", "r_high", "dr_high_max", "dr_low_max", "r_transistor")
_OPERATING_PARAMETERS = ("beta", "alpha", "i_read2")


def margin_sensitivities(
    cell: Cell1T1J,
    beta_destructive: float,
    beta_nondestructive: float,
    i_read2: float = 200e-6,
    alpha: float = 0.5,
    step: float = 0.01,
    parameters: Optional[List[str]] = None,
) -> List[SensitivityEntry]:
    """Normalized margin sensitivities of both schemes, ranked by magnitude.

    ``step`` is the fractional perturbation for the central difference.
    """
    if not 0.0 < step < 0.2:
        raise ConfigurationError("step must be a small positive fraction")
    if parameters is None:
        parameters = list(_DEVICE_PARAMETERS) + list(_OPERATING_PARAMETERS)

    def margin(scheme: str, parameter: str, factor: float) -> float:
        beta = beta_destructive if scheme == "destructive" else beta_nondestructive
        local_cell, local_beta, local_alpha, local_i2 = cell, beta, alpha, i_read2
        if parameter in _DEVICE_PARAMETERS:
            local_cell = _rebuild_cell(cell, parameter, factor)
        elif parameter == "beta":
            local_beta = beta * factor
        elif parameter == "alpha":
            local_alpha = alpha * factor
        elif parameter == "i_read2":
            local_i2 = i_read2 * factor
        else:
            raise ConfigurationError(f"unknown parameter {parameter!r}")
        if scheme == "destructive":
            return destructive_margins(local_cell, local_i2, local_beta).min_margin
        return nondestructive_margins(
            local_cell, local_i2, local_beta, alpha=local_alpha
        ).min_margin

    entries: List[SensitivityEntry] = []
    for scheme in ("destructive", "nondestructive"):
        base = margin(scheme, "r_low", 1.0)
        if base <= 0.0:
            raise ConfigurationError(f"{scheme}: non-positive base margin")
        for parameter in parameters:
            if parameter == "alpha" and scheme == "destructive":
                continue  # the destructive scheme has no divider
            up = margin(scheme, parameter, 1.0 + step)
            down = margin(scheme, parameter, 1.0 - step)
            sensitivity = (up - down) / (2.0 * step * base)
            entries.append(
                SensitivityEntry(
                    parameter=parameter, scheme=scheme, sensitivity=sensitivity
                )
            )
    entries.sort(key=lambda entry: entry.magnitude, reverse=True)
    return entries
